"""Setup shim for environments that cannot build PEP 660 editable wheels."""

from setuptools import setup

setup()
