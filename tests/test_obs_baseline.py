"""Tests for the baseline regression gate, exporters, and the obs CLI."""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.baseline import (
    MetricDiff,
    bootstrap_deviation_ci,
    check_baseline,
    diff_metrics,
    load_baseline,
    record_baseline,
    render_diffs,
    save_baseline,
)

WORKLOADS = ["mcf"]
CONFIGS = ["baseline", "combined"]
BUDGET = 2000
SEED = 42
REPS = 2


@pytest.fixture(scope="module")
def recorded():
    return record_baseline(
        "unit", WORKLOADS, CONFIGS, BUDGET, SEED, reps=REPS
    )


class TestDiffMetrics:
    def test_within_tolerance_passes(self):
        diffs = diff_metrics(
            {"ipc": 1.00}, {"ipc": 0.97}, "c", tolerance=0.05
        )
        assert [d.status for d in diffs] == ["ok"]

    def test_worse_direction_beyond_tolerance_fails(self):
        (diff,) = diff_metrics(
            {"ipc": 1.00}, {"ipc": 0.90}, "c", tolerance=0.05
        )
        assert diff.status == "REGRESSION"
        assert diff.deviation == pytest.approx(-0.10)

    def test_improvement_never_fails(self):
        (diff,) = diff_metrics(
            {"ipc": 1.00}, {"ipc": 2.00}, "c", tolerance=0.05
        )
        assert diff.status == "ok"

    def test_lower_is_better_for_mpki(self):
        (worse,) = diff_metrics(
            {"llt_mpki": 10.0}, {"llt_mpki": 11.0}, "c", tolerance=0.05
        )
        (better,) = diff_metrics(
            {"llt_mpki": 10.0}, {"llt_mpki": 5.0}, "c", tolerance=0.05
        )
        assert worse.status == "REGRESSION"
        assert better.status == "ok"

    def test_none_on_both_sides_is_skipped(self):
        assert diff_metrics({"ipc": None}, {"ipc": None}, "c", 0.05) == []

    def test_none_on_one_side_is_missing(self):
        (diff,) = diff_metrics({"ipc": 1.0}, {"ipc": None}, "c", 0.05)
        assert diff.status == "missing"

    def test_zero_recorded_value(self):
        (same,) = diff_metrics(
            {"llt_mpki": 0.0}, {"llt_mpki": 0.0}, "c", 0.05
        )
        (worse,) = diff_metrics(
            {"llt_mpki": 0.0}, {"llt_mpki": 1.0}, "c", 0.05
        )
        assert same.status == "ok"
        assert worse.status == "REGRESSION"
        assert worse.deviation == float("inf")

    def test_throughput_is_informational_only(self):
        (diff,) = diff_metrics(
            {"throughput_kips": 100.0},
            {"throughput_kips": 1.0},
            "c",
            tolerance=0.05,
        )
        assert diff.status == "info"


class TestBootstrapGate:
    """Rep lists gate on the bootstrap 95% CI, not the point deviation."""

    def test_single_rep_collapses_to_point_deviation(self):
        low, high = bootstrap_deviation_ci([1.0], [0.9])
        assert low == high == pytest.approx(-0.10)

    def test_uniform_shift_gives_degenerate_interval(self):
        low, high = bootstrap_deviation_ci(
            [1.00, 1.02, 0.98], [0.90, 0.918, 0.882]
        )
        assert low == pytest.approx(-0.10)
        assert high == pytest.approx(-0.10)

    def test_one_noisy_rep_does_not_regress(self):
        # One seed dips 7% while the others hold: the interval straddles
        # zero, so the 5% gate must not fire.
        (diff,) = diff_metrics(
            {"ipc": [1.0, 1.0, 1.0]},
            {"ipc": [0.93, 1.0, 1.0]},
            "c",
            tolerance=0.05,
        )
        assert diff.status == "ok"
        assert diff.ci_high >= -0.05

    def test_consistent_shift_regresses(self):
        (diff,) = diff_metrics(
            {"ipc": [1.0, 1.01, 0.99]},
            {"ipc": [0.90, 0.91, 0.89]},
            "c",
            tolerance=0.05,
        )
        assert diff.status == "REGRESSION"
        assert diff.ci_high < -0.05

    def test_lower_better_direction_uses_ci_low(self):
        (worse,) = diff_metrics(
            {"llt_mpki": [10.0, 10.1, 9.9]},
            {"llt_mpki": [11.0, 11.1, 10.9]},
            "c",
            tolerance=0.05,
        )
        (noisy,) = diff_metrics(
            {"llt_mpki": [10.0, 10.0, 10.0]},
            {"llt_mpki": [10.7, 10.0, 10.0]},
            "c",
            tolerance=0.05,
        )
        assert worse.status == "REGRESSION"
        assert noisy.status == "ok"

    def test_unequal_rep_counts_fall_back_to_independent(self):
        # A schema-1 scalar baseline checked against multiple reps still
        # gates (independent resampling).
        (diff,) = diff_metrics(
            {"ipc": 1.0},
            {"ipc": [0.90, 0.91, 0.89]},
            "c",
            tolerance=0.05,
        )
        assert diff.status == "REGRESSION"

    def test_medians_are_reported(self):
        (diff,) = diff_metrics(
            {"ipc": [1.0, 2.0, 3.0]}, {"ipc": [2.0, 2.0, 2.0]}, "c", 0.05
        )
        assert diff.recorded == 2.0
        assert diff.current == 2.0
        assert diff.status == "ok"


class TestRecordAndCheck:
    def test_record_covers_the_matrix(self, recorded):
        assert set(recorded["runs"]) == {
            f"{wl}/{cfg}" for wl in WORKLOADS for cfg in CONFIGS
        }
        assert recorded["reps"] == REPS
        for metrics in recorded["runs"].values():
            assert len(metrics["ipc"]) == REPS
            assert all(v > 0 for v in metrics["ipc"])

    def test_check_against_fresh_recording_passes(self, recorded):
        passed, diffs = check_baseline(recorded)
        assert passed
        assert not [d for d in diffs if d.status == "REGRESSION"]

    def test_check_catches_injected_ipc_regression(self, recorded):
        tampered = json.loads(json.dumps(recorded))
        tampered["runs"]["mcf/combined"]["ipc"] = [
            v * 1.10 for v in tampered["runs"]["mcf/combined"]["ipc"]
        ]
        passed, diffs = check_baseline(tampered)
        assert not passed
        bad = [d for d in diffs if d.status == "REGRESSION"]
        assert [(d.cell, d.metric) for d in bad] == [("mcf/combined", "ipc")]

    def test_check_flags_missing_cells(self, recorded):
        tampered = json.loads(json.dumps(recorded))
        tampered["runs"]["mcf/phantom"] = {"ipc": 1.0}
        passed, diffs = check_baseline(tampered)
        assert not passed
        assert any(
            d.cell == "mcf/phantom" and d.status == "missing" for d in diffs
        )

    def test_save_load_round_trip(self, recorded, tmp_path):
        path = save_baseline(recorded, tmp_path / "bl.json")
        assert load_baseline(path) == recorded

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_schema_1_scalar_baseline_still_gates(self, recorded, tmp_path):
        # Pre-bootstrap documents: scalar per-cell values, no "reps" key.
        legacy = json.loads(json.dumps(recorded))
        legacy["schema"] = 1
        del legacy["reps"]
        legacy["runs"] = {
            cell: {m: (v[0] if isinstance(v, list) else v)
                   for m, v in metrics.items()}
            for cell, metrics in legacy["runs"].items()
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy))
        passed, diffs = check_baseline(load_baseline(path))
        assert passed

    def test_render_mentions_regressed_metric(self, recorded):
        diffs = [MetricDiff("mcf/combined", "ipc", 1.0, 0.5, "REGRESSION")]
        text = render_diffs(diffs, tolerance=0.05)
        assert "ipc" in text
        assert "REGRESSION" in text
        assert "FAIL" in text

    def test_render_pass_summary(self):
        text = render_diffs(
            [MetricDiff("c", "ipc", 1.0, 1.0, "ok")], tolerance=0.05
        )
        assert text.startswith("PASS")


class TestCli:
    def _record(self, tmp_path, capsys):
        out = tmp_path / "bl.json"
        rc = main([
            "record", "--out", str(out), "--name", "cli",
            "--workloads", "mcf", "--configs", "baseline,combined",
            "--budget", str(BUDGET), "--seed", str(SEED),
            "--reps", str(REPS),
        ])
        assert rc == 0
        capsys.readouterr()
        return out

    def test_record_then_check_passes(self, tmp_path, capsys):
        out = self._record(tmp_path, capsys)
        assert main(["check", "--baseline", str(out)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_fails_on_tampered_baseline(self, tmp_path, capsys):
        out = self._record(tmp_path, capsys)
        baseline = json.loads(out.read_text())
        baseline["runs"]["mcf/combined"]["ipc"] = [
            v * 1.10 for v in baseline["runs"]["mcf/combined"]["ipc"]
        ]
        out.write_text(json.dumps(baseline))
        assert main(["check", "--baseline", str(out)]) == 1
        text = capsys.readouterr().out
        assert "REGRESSION" in text and "ipc" in text

    def test_check_with_obs_exports_artifacts(self, tmp_path, capsys):
        out = self._record(tmp_path, capsys)
        obs_dir = tmp_path / "artifacts"
        assert main([
            "check", "--baseline", str(out), "--obs", str(obs_dir),
        ]) == 0
        manifests = sorted(obs_dir.glob("*.manifest.json"))
        assert len(manifests) == 2  # one per (workload, config) cell
        manifest = json.loads(manifests[0].read_text())
        assert manifest["workload"] == "mcf"
        assert "metrics" in manifest and "telemetry" in manifest
        for name in manifest["artifacts"].values():
            assert (obs_dir / name).exists()

    def test_show(self, tmp_path, capsys):
        out = self._record(tmp_path, capsys)
        assert main(["show", "--baseline", str(out)]) == 0
        text = capsys.readouterr().out
        assert "mcf/baseline" in text and "ipc" in text

    def test_record_rejects_unknown_config(self, tmp_path):
        with pytest.raises(ValueError):
            main([
                "record", "--out", str(tmp_path / "x.json"),
                "--configs", "nonesuch", "--budget", "1000",
            ])
