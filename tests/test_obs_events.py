"""Tests for the decision-event ring trace and its predictor probes."""

import json

from repro.experiments.common import combined
from repro.obs import (
    EV_LLT_BYPASS,
    EV_LLT_VERDICT,
    EV_PFQ_PUSH,
    EV_SHADOW_PROMOTE,
    EV_WALK,
    EVENT_FIELDS,
    EventTrace,
    TelemetrySpec,
)
from repro.obs.export import write_events_jsonl
from repro.sim.runner import run_cached

BUDGET = 3000


class TestEventTrace:
    def test_emit_and_read_back(self):
        trace = EventTrace(capacity=8)
        trace.emit(10, EV_WALK, 0x42, 30)
        assert trace.events() == [(10, EV_WALK, 0x42, 30)]
        assert trace.emitted == 1
        assert trace.dropped() == 0

    def test_ring_drops_oldest(self):
        trace = EventTrace(capacity=3)
        for i in range(5):
            trace.emit(i, EV_WALK, i, 1)
        assert len(trace) == 3
        assert trace.emitted == 5
        assert trace.dropped() == 2
        assert [e[0] for e in trace.events()] == [2, 3, 4]

    def test_counts(self):
        trace = EventTrace()
        trace.emit(1, EV_WALK, 1, 1)
        trace.emit(2, EV_WALK, 2, 1)
        trace.emit(3, EV_LLT_BYPASS, 3, 4)
        assert trace.counts() == {EV_WALK: 2, EV_LLT_BYPASS: 1}

    def test_rows_are_self_describing(self):
        trace = EventTrace()
        trace.emit(5, EV_LLT_VERDICT, 0x7, True, False)
        (row,) = list(trace.rows())
        assert row == {
            "now": 5,
            "kind": EV_LLT_VERDICT,
            "vpn": 0x7,
            "predicted_doa": True,
            "actual_doa": False,
        }

    def test_rows_unknown_kind_falls_back_to_positional(self):
        trace = EventTrace()
        trace.emit(1, "mystery", "a", "b")
        (row,) = list(trace.rows())
        assert row == {"now": 1, "kind": "mystery", "f0": "a", "f1": "b"}

    def test_payload_round_trip(self):
        trace = EventTrace(capacity=4)
        for i in range(6):
            trace.emit(i, EV_WALK, i, 2)
        payload = json.loads(json.dumps(trace.to_payload()))
        back = EventTrace.from_payload(payload)
        assert back.events() == trace.events()
        assert back.dropped() == trace.dropped()

    def test_rejects_nonpositive_capacity(self):
        import pytest

        with pytest.raises(ValueError):
            EventTrace(capacity=0)

    def test_every_kind_has_registered_fields(self):
        import repro.obs.events as events

        kinds = {
            value
            for name, value in vars(events).items()
            if name.startswith("EV_")
        }
        assert kinds == set(EVENT_FIELDS)


class TestPredictorProbes:
    def test_combined_run_emits_decision_events(self):
        telemetry = TelemetrySpec(interval=500).build()
        run_cached("mcf", combined(), BUDGET, telemetry=telemetry)
        counts = telemetry.events.counts()
        # dpPred decisions, their LLC-side forwarding, page walks, and
        # eviction-time ground-truth verdicts all show up on mcf.
        for kind in (
            EV_WALK,
            EV_LLT_BYPASS,
            EV_SHADOW_PROMOTE,
            EV_PFQ_PUSH,
            EV_LLT_VERDICT,
        ):
            assert counts.get(kind, 0) > 0, kind

    def test_events_timestamps_monotone(self):
        telemetry = TelemetrySpec(interval=500).build()
        run_cached("mcf", combined(), BUDGET, telemetry=telemetry)
        nows = [event[0] for event in telemetry.events.events()]
        assert nows == sorted(nows)

    def test_events_export_as_parseable_jsonl(self, tmp_path):
        telemetry = TelemetrySpec(interval=500).build()
        run_cached("mcf", combined(), BUDGET, telemetry=telemetry)
        path = write_events_jsonl(tmp_path / "events.jsonl", telemetry.events)
        rows = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert len(rows) == len(telemetry.events)
        for row in rows:
            assert "now" in row and "kind" in row
            names = EVENT_FIELDS[row["kind"]]
            assert set(row) == {"now", "kind", *names}
