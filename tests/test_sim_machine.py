"""Tests for the full machine model."""

import pytest

from repro.sim.config import fast_config
from repro.sim.machine import Machine
from repro.vm.physmem import PAGE_SIZE


def tiny_config(**kw):
    return fast_config(**kw)


class TestAccessPath:
    def test_first_access_walks_and_fills(self):
        m = Machine(tiny_config())
        m.access(pc=0x400000, vaddr=0x10000000, is_write=False, gap=3)
        assert m.walker.stats.get("walks") >= 1  # data (+ instruction) walk
        assert m.l2_tlb.occupancy() >= 1
        assert m.l1_dtlb.occupancy() == 1

    def test_repeat_access_hits_everywhere(self):
        m = Machine(tiny_config())
        m.access(0x400000, 0x10000000, False, 3)
        walks = m.walker.stats.get("walks")
        hits = m.l1_dtlb.stats.get("hits")
        m.access(0x400000, 0x10000000, False, 3)
        assert m.walker.stats.get("walks") == walks
        assert m.l1_dtlb.stats.get("hits") == hits + 1

    def test_instructions_accumulate_gap(self):
        m = Machine(tiny_config())
        m.access(0x400000, 0x10000000, False, 3)
        m.access(0x400000, 0x10001000, False, 5)
        assert m.instructions == (3 + 1) + (5 + 1)

    def test_cycles_increase_with_misses(self):
        m1 = Machine(tiny_config())
        m2 = Machine(tiny_config())
        m1.access(0x400000, 0x10000000, False, 3)
        m1.access(0x400000, 0x10000000, False, 3)  # hit
        m2.access(0x400000, 0x10000000, False, 3)
        m2.access(0x400000, 0x20000000, False, 3)  # fresh page: walk
        assert m2.cycles > m1.cycles

    def test_same_page_different_blocks(self):
        m = Machine(tiny_config())
        m.access(0x400000, 0x10000000, False, 3)
        walks = m.walker.stats.get("walks")
        m.access(0x400000, 0x10000040, False, 3)  # next cache block
        assert m.walker.stats.get("walks") == walks  # TLB hit
        assert m.l1d.occupancy() == 2

    def test_write_propagates_dirty(self):
        m = Machine(tiny_config())
        m.access(0x400000, 0x10000000, True, 3)
        blocks = m.l1d.resident_blocks()
        assert len(blocks) == 1
        assert m.l1d.probe(blocks[0]).dirty

    def test_translation_is_consistent(self):
        """The same VA always maps to the same PA block."""
        m = Machine(tiny_config())
        m.access(0x400000, 0x10000000, False, 3)
        blocks_before = set(m.llc.resident_blocks())
        for _ in range(5):
            m.access(0x400000, 0x10000000, False, 3)
        # No new blocks appeared for the same VA (page-table blocks were
        # all fetched during the first access's walks).
        data_blocks = set(m.llc.resident_blocks())
        assert blocks_before == data_blocks


class TestPredictorWiring:
    def test_dppred_attached(self):
        m = Machine(tiny_config(tlb_predictor="dppred"))
        from repro.core.dppred import DeadPagePredictor

        assert isinstance(m.tlb_predictor, DeadPagePredictor)

    def test_cbpred_coupled_to_dppred(self):
        m = Machine(
            tiny_config(tlb_predictor="dppred", llc_predictor="cbpred")
        )
        assert m.tlb_predictor.pfn_sink is not None
        # A predicted-DOA PFN must land in the PFQ.
        m.tlb_predictor.pfn_sink(42)
        assert 42 in m.llc_predictor.pfq

    def test_cbpred_without_dppred_rejected(self):
        with pytest.raises(ValueError):
            Machine(tiny_config(llc_predictor="cbpred"))

    def test_reference_observers_attached(self):
        m = Machine(
            tiny_config(tlb_predictor="dppred", track_reference=True)
        )
        assert m.tlb_predictor.prediction_observer is not None
        assert m.ref_llt is not None

    def test_correlation_requires_baseline(self):
        with pytest.raises(ValueError):
            Machine(
                tiny_config(tlb_predictor="dppred", track_correlation=True)
            )


class TestFinalize:
    def test_result_fields(self):
        m = Machine(tiny_config(track_residency=True))
        for i in range(50):
            m.access(0x400000, 0x10000000 + i * PAGE_SIZE, False, 3)
        result = m.finalize("unit")
        assert result.workload == "unit"
        assert result.instructions == 200
        assert result.ipc > 0
        assert result.llt_misses > 0
        assert result.llt_mpki > 0
        assert result.llt_residency is not None
        assert "llt" in result.raw

    def test_llt_misses_equal_walks(self):
        """A shadow-table hit avoids the walk, so the reported LLT miss
        count must equal the walker's walk count exactly."""
        cfg = tiny_config(tlb_predictor="dppred")
        m = Machine(cfg)
        for i in range(200):
            m.access(0x400000, 0x10000000 + (i % 40) * PAGE_SIZE, False, 2)
        result = m.finalize("unit")
        assert result.llt_misses == m.walker.stats.get("walks")
