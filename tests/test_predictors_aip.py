"""Tests for the AIP baseline predictor."""

from repro.mem.cache import SetAssocCache
from repro.predictors.aip import (
    AipCachePredictor,
    AipConfig,
    AipTlbPredictor,
    _AipCore,
)
from repro.predictors.base import AccessContext
from repro.vm.tlb import Tlb


class TestAipCore:
    def test_new_state_untrained(self):
        core = _AipCore()
        state = core.new_state(0x400000, 0x10)
        assert state.threshold == -1
        assert not state.confident

    def test_interval_learning(self):
        core = _AipCore()
        state = core.new_state(0x400000, 0x10)
        for _ in range(5):
            core.on_set_access(state)
        core.on_entry_hit(state)
        assert state.max_seen == 5
        assert state.count == 0
        core.train_eviction(state)
        fresh = core.new_state(0x400000, 0x10)
        assert fresh.threshold == 5
        assert not fresh.confident  # needs a second confirming generation

    def test_confidence_after_stable_intervals(self):
        core = _AipCore()
        for _ in range(2):
            state = core.new_state(0x400000, 0x10)
            for _ in range(5):
                core.on_set_access(state)
            core.on_entry_hit(state)
            core.train_eviction(state)
        state = core.new_state(0x400000, 0x10)
        assert state.confident
        assert state.threshold == 5

    def test_dead_prediction_requires_expired_interval(self):
        core = _AipCore(AipConfig(margin=1))
        for _ in range(2):
            state = core.new_state(0x400000, 0x10)
            for _ in range(3):
                core.on_set_access(state)
            core.on_entry_hit(state)
            core.train_eviction(state)
        state = core.new_state(0x400000, 0x10)
        for _ in range(4):
            core.on_set_access(state)
        assert not core.is_dead(state)  # 4 <= 3 + margin
        core.on_set_access(state)
        assert core.is_dead(state)  # 5 > 4

    def test_doa_generations_do_not_train(self):
        """The crux of Section IV-C: zero-hit entries give AIP nothing."""
        core = _AipCore()
        for _ in range(5):
            state = core.new_state(0x400000, 0x10)
            for _ in range(9):
                core.on_set_access(state)
            core.train_eviction(state)  # never hit
        fresh = core.new_state(0x400000, 0x10)
        assert fresh.threshold == -1
        assert not fresh.confident
        assert core.stats.get("untrainable_doa_evictions") == 5

    def test_interval_counter_saturates(self):
        core = _AipCore(AipConfig(max_interval=3))
        state = core.new_state(0, 0)
        for _ in range(10):
            core.on_set_access(state)
        assert state.count == 3


class TestAipTlb:
    def test_dead_entry_victimised_first(self):
        pred = AipTlbPredictor(AipConfig(margin=0))
        tlb = Tlb("LLT", num_entries=2, assoc=2, listener=pred)
        pc = 0x400000
        # Train vpn 0's interval (hit once per 1 set access) twice.
        for gen in range(2):
            tlb.fill(0, 100, pc, now=gen)
            tlb.lookup(0, now=gen)
            tlb.invalidate(0, now=gen)
        tlb.fill(0, 100, pc, now=10)
        tlb.lookup(0, now=11)
        tlb.fill(2, 102, 0x400004, now=12)
        # Several set accesses expire vpn 0's interval.
        for t in range(13, 18):
            tlb.lookup(4, now=t)  # misses; counts as set accesses
        victim = tlb.fill(4, 104, 0x400008, now=20)
        assert victim.vpn == 0
        assert pred.stats.get("dead_victimisations") == 1

    def test_untrained_defers_to_lru(self):
        pred = AipTlbPredictor()
        tlb = Tlb("LLT", num_entries=2, assoc=2, listener=pred)
        tlb.fill(0, 100, 0x400000, now=0)
        tlb.fill(2, 102, 0x400004, now=1)
        victim = tlb.fill(4, 104, 0x400008, now=2)
        assert victim.vpn == 0  # plain LRU order


class TestAipCache:
    def test_per_line_state_attached(self):
        ctx = AccessContext()
        pred = AipCachePredictor(ctx)
        llc = SetAssocCache("LLC", 4, 2, listener=pred)
        ctx.pc = 0x400100
        llc.fill(0, now=0)
        assert llc.probe(0).aux is not None

    def test_storage_larger_than_dppred(self):
        """AIP's storage is the paper's motivation for dpPred (Sec VI-D)."""
        ctx = AccessContext()
        pred = AipCachePredictor(ctx)
        assert pred.storage_bits(32768) > 100 * 8 * 1024  # way over 100KB
