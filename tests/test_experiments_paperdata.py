"""Consistency tests for the transcribed paper data."""

import pytest

from repro.experiments import paperdata
from repro.workloads.suite import workload_names


class TestWorkloadCoverage:
    def test_paper_workload_order_matches_suite(self):
        assert paperdata.WORKLOADS == workload_names()

    @pytest.mark.parametrize(
        "table",
        [
            paperdata.TABLE3_DOA_BLOCKS_ON_DOA_PAGE,
            paperdata.TABLE4_LLT_MPKI_REDUCTION,
            paperdata.TABLE5_LLC_MPKI_REDUCTION,
            paperdata.TABLE6_TLB_ACC_COV,
            paperdata.TABLE7_LLC_ACC_COV,
        ],
    )
    def test_every_table_covers_all_workloads(self, table):
        assert set(table) == set(workload_names())


class TestValueRanges:
    def test_table3_percentages(self):
        for v in paperdata.TABLE3_DOA_BLOCKS_ON_DOA_PAGE.values():
            assert 0 <= v <= 100

    def test_table4_tuples(self):
        for row in paperdata.TABLE4_LLT_MPKI_REDUCTION.values():
            assert len(row) == 5
            assert all(-100 <= v <= 100 for v in row)

    def test_table6_acc_cov_pairs(self):
        for row in paperdata.TABLE6_TLB_ACC_COV.values():
            assert len(row) == 3
            for acc, cov in row:
                assert 0 <= acc <= 100 and 0 <= cov <= 100

    def test_table7_cbpred_accuracy_at_least_98(self):
        """The claim cbPred's design rests on (Section VI-C)."""
        for (acc, _), _, _ in paperdata.TABLE7_LLC_ACC_COV.values():
            assert acc >= 98

    def test_headline_averages(self):
        assert paperdata.TABLE4_AVG_DPPRED == 9.65
        assert paperdata.TABLE4_AVG_ORACLE == 22.19
        assert paperdata.TABLE5_AVG_CBPRED == 4.24
        assert paperdata.FIG10_AVG_COMBINED_IPC_GAIN == 8.3
        assert paperdata.STORAGE_TOTAL_KB == 10.81

    def test_storage_consistency(self):
        assert (
            paperdata.STORAGE_DPPRED_BYTES / 1024
            + paperdata.STORAGE_CBPRED_KB
            == pytest.approx(paperdata.STORAGE_TOTAL_KB, abs=0.01)
        )
