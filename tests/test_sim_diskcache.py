"""Tests for the persistent on-disk cache (:mod:`repro.sim.diskcache`)."""

import hashlib
import json

import numpy as np
import pytest

import repro.sim.diskcache as diskcache
from repro.sim.config import fast_config
from repro.sim.runner import clear_run_cache, run_cached
from repro.workloads.suite import get_trace

BUDGET = 2000


@pytest.fixture
def cache_dir(tmp_path):
    """An enabled disk cache rooted in a throwaway directory."""
    directory = tmp_path / "cache"
    diskcache.enable(directory)
    yield directory
    diskcache.disable()


def _result(config=None):
    clear_run_cache()
    return run_cached("mcf", config or fast_config(), budget=BUDGET)


class TestResultStore:
    def test_round_trip(self, cache_dir):
        config = fast_config()
        result = _result(config)
        loaded = diskcache.load_result("mcf", config, BUDGET, 42)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()

    def test_disabled_cache_is_inert(self, tmp_path):
        config = fast_config()
        result = _result(config)
        diskcache.store_result("mcf", config, BUDGET, 42, result)
        assert diskcache.load_result("mcf", config, BUDGET, 42) is None
        assert not (tmp_path / "repro_cache").exists()

    def test_run_cached_replays_from_disk(self, cache_dir, monkeypatch):
        config = fast_config()
        first = _result(config)
        clear_run_cache()

        import repro.sim.runner as runner

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("simulated despite disk cache")

        monkeypatch.setattr(runner, "run_trace", boom)
        replayed = run_cached("mcf", config, budget=BUDGET)
        assert replayed.to_dict() == first.to_dict()

    def test_config_change_misses(self, cache_dir):
        _result(fast_config())
        other = fast_config(tlb_predictor="dppred")
        assert diskcache.load_result("mcf", other, BUDGET, 42) is None

    def test_schema_bump_invalidates(self, cache_dir, monkeypatch):
        config = fast_config()
        _result(config)
        monkeypatch.setattr(
            diskcache, "CACHE_SCHEMA_VERSION",
            diskcache.CACHE_SCHEMA_VERSION + 1,
        )
        assert diskcache.load_result("mcf", config, BUDGET, 42) is None

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        config = fast_config()
        _result(config)
        key = diskcache.result_key("mcf", config, BUDGET, 42)
        path = cache_dir / "results" / f"{key}.json"
        path.write_text("{not json")
        assert diskcache.load_result("mcf", config, BUDGET, 42) is None

    def test_entries_are_checksummed_envelopes(self, cache_dir):
        config = fast_config()
        result = _result(config)
        key = diskcache.result_key("mcf", config, BUDGET, 42)
        path = cache_dir / "results" / f"{key}.json"
        envelope = json.loads(path.read_text())
        assert envelope["magic"] == diskcache.RESULT_MAGIC
        assert envelope["schema"] == diskcache.CACHE_SCHEMA_VERSION
        assert envelope["payload"] == result.to_dict()
        expected = hashlib.sha256(
            json.dumps(envelope["payload"], sort_keys=True).encode()
        ).hexdigest()
        assert envelope["sha256"] == expected


class TestTraceStore:
    def test_round_trip(self, cache_dir):
        trace = get_trace("mcf", BUDGET)
        diskcache.store_trace("mcf", BUDGET, 42, trace)
        loaded = diskcache.load_trace("mcf", BUDGET, 42)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.pcs, trace.pcs)
        np.testing.assert_array_equal(loaded.vaddrs, trace.vaddrs)
        np.testing.assert_array_equal(loaded.writes, trace.writes)
        np.testing.assert_array_equal(loaded.gaps, trace.gaps)

    def test_miss_returns_none(self, cache_dir):
        assert diskcache.load_trace("mcf", BUDGET, 99) is None


class TestConfiguration:
    def test_env_variable_sets_directory(self, monkeypatch, tmp_path):
        target = tmp_path / "env_cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
        diskcache.enable()
        try:
            assert diskcache.cache_dir() == target
        finally:
            diskcache.disable()

    def test_explicit_directory_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        diskcache.enable(tmp_path / "explicit")
        try:
            assert diskcache.cache_dir() == tmp_path / "explicit"
        finally:
            diskcache.disable()


class TestMaintenance:
    def test_stats_and_purge(self, cache_dir):
        config = fast_config()
        _result(config)
        diskcache.store_trace("mcf", BUDGET, 42, get_trace("mcf", BUDGET))
        stats = diskcache.stats()
        assert stats["results"] == 1
        assert stats["traces"] == 1
        assert stats["bytes"] > 0
        # Purge removes the result, the trace npz, its sidecar, and the
        # two per-key advisory lock files the stores left behind.
        assert diskcache.purge() == 5
        after = diskcache.stats()
        assert after["results"] == 0 and after["traces"] == 0
