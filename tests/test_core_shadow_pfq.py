"""Tests for the shadow table and the PFN filter queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pfq import PfnFilterQueue
from repro.core.shadow import ShadowTable


class TestShadowTable:
    def test_insert_lookup_consumes(self):
        s = ShadowTable(2)
        s.insert(0x10, 0x99, 5)
        assert s.lookup(0x10) == (0x99, 5)
        assert s.lookup(0x10) is None  # consumed

    def test_fifo_eviction(self):
        s = ShadowTable(2)
        s.insert(1, 101, 0)
        s.insert(2, 102, 0)
        s.insert(3, 103, 0)  # evicts 1
        assert s.lookup(1) is None
        assert s.lookup(2) == (102, 0)
        assert s.lookup(3) == (103, 0)

    def test_reinsert_refreshes(self):
        s = ShadowTable(2)
        s.insert(1, 101, 0)
        s.insert(2, 102, 0)
        s.insert(1, 101, 0)  # refresh 1; 2 becomes oldest
        s.insert(3, 103, 0)  # evicts 2
        assert 1 in s
        assert 2 not in s

    def test_len_and_contains(self):
        s = ShadowTable(2)
        assert len(s) == 0
        s.insert(7, 1, 0)
        assert len(s) == 1
        assert 7 in s

    def test_stats(self):
        s = ShadowTable(2)
        s.insert(1, 1, 0)
        s.lookup(1)
        s.lookup(2)
        assert s.stats.get("hits") == 1
        assert s.stats.get("misses") == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ShadowTable(0)

    def test_storage_bits(self):
        # Paper: 2 entries x ~13 bytes = 26 bytes.
        assert ShadowTable(2).storage_bits() == 2 * 13 * 8

    @given(st.lists(st.integers(0, 9), max_size=200))
    def test_capacity_never_exceeded(self, vpns):
        s = ShadowTable(2)
        for v in vpns:
            s.insert(v, v + 100, 0)
            assert len(s) <= 2


class TestPfnFilterQueue:
    def test_membership(self):
        q = PfnFilterQueue(8)
        q.insert(42)
        assert 42 in q
        assert 43 not in q

    def test_fifo_eviction(self):
        q = PfnFilterQueue(2)
        q.insert(1)
        q.insert(2)
        q.insert(3)
        assert 1 not in q
        assert 2 in q and 3 in q

    def test_duplicate_insert_ignored(self):
        q = PfnFilterQueue(2)
        q.insert(1)
        q.insert(1)
        q.insert(2)
        q.insert(3)  # evicts 1 (inserted once)
        assert 1 not in q
        assert len(q) == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PfnFilterQueue(0)

    def test_storage_bits(self):
        # Paper: 8 entries x 39-bit PFN = 312 bits = 39 bytes.
        assert PfnFilterQueue(8).storage_bits() == 312

    @given(st.lists(st.integers(0, 30), max_size=300))
    def test_invariants(self, pfns):
        q = PfnFilterQueue(8)
        for p in pfns:
            q.insert(p)
            assert len(q) <= 8
            assert p in q  # most recent insert always resident
