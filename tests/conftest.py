"""Shared test fixtures.

The persistent disk cache (:mod:`repro.sim.diskcache`) is process-global
state: the experiment CLI enables it, and a stale cache could replay
results recorded before a simulator change — exactly what tests must not
do. Every test therefore runs with the cache disabled and pointed at a
throwaway directory; tests that exercise the cache enable it themselves.
"""

import pytest

import repro.sim.diskcache as diskcache


@pytest.fixture(autouse=True)
def _isolated_diskcache(monkeypatch, tmp_path):
    """Disable the disk cache and sandbox its directory for each test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))
    monkeypatch.setattr(diskcache, "_enabled", False)
    monkeypatch.setattr(diskcache, "_cache_dir", None)
    yield


@pytest.fixture(autouse=True)
def _no_ambient_jobs(monkeypatch):
    """Keep REPRO_JOBS / CLI job defaults from leaking into tests."""
    import repro.sim.parallel as parallel

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.setattr(parallel, "_default_jobs", None)
    yield


@pytest.fixture(autouse=True)
def _isolated_resilience(monkeypatch):
    """Reset retry/resume defaults and the harness event trace per test."""
    import repro.obs.harness as obs_harness
    import repro.sim.checkpoint as checkpoint
    import repro.sim.parallel as parallel

    for var in ("REPRO_RETRIES", "REPRO_RUN_TIMEOUT", "REPRO_BACKOFF",
                "REPRO_RESUME"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.setattr(parallel, "_default_retry", None)
    monkeypatch.setattr(checkpoint, "_default_resume", None)
    obs_harness.reset_harness()
    yield
    obs_harness.reset_harness()


@pytest.fixture(autouse=True)
def _isolated_engine(monkeypatch):
    """Reset engine selection (CLI default, env, chunk override) per test."""
    import repro.sim.engine as engine

    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_CHUNK", raising=False)
    monkeypatch.delenv("REPRO_SHM", raising=False)
    monkeypatch.setattr(engine, "_default_engine", None)
    yield
