"""Public-API contract tests: the README's promises must hold."""

import subprocess
import sys

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_readme_quickstart_snippet(self):
        """The exact flow the README shows."""
        from repro.sim import fast_config, run_trace
        from repro.workloads import get_trace

        trace = get_trace("mcf", 2000)
        baseline = run_trace(trace, fast_config())
        improved = run_trace(
            trace,
            fast_config(tlb_predictor="dppred", llc_predictor="cbpred"),
        )
        assert improved.speedup_over(baseline) > 0

    def test_subpackage_all_exports_resolve(self):
        import repro.common
        import repro.core
        import repro.mem
        import repro.predictors
        import repro.sim
        import repro.vm
        import repro.workloads

        for module in (
            repro.common, repro.core, repro.mem, repro.predictors,
            repro.sim, repro.vm, repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


@pytest.mark.parametrize(
    "script,args",
    [
        ("examples/quickstart.py", ["mcf", "2500"]),
        ("examples/custom_workload.py", ["2500"]),
    ],
)
def test_examples_run(script, args):
    """The runnable examples must stay runnable."""
    result = subprocess.run(
        [sys.executable, script, *args],
        capture_output=True,
        text=True,
        timeout=240,
        cwd="/root/repo",
    )
    assert result.returncode == 0, result.stderr
    assert "IPC" in result.stdout
