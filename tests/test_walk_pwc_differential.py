"""Hypothesis differentials for the flat tier's inlined walk/PWC path.

PR 10 inlined the 4-level radix walk, the 3-level PWC probe/fill, and the
cache-line pool into ``_FlatStepper`` (:mod:`repro.sim.engine`). The
reference implementations — :meth:`repro.vm.walker.PageTableWalker.walk`
over :class:`repro.vm.pagetable.PageTable` plus
:class:`repro.vm.pwc.PageWalkCaches` — still run on the scalar engine, so
scalar-vs-batched differentials over adversarial VPN/ASID/huge mixes pin
the inline byte-for-byte: walker stats (walks, walk_memory_accesses,
walk_cycles), PWC hit/miss splits, page-table allocation counters, and
the decision-event rings all travel through ``SimResult.to_dict()`` and
the telemetry payloads compared here.

``tlb_policy="srrip"`` disables the bulk pre-pass (no fused-LRU mirrors)
while the flat interpreter still qualifies, so those runs execute the
inlined walk on *every* record — nothing hides behind the numpy tier.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import fast_config, hugepage_config, mix2_config
from repro.sim.engine import ENGINE_BATCHED
from repro.workloads.trace import Trace

from tests.test_engine_equivalence import (
    SEED,
    assert_equivalent,
    run_both,
)

# Records deliberately spread VPNs across distinct 9-bit radix regions so
# every PWC outcome fires: same-2MB reuse (L1 PWC hits), same-1GB (L2),
# same-512GB (L3), and cross-region jumps (full misses). ``region``
# selects the top radix index, ``mid``/``lo`` the middle ones.
WALK_RECORDS = st.lists(
    st.tuples(
        st.integers(0, 3),        # pc site
        st.integers(0, 3),        # region: vpn bits 27.. (L3 PWC tag)
        st.integers(0, 2),        # mid: vpn bits 18..26 (L2 PWC tag)
        st.integers(0, 2),        # sub: vpn bits 9..17 (L1 PWC tag)
        st.integers(0, 6),        # page within the 2MB granule
        st.booleans(),            # write
        st.integers(0, 4),        # gap
    ),
    min_size=1,
    max_size=300,
)


def build_walk_trace(records, asids=None) -> Trace:
    pcs = np.array(
        [0x400000 + s * 4 for s, *_ in records], np.uint64
    )
    vpns = [
        (r << 27) | (m << 18) | (u << 9) | p
        for _, r, m, u, p, _, _ in records
    ]
    vaddrs = np.array([v << 12 for v in vpns], np.uint64)
    writes = np.array([w for *_, w, _ in records], np.bool_)
    gaps = np.array([g for *_, g in records], np.uint32)
    return Trace("hypo-walk", pcs, vaddrs, writes, gaps, asids)


@settings(max_examples=25, deadline=None)
@given(records=WALK_RECORDS)
def test_inlined_walk_pwc_matches_walker_reference(records):
    """Pure-flat (SRRIP) runs execute the inlined walk/PWC on every
    record; the fingerprint + telemetry comparison covers walker, PWC,
    and page-table stats plus the decision-event rings."""
    trace = build_walk_trace(records)
    config = fast_config(
        tlb_policy="srrip",
        tlb_predictor="dppred",
        llc_predictor="cbpred",
    )
    machine = assert_equivalent(trace, config, telemetry=True)
    stats = machine.engine_stats
    assert stats["engine"] == ENGINE_BATCHED
    assert stats["mode"] == "flat"
    assert stats["flat_records"] == len(trace)
    # Not vacuous: the flat tier really walked and consulted the PWCs.
    pwc = machine.walker.pwc.stats
    walks = machine.walker.stats.get("walks")
    assert walks > 0
    assert (
        pwc.get("pwc_l1_hits") + pwc.get("pwc_l2_hits")
        + pwc.get("pwc_l3_hits") + pwc.get("pwc_misses")
    ) == walks


@settings(max_examples=25, deadline=None)
@given(records=WALK_RECORDS)
def test_hybrid_walk_pwc_matches_walker_reference(records):
    """Default LRU config: hybrid bulk+flat, same byte-identity contract
    (residual spans run the inlined walk; bulk prefixes never walk)."""
    trace = build_walk_trace(records)
    config = fast_config(tlb_predictor="dppred", llc_predictor="cbpred")
    machine = assert_equivalent(trace, config, telemetry=True)
    assert machine.engine_stats["engine"] == ENGINE_BATCHED
    assert machine.engine_stats["mode"] == "hybrid"


@settings(max_examples=20, deadline=None)
@given(
    records=WALK_RECORDS,
    asid_runs=st.lists(
        st.tuples(st.integers(1, 3), st.integers(1, 60)),
        min_size=1,
        max_size=12,
    ),
)
def test_asid_mix_matches_scalar_tenant_loop(records, asid_runs):
    """Random ASID run-lengths over random VPN mixes: the bulk tier's
    combined (asid, vpn) keys and the scalar tenant bookkeeping must
    reproduce ``_run_scalar_tenants`` byte-for-byte, including context
    switches and shootdown effects."""
    n = len(records)
    asids = np.empty(n, np.int64)
    pos = 0
    runs = list(asid_runs)
    while pos < n:
        asid, length = runs[pos % len(runs)]
        asids[pos:pos + length] = asid
        pos += length
    trace = build_walk_trace(records, asids=asids)
    config = mix2_config(tlb_predictor="dppred", llc_predictor="cbpred")
    machine = assert_equivalent(trace, config, telemetry=True)
    stats = machine.engine_stats
    assert stats["engine"] == ENGINE_BATCHED
    assert stats.get("flat_reason") == "tenant"
    assert "fallback" not in stats


@settings(max_examples=20, deadline=None)
@given(records=WALK_RECORDS)
def test_hugepage_mix_matches_scalar_reference(records):
    """Huge-mapped tables: bulk prefixes see only splintered 4KB L1
    entries; residual records run the real walker (the flat tier
    declines). Byte-identity includes the LLT's huge-entry namespace."""
    trace = build_walk_trace(records)
    config = hugepage_config(tlb_predictor="dppred")
    machine = assert_equivalent(trace, config, telemetry=True)
    stats = machine.engine_stats
    assert stats["engine"] == ENGINE_BATCHED
    assert stats.get("flat_reason") == "hugepage"
    assert "fallback" not in stats


def test_walker_pwc_stat_keys_compared():
    """Guard the guard: the stats compared by the differentials above
    actually contain the walker/PWC/page-table keys the inline bumps —
    if a refactor renames them, the differentials would go vacuous."""
    trace = build_walk_trace([(0, r, m, u, p, False, 0)
                              for r in range(2)
                              for m in range(2)
                              for u in range(2)
                              for p in range(3)])
    config = fast_config(tlb_policy="srrip")
    (r_s, m_s), (r_b, m_b) = run_both(trace, config, seed=SEED)
    for machine in (m_s, m_b):
        walker = machine.walker.stats
        for key in ("walks", "walk_memory_accesses", "walk_cycles"):
            assert walker.get(key) > 0, key
        pt = machine.walker.page_table.stats
        for key in ("nodes_allocated", "pages_mapped"):
            assert pt.get(key) > 0, key
        pwc = machine.walker.pwc.stats
        assert pwc.get("pwc_misses") > 0
    for key in ("walks", "walk_memory_accesses", "walk_cycles"):
        assert m_s.walker.stats.get(key) == m_b.walker.stats.get(key), key
    for key in ("pwc_l1_hits", "pwc_l2_hits", "pwc_l3_hits", "pwc_misses"):
        assert (
            m_s.walker.pwc.stats.get(key)
            == m_b.walker.pwc.stats.get(key)
        ), key
