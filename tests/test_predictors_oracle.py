"""Tests for the two-pass oracle DOA predictor."""

from repro.predictors.oracle import DoaRecordingListener, OracleTlbListener
from repro.vm.tlb import Tlb


def run_pass1(accesses, entries=2, assoc=2):
    recorder = DoaRecordingListener()
    tlb = Tlb("LLT", num_entries=entries, assoc=assoc, listener=recorder)
    now = 0
    for vpn in accesses:
        now += 1
        if tlb.lookup(vpn, now) is None:
            tlb.fill(vpn, vpn + 100, 0, now)
    return recorder, tlb


class TestRecording:
    def test_doa_outcome_recorded(self):
        # vpn 0 filled, never hit, evicted by pressure.
        recorder, _ = run_pass1([0, 2, 4])  # one set (assoc 2): evicts 0
        assert recorder.outcomes[(0, 0)] is True

    def test_reused_outcome_recorded(self):
        recorder, _ = run_pass1([0, 0, 2, 4])
        assert recorder.outcomes[(0, 0)] is False

    def test_occurrences_tracked_separately(self):
        # vpn 0 evicted twice: first DOA, second reused.
        recorder, _ = run_pass1([0, 2, 4, 0, 0, 2, 4])
        assert recorder.outcomes[(0, 0)] is True
        assert recorder.outcomes[(0, 1)] is False


class TestOraclePass:
    def test_oracle_bypasses_recorded_doas(self):
        accesses = [0, 2, 4, 0]
        recorder, _ = run_pass1(accesses)
        oracle = OracleTlbListener(recorder.outcomes)
        tlb = Tlb("LLT", num_entries=2, assoc=2, listener=oracle)
        now = 0
        for vpn in accesses:
            now += 1
            if tlb.lookup(vpn, now) is None:
                tlb.fill(vpn, vpn + 100, 0, now)
        assert oracle.stats.get("oracle_bypasses") >= 1

    def test_oracle_never_increases_misses_on_replay(self):
        """The defining oracle property on an identical replay."""
        import random

        rng = random.Random(7)
        accesses = [rng.randrange(12) for _ in range(600)]
        recorder, base_tlb = run_pass1(accesses, entries=4, assoc=2)
        base_misses = base_tlb.stats.get("misses")

        oracle = OracleTlbListener(recorder.outcomes)
        tlb = Tlb("LLT", num_entries=4, assoc=2, listener=oracle)
        now = 0
        for vpn in accesses:
            now += 1
            if tlb.lookup(vpn, now) is None:
                tlb.fill(vpn, vpn + 100, 0, now)
        assert tlb.stats.get("misses") <= base_misses

    def test_unknown_occurrence_allocates(self):
        oracle = OracleTlbListener({})
        tlb = Tlb("LLT", num_entries=2, assoc=2, listener=oracle)
        tlb.fill(0, 100, 0, now=0)
        assert tlb.probe(0) is not None


class TestLlcOracle:
    def make_llc(self, listener, num_sets=1, assoc=2):
        from repro.mem.cache import SetAssocCache

        return SetAssocCache("LLC", num_sets, assoc, listener=listener)

    def drive(self, llc, blocks):
        now = 0
        for b in blocks:
            now += 1
            if not llc.lookup(b, now):
                llc.fill(b, now)

    def test_recording_and_replay(self):
        from repro.predictors.oracle import (
            DoaRecordingCacheListener,
            OracleCacheListener,
        )

        blocks = [0, 2, 4, 0]  # one set, assoc 2: block 0 dies, refills
        recorder = DoaRecordingCacheListener()
        base = self.make_llc(recorder)
        self.drive(base, blocks)
        assert recorder.outcomes[(0, 0)] is True
        base_misses = base.stats.get("misses")

        oracle = OracleCacheListener(recorder.outcomes)
        llc = self.make_llc(oracle)
        self.drive(llc, blocks)
        assert oracle.stats.get("oracle_bypasses") >= 1
        assert llc.stats.get("misses") <= base_misses

    def test_end_to_end_llc_oracle_never_worse(self):
        import numpy as np

        from repro.sim import fast_config, run_trace
        from repro.workloads.trace import Trace

        rng = np.random.RandomState(3)
        n = 3000
        vaddrs = (
            0x10000000
            + rng.randint(0, 300, n).astype(np.uint64) * 4096
            + rng.randint(0, 64, n).astype(np.uint64) * 64
        )
        trace = Trace(
            "t",
            np.full(n, 0x400000, dtype=np.uint64),
            vaddrs,
            np.zeros(n, dtype=bool),
            np.full(n, 3, dtype=np.uint16),
        )
        base = run_trace(trace, fast_config())
        orc = run_trace(trace, fast_config(llc_predictor="oracle"))
        assert orc.llc_misses <= base.llc_misses * 1.02
