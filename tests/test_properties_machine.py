"""Property-based tests over random access streams at machine level.

These pin the structural invariants the whole evaluation rests on: LLC
inclusion, translation stability, conservation of eviction classes, and
that predictor bypassing never corrupts architectural state (the returned
translation/data path), only placement.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import fast_config
from repro.sim.machine import Machine

# Small page pool so streams exercise eviction paths quickly.
PAGES = st.integers(0, 600)
STREAMS = st.lists(
    st.tuples(PAGES, st.booleans(), st.integers(0, 3)),
    min_size=20,
    max_size=250,
)


def drive(machine, stream):
    for page, write, site in stream:
        machine.access(
            0x400000 + site * 4, 0x10000000 + page * 4096, write, 2
        )


@settings(max_examples=15, deadline=None)
@given(stream=STREAMS)
def test_inclusion_invariant(stream):
    """Every L1/L2-resident block is LLC-resident (inclusive hierarchy)."""
    m = Machine(fast_config())
    drive(m, stream)
    for block in m.l1d.resident_blocks() + m.l2.resident_blocks():
        assert m.llc.probe(block) is not None


@settings(max_examples=15, deadline=None)
@given(stream=STREAMS)
def test_translation_stability(stream):
    """A VPN always translates to the same PFN, whatever the TLB state."""
    m = Machine(fast_config(tlb_predictor="dppred"))
    drive(m, stream)
    seen = {}
    for vpn, pfn in ((v, m.page_table.lookup(v)) for v in set(
        0x10000 + p for p, _, _ in stream
    )):
        if pfn is not None:
            assert seen.setdefault(vpn, pfn) == pfn


@settings(max_examples=15, deadline=None)
@given(stream=STREAMS)
def test_llt_occupancy_bounded_under_bypass(stream):
    m = Machine(fast_config(tlb_predictor="dppred"))
    drive(m, stream)
    assert m.l2_tlb.occupancy() <= m.config.l2_tlb.entries


@settings(max_examples=15, deadline=None)
@given(stream=STREAMS)
def test_tlb_stats_conservation(stream):
    """hits + misses == lookups; fills - evictions == occupancy."""
    m = Machine(fast_config())
    drive(m, stream)
    s = m.l2_tlb.stats
    assert (
        s.get("fills") - s.get("evictions") - s.get("invalidations")
        == m.l2_tlb.occupancy()
    )


@settings(max_examples=10, deadline=None)
@given(stream=STREAMS)
def test_bypass_only_changes_placement_not_results(stream):
    """With and without dpPred, the same instruction/access counts are
    processed and memory contents (translations) agree — the predictor may
    only change WHERE things are cached."""
    base = Machine(fast_config(), seed=1)
    pred = Machine(fast_config(tlb_predictor="dppred"), seed=1)
    drive(base, stream)
    drive(pred, stream)
    assert base.instructions == pred.instructions
    assert base.now == pred.now
    # Same demand pages were mapped, to the same frames (same allocator
    # seed and same first-touch order).
    assert base.page_table.pages_mapped == pred.page_table.pages_mapped


@settings(max_examples=10, deadline=None)
@given(stream=STREAMS, entries=st.sampled_from([2, 4, 8]))
def test_shadow_table_never_holds_llt_resident_vpn(stream, entries):
    """A VPN is in the LLT or the shadow table, never both (it is removed
    from the shadow on refill)."""
    cfg = fast_config(
        tlb_predictor="dppred", dppred_shadow_entries=entries
    )
    m = Machine(cfg)
    drive(m, stream)
    shadow = m.tlb_predictor.shadow
    if shadow is not None:
        for vpn in list(shadow._entries):
            assert m.l2_tlb.probe(vpn) is None
