"""Tests for the page-walk caches."""

import pytest

from repro.vm.pwc import PageWalkCaches, _FullyAssocLru


class TestFullyAssocLru:
    def test_hit_after_fill(self):
        c = _FullyAssocLru(2)
        c.fill(1)
        assert c.lookup(1)
        assert not c.lookup(2)

    def test_lru_eviction(self):
        c = _FullyAssocLru(2)
        c.fill(1)
        c.fill(2)
        c.lookup(1)  # promote
        c.fill(3)  # evicts 2
        assert c.lookup(1)
        assert not c.lookup(2)
        assert c.lookup(3)

    def test_refill_does_not_grow(self):
        c = _FullyAssocLru(2)
        c.fill(1)
        c.fill(1)
        c.fill(2)
        assert len(c) == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            _FullyAssocLru(0)


class TestPageWalkCaches:
    def test_cold_miss_resolves_nothing(self):
        pwc = PageWalkCaches()
        resolved, latency = pwc.consult(0x12345)
        assert resolved == 0
        assert latency == 1 + 1 + 2  # probed all three levels
        assert pwc.stats.get("pwc_misses") == 1

    def test_fill_then_l1_hit(self):
        pwc = PageWalkCaches()
        pwc.fill(0x12345)
        resolved, latency = pwc.consult(0x12345)
        assert resolved == 3  # only the PTE load remains
        assert latency == 1
        assert pwc.stats.get("pwc_l1_hits") == 1

    def test_neighbour_page_shares_pde(self):
        # VPNs in the same 512-page region share the L1 PWC entry.
        pwc = PageWalkCaches()
        pwc.fill(0x12345)
        resolved, _ = pwc.consult(0x12345 ^ 0x1)
        assert resolved == 3

    def test_l2_hit_when_l1_evicted(self):
        pwc = PageWalkCaches(entries=(1, 8, 16))
        pwc.fill(0x0_000_00)
        # A second fill from a different 2MB region evicts the 1-entry L1
        # PWC but the L2 entry for the first region's upper levels remains.
        pwc.fill(1 << 9)  # different PDE region, same PDPTE region
        resolved, latency = pwc.consult(0)
        assert resolved == 2
        assert latency == 1 + 1
        assert pwc.stats.get("pwc_l2_hits") == 1

    def test_l3_hit(self):
        pwc = PageWalkCaches(entries=(1, 1, 16))
        pwc.fill(0)
        pwc.fill(1 << 18)  # same top level, different middle levels
        resolved, latency = pwc.consult(0)
        assert resolved == 1
        assert latency == 1 + 1 + 2

    def test_distinct_regions_do_not_alias(self):
        pwc = PageWalkCaches()
        pwc.fill(0)
        resolved, _ = pwc.consult(1 << 27)  # different at every level
        assert resolved == 0

    def test_rejects_bad_level_count(self):
        with pytest.raises(ValueError):
            PageWalkCaches(entries=(4, 8))

    def test_walk_access_range(self):
        """A consult always leaves 1..4 memory accesses for the walk."""
        pwc = PageWalkCaches()
        for vpn in [0, 5, 1 << 9, 1 << 18, 1 << 27, 0x12345]:
            resolved, _ = pwc.consult(vpn)
            assert 0 <= resolved <= 3
            pwc.fill(vpn)
            resolved, _ = pwc.consult(vpn)
            assert resolved == 3
