"""Tests for the two-dimensional page history table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.phist import PageHistoryTable


class TestGeometry:
    def test_paper_default_is_1024_entries(self):
        t = PageHistoryTable(pc_hash_bits=6, vpn_hash_bits=4)
        assert t.num_entries == 1024
        assert t.num_rows == 64
        assert t.num_cols == 16

    def test_pure_pc_variant(self):
        t = PageHistoryTable(pc_hash_bits=10, vpn_hash_bits=0)
        assert t.num_entries == 1024
        assert t.num_cols == 1

    def test_storage_bits(self):
        t = PageHistoryTable(6, 4, counter_bits=3)
        assert t.storage_bits() == 3 * 1024  # 384 bytes, per Section V-D

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            PageHistoryTable(pc_hash_bits=0)
        with pytest.raises(ValueError):
            PageHistoryTable(pc_hash_bits=6, vpn_hash_bits=-1)


class TestTraining:
    def test_doa_training_raises_counter(self):
        t = PageHistoryTable()
        for _ in range(7):
            t.train_doa(5, 3)
        assert t.value(5, 3) == 7
        assert t.predicts_doa(5, 3, threshold=6)

    def test_threshold_is_strict(self):
        t = PageHistoryTable()
        for _ in range(6):
            t.train_doa(5, 3)
        assert not t.predicts_doa(5, 3, threshold=6)

    def test_not_doa_clears(self):
        t = PageHistoryTable()
        for _ in range(7):
            t.train_doa(5, 3)
        t.train_not_doa(5, 3)
        assert t.value(5, 3) == 0

    def test_cells_are_independent(self):
        t = PageHistoryTable()
        t.train_doa(1, 1)
        assert t.value(1, 2) == 0
        assert t.value(2, 1) == 0

    def test_counter_saturates(self):
        t = PageHistoryTable(counter_bits=3)
        for _ in range(100):
            t.train_doa(0, 0)
        assert t.value(0, 0) == 7


class TestColumnFlush:
    def test_flush_clears_whole_column(self):
        t = PageHistoryTable(pc_hash_bits=3, vpn_hash_bits=2)
        for pc_h in range(8):
            for _ in range(5):
                t.train_doa(pc_h, 1)
        t.flush_column(1)
        assert all(t.value(pc_h, 1) == 0 for pc_h in range(8))

    def test_flush_leaves_other_columns(self):
        t = PageHistoryTable(pc_hash_bits=3, vpn_hash_bits=2)
        t.train_doa(0, 1)
        t.train_doa(0, 2)
        t.flush_column(1)
        assert t.value(0, 2) == 1

    def test_flush_counted(self):
        t = PageHistoryTable()
        t.flush_column(0)
        assert t.stats.get("column_flushes") == 1


class TestAliasing:
    def test_out_of_range_hashes_wrap(self):
        t = PageHistoryTable(pc_hash_bits=3, vpn_hash_bits=2)
        t.train_doa(8, 4)  # wraps to (0, 0)
        assert t.value(0, 0) == 1


@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 63),
            st.integers(0, 15),
            st.sampled_from(["doa", "not_doa", "flush"]),
        ),
        max_size=300,
    )
)
def test_counters_always_in_range(ops):
    t = PageHistoryTable()
    for pc_h, vpn_h, op in ops:
        if op == "doa":
            t.train_doa(pc_h, vpn_h)
        elif op == "not_doa":
            t.train_not_doa(pc_h, vpn_h)
        else:
            t.flush_column(vpn_h)
        assert 0 <= t.value(pc_h, vpn_h) <= 7
