"""Tests for the SHiP baseline predictor (TLB and LLC variants)."""

import pytest

from repro.mem.cache import SetAssocCache
from repro.predictors.base import AccessContext
from repro.predictors.ship import ShipCachePredictor, ShipConfig, ShipTlbPredictor
from repro.vm.tlb import Tlb


def make_ship_tlb(**cfg):
    pred = ShipTlbPredictor(ShipConfig(signature_bits=8, **cfg))
    tlb = Tlb("LLT", num_entries=4, assoc=2, listener=pred)
    return tlb, pred


class TestShipTlb:
    def test_dead_evictions_train_distant(self):
        tlb, pred = make_ship_tlb()
        pc = 0x400100
        # Two dead generations drive the 2-bit counter from 1 to 0.
        for i in range(2):
            tlb.fill(i, 100 + i, pc, now=i)
            tlb.invalidate(i, now=i)
        sig = pred.core.signature(pc)
        assert pred.core.predicts_distant(sig)

    def test_distant_insertion_becomes_victim(self):
        tlb, pred = make_ship_tlb()
        pc_dead = 0x400100
        pc_live = 0x400200
        for i in range(2):
            tlb.fill(i * 2, 100, pc_dead, now=i)
            tlb.invalidate(i * 2, now=i)
        # Set 0: fill a live entry then a predicted-distant one.
        tlb.fill(0, 100, pc_live, now=10)
        tlb.fill(2, 101, pc_dead, now=11)  # same set, predicted distant
        victim = tlb.fill(4, 102, pc_live, now=12)
        assert victim.vpn == 2  # the distant entry went first

    def test_hits_train_reusable(self):
        tlb, pred = make_ship_tlb()
        pc = 0x400300
        tlb.fill(0, 100, pc, now=0)
        tlb.lookup(0, now=1)
        sig = pred.core.signature(pc)
        assert not pred.core.predicts_distant(sig)
        assert pred.core.stats.get("hit_trainings") == 1

    def test_observer_called(self):
        seen = []
        pred = ShipTlbPredictor(
            ShipConfig(signature_bits=8),
            prediction_observer=lambda vpn, d: seen.append((vpn, d)),
        )
        tlb = Tlb("LLT", num_entries=4, assoc=2, listener=pred)
        tlb.fill(0, 100, 0x400000, now=0)
        assert seen == [(0, False)]

    def test_storage_accounting(self):
        pred = ShipTlbPredictor(ShipConfig(signature_bits=8))
        # 256-entry 2-bit SHCT + 9 bits per entry.
        assert pred.storage_bits(1024) == 256 * 2 + 9 * 1024

    def test_invalid_initial_counter(self):
        with pytest.raises(ValueError):
            ShipTlbPredictor(ShipConfig(counter_bits=2, initial_counter=4))


class TestShipCache:
    def test_dead_blocks_train_distant(self):
        ctx = AccessContext()
        pred = ShipCachePredictor(ctx, ShipConfig(signature_bits=8))
        llc = SetAssocCache("LLC", 4, 2, listener=pred)
        ctx.pc = 0x400100
        for i in range(2):
            llc.fill(4 * i, now=i)
            llc.invalidate(4 * i, now=i)
        sig = pred.core.signature(ctx.pc)
        assert pred.core.predicts_distant(sig)

    def test_context_pc_determines_signature(self):
        ctx = AccessContext()
        pred = ShipCachePredictor(ctx, ShipConfig(signature_bits=8))
        llc = SetAssocCache("LLC", 4, 2, listener=pred)
        ctx.pc = 0x400100
        llc.fill(0, now=0)
        assert llc.probe(0).aux == pred.core.signature(0x400100)

    def test_distant_fill_marked(self):
        ctx = AccessContext()
        pred = ShipCachePredictor(ctx, ShipConfig(signature_bits=8))
        llc = SetAssocCache("LLC", 1, 2, listener=pred)
        ctx.pc = 0x400100
        for i in range(2):
            llc.fill(i + 10, now=i)
            llc.invalidate(i + 10, now=i)
        llc.fill(1, now=10)
        assert pred.stats.get("distant_predictions") >= 1

    def test_hit_promotes_signature(self):
        ctx = AccessContext()
        pred = ShipCachePredictor(ctx, ShipConfig(signature_bits=8))
        llc = SetAssocCache("LLC", 4, 2, listener=pred)
        ctx.pc = 0x400400
        llc.fill(0, now=0)
        llc.lookup(0, now=1)
        assert not pred.core.predicts_distant(pred.core.signature(0x400400))
