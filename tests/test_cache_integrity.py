"""Integrity tests for the checksummed on-disk cache (schema 2).

Every corruption mode — truncation, bit flips, payload tampering, schema
drift, a missing trace sidecar — must be *detected* (checksum/envelope
verification), *quarantined* (the damaged file moved aside for
post-mortem, surfaced as an ``cache_corrupt`` harness event), and
*recomputed* (the caller sees a miss, never a stale or mangled result).
"""

import json

import numpy as np
import pytest

import repro.obs.harness as obs_harness
import repro.sim.diskcache as diskcache
from repro.sim.config import fast_config
from repro.sim.runner import clear_run_cache, run_cached
from repro.workloads.suite import get_trace

BUDGET = 2000


@pytest.fixture
def cache_dir(tmp_path):
    directory = tmp_path / "cache"
    diskcache.enable(directory)
    clear_run_cache()
    yield directory
    clear_run_cache()
    diskcache.disable()


def _store_result(config=None):
    clear_run_cache()
    return run_cached("mcf", config or fast_config(), budget=BUDGET)


def _result_path(cache_dir, config):
    key = diskcache.result_key("mcf", config, BUDGET, 42)
    return cache_dir / "results" / f"{key}.json"


def _flip_byte(path, offset=-20):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def _corruption_events():
    return [
        row for row in obs_harness.harness_events().rows()
        if row["kind"] == "cache_corrupt"
    ]


class TestResultIntegrity:
    def test_truncated_entry_detected_and_quarantined(self, cache_dir):
        config = fast_config()
        _store_result(config)
        path = _result_path(cache_dir, config)
        size = path.stat().st_size
        with open(path, "r+b") as f:
            f.truncate(size // 2)
        assert diskcache.load_result("mcf", config, BUDGET, 42) is None
        assert not path.exists()
        assert (diskcache.quarantine_dir() / path.name).exists()
        (event,) = _corruption_events()
        assert event["store"] == "result"

    def test_bit_flip_in_payload_detected(self, cache_dir):
        config = fast_config()
        _store_result(config)
        path = _result_path(cache_dir, config)
        _flip_byte(path)
        assert diskcache.load_result("mcf", config, BUDGET, 42) is None
        assert _corruption_events()

    def test_tampered_payload_fails_checksum(self, cache_dir):
        """A mutated-but-parseable payload (checksum not recomputed) must
        not replay: only checksummed content is trusted."""
        config = fast_config()
        stored = _store_result(config)
        path = _result_path(cache_dir, config)
        envelope = json.loads(path.read_text())
        envelope["payload"]["cycles"] = stored.cycles + 1.0
        path.write_text(json.dumps(envelope, sort_keys=True))
        assert diskcache.load_result("mcf", config, BUDGET, 42) is None

    def test_schema_drift_quarantined(self, cache_dir):
        config = fast_config()
        _store_result(config)
        path = _result_path(cache_dir, config)
        envelope = json.loads(path.read_text())
        envelope["schema"] = diskcache.CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(envelope, sort_keys=True))
        assert diskcache.load_result("mcf", config, BUDGET, 42) is None
        assert _corruption_events()

    def test_corruption_recomputes_never_stale(self, cache_dir):
        """After corruption, a rerun recomputes the true result — and the
        repaired cache entry round-trips again."""
        config = fast_config()
        clean = _store_result(config)
        path = _result_path(cache_dir, config)
        _flip_byte(path)
        clear_run_cache()
        recomputed = run_cached("mcf", config, budget=BUDGET)
        assert recomputed.to_dict() == clean.to_dict()
        reloaded = diskcache.load_result("mcf", config, BUDGET, 42)
        assert reloaded is not None
        assert reloaded.to_dict() == clean.to_dict()


class TestTraceIntegrity:
    def _store_trace(self):
        trace = get_trace("mcf", BUDGET)
        diskcache.store_trace("mcf", BUDGET, 42, trace)
        key = diskcache.trace_key("mcf", BUDGET, 42)
        return trace, diskcache.cache_dir() / "traces" / f"{key}.npz"

    def test_round_trip_verifies(self, cache_dir):
        trace, _ = self._store_trace()
        loaded = diskcache.load_trace("mcf", BUDGET, 42)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.vaddrs, trace.vaddrs)

    def test_bit_flip_detected(self, cache_dir):
        _, path = self._store_trace()
        _flip_byte(path, offset=len(path.read_bytes()) // 2)
        assert diskcache.load_trace("mcf", BUDGET, 42) is None
        (event,) = _corruption_events()
        assert event["store"] == "trace"
        assert (diskcache.quarantine_dir() / path.name).exists()

    def test_missing_sidecar_is_corrupt(self, cache_dir):
        _, path = self._store_trace()
        path.with_suffix(".npz.sha256").unlink()
        assert diskcache.load_trace("mcf", BUDGET, 42) is None
        assert _corruption_events()


class TestMaintenance:
    def test_verify_scans_and_quarantines(self, cache_dir):
        good_cfg = fast_config()
        bad_cfg = fast_config(tlb_predictor="dppred")
        _store_result(good_cfg)
        clear_run_cache()
        run_cached("mcf", bad_cfg, budget=BUDGET)
        _flip_byte(_result_path(cache_dir, bad_cfg))
        self_trace = get_trace("mcf", BUDGET)
        diskcache.store_trace("mcf", BUDGET, 42, self_trace)
        report = diskcache.verify()
        assert report == {
            "results_ok": 1, "results_bad": 1,
            "traces_ok": 1, "traces_bad": 0,
        }
        # The good entry still loads; the bad one is gone from the cache.
        assert diskcache.load_result("mcf", good_cfg, BUDGET, 42) is not None
        assert not _result_path(cache_dir, bad_cfg).exists()

    def test_migrate_removes_legacy_entries(self, cache_dir):
        config = fast_config()
        kept = _store_result(config)
        results = cache_dir / "results"
        # A schema-1 entry: raw payload JSON, no envelope.
        (results / "legacy00.json").write_text(json.dumps(kept.to_dict()))
        traces = cache_dir / "traces"
        traces.mkdir(parents=True, exist_ok=True)
        (traces / "legacy.npz").write_bytes(b"not really npz")
        report = diskcache.migrate()
        assert report == {"removed_results": 1, "removed_traces": 1}
        assert diskcache.load_result("mcf", config, BUDGET, 42) is not None

    def test_quarantine_preserves_damaged_bytes(self, cache_dir):
        config = fast_config()
        _store_result(config)
        path = _result_path(cache_dir, config)
        _flip_byte(path)
        damaged = path.read_bytes()
        diskcache.load_result("mcf", config, BUDGET, 42)
        assert (diskcache.quarantine_dir() / path.name).read_bytes() == damaged
