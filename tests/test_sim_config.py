"""Tests for system configuration and profiles."""

import pytest

from repro.sim.config import (
    SystemConfig,
    fast_config,
    iso_storage_config,
    paper_config,
    scale_llc,
    scale_llt,
)


class TestProfiles:
    def test_paper_profile_matches_table1(self):
        cfg = paper_config()
        assert cfg.l2_tlb.entries == 1024 and cfg.l2_tlb.assoc == 8
        assert cfg.l1_dtlb.entries == 64
        assert cfg.l1_itlb.entries == 128
        assert cfg.l1d.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 256 * 1024
        assert cfg.llc.size_bytes == 2 * 1024 * 1024
        assert cfg.mem_latency == 191
        assert cfg.pwc_entries == (4, 8, 16)
        assert cfg.cbpred_bhist_entries == 4096

    def test_fast_profile_preserves_ratios(self):
        fast, paper = fast_config(), paper_config()
        assert paper.l2_tlb.entries / fast.l2_tlb.entries == 8
        assert paper.llc.blocks / fast.llc.blocks == 8
        assert fast.l2_tlb.assoc == paper.l2_tlb.assoc
        assert fast.llc.assoc == paper.llc.assoc
        # bHIST : LLC blocks ratio is the paper's 1:8 in both.
        assert fast.llc.blocks // fast.cbpred_bhist_entries == 8
        assert paper.llc.blocks // paper.cbpred_bhist_entries == 8

    def test_fast_overrides(self):
        cfg = fast_config(tlb_predictor="dppred")
        assert cfg.tlb_predictor == "dppred"

    def test_configs_are_hashable(self):
        assert hash(fast_config()) == hash(fast_config())
        assert fast_config() == fast_config()
        assert fast_config() != fast_config(tlb_predictor="dppred")


class TestValidation:
    def test_unknown_tlb_predictor(self):
        with pytest.raises(ValueError):
            fast_config(tlb_predictor="belady").validate()

    def test_unknown_llc_predictor(self):
        with pytest.raises(ValueError):
            fast_config(llc_predictor="belady").validate()

    def test_cbpred_requires_dppred(self):
        """Section VI-B: cbPred works only coupled with dpPred."""
        with pytest.raises(ValueError):
            fast_config(llc_predictor="cbpred").validate()
        with pytest.raises(ValueError):
            fast_config(
                tlb_predictor="ship", llc_predictor="cbpred"
            ).validate()
        # Valid couplings:
        fast_config(
            tlb_predictor="dppred", llc_predictor="cbpred"
        ).validate()
        fast_config(
            tlb_predictor="dppred_sh", llc_predictor="cbpred_nopfq"
        ).validate()

    def test_with_predictors(self):
        cfg = fast_config().with_predictors(tlb="dppred", llc="cbpred")
        assert cfg.tlb_predictor == "dppred"
        assert cfg.llc_predictor == "cbpred"


class TestDerivedConfigs:
    def test_iso_storage_grows_one_way(self):
        base = fast_config()
        iso = iso_storage_config(base)
        assert iso.l2_tlb.assoc == base.l2_tlb.assoc + 1
        assert iso.l2_tlb.entries == base.l2_tlb.entries * 9 // 8
        assert iso.tlb_predictor == "none"

    def test_scale_llt(self):
        cfg = scale_llt(fast_config(), 64)
        assert cfg.l2_tlb.entries == 64
        assert cfg.l2_tlb.assoc == 8

    def test_scale_llt_non_divisible_uses_12_ways(self):
        cfg = scale_llt(fast_config(), 192)
        assert cfg.l2_tlb.entries == 192
        assert cfg.l2_tlb.assoc == 12

    def test_scale_llc(self):
        base = fast_config()
        grown = scale_llc(base, 1.5)
        assert grown.llc.blocks == base.llc.blocks * 3 // 2
        assert grown.llc.num_sets == base.llc.num_sets

    def test_effective_llc_policy(self):
        assert fast_config().effective_llc_policy == "lru"
        cfg = fast_config(llc_policy="srrip")
        assert cfg.effective_llc_policy == "srrip"
        assert cfg.cache_policy == "lru"
