"""Tests for the parallel run-matrix executor (:mod:`repro.sim.parallel`)."""

import json

import pytest

import repro.sim.parallel as parallel
from repro.sim.config import fast_config
from repro.sim.parallel import (
    MatrixPlan,
    RunRequest,
    resolve_jobs,
    run_matrix,
    set_default_jobs,
)
from repro.sim.runner import cached_result, clear_run_cache
from repro.workloads.suite import clear_trace_cache

BUDGET = 2000


def _requests():
    return [
        RunRequest(wl, cfg, BUDGET)
        for wl in ("mcf", "cg.B")
        for cfg in (fast_config(), fast_config(tlb_predictor="dppred"))
    ]


def _fingerprints(results):
    return {
        req: json.dumps(res.to_dict(), sort_keys=True)
        for req, res in results.items()
    }


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs() == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_default_jobs_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        set_default_jobs(2)
        try:
            assert resolve_jobs() == 2
        finally:
            set_default_jobs(None)

    def test_argument_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        set_default_jobs(2)
        try:
            assert resolve_jobs(5) == 5
        finally:
            set_default_jobs(None)

    def test_clamped_to_at_least_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestRunMatrix:
    def test_parallel_matches_serial_bit_for_bit(self):
        requests = _requests()
        clear_run_cache()
        clear_trace_cache()
        serial = run_matrix(requests, jobs=1)
        clear_run_cache()
        clear_trace_cache()
        parallel_results = run_matrix(requests, jobs=2)
        assert _fingerprints(serial) == _fingerprints(parallel_results)

    def test_duplicates_coalesce(self, monkeypatch):
        clear_run_cache()
        calls = []
        real = parallel.run_cached

        def counting(workload, config, budget, seed):
            calls.append(workload)
            return real(workload, config, budget, seed)

        monkeypatch.setattr(parallel, "run_cached", counting)
        req = RunRequest("mcf", fast_config(), BUDGET)
        results = run_matrix([req, req, req], jobs=1)
        assert len(results) == 1
        assert calls == ["mcf"]

    def test_cached_entries_never_resimulate(self, monkeypatch):
        requests = _requests()
        clear_run_cache()
        run_matrix(requests, jobs=1)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("simulated despite warm cache")

        monkeypatch.setattr(parallel, "run_cached", boom)
        replayed = run_matrix(requests, jobs=1)
        assert set(replayed) == set(requests)

    def test_results_primed_into_run_cache(self):
        req = RunRequest("mcf", fast_config(), BUDGET)
        clear_run_cache()
        results = run_matrix([req], jobs=1)
        hit = cached_result(req.workload, req.config, req.budget, req.seed)
        assert hit is results[req]


class TestMatrixPlan:
    def test_add_suite_cross_product(self):
        plan = MatrixPlan().add_suite(
            ["mcf", "cg.B"],
            [fast_config(), fast_config(tlb_predictor="dppred")],
            budget=BUDGET,
        )
        assert len(plan) == 4

    def test_execute_fills_run_cache(self):
        clear_run_cache()
        plan = MatrixPlan().add("mcf", fast_config(), budget=BUDGET)
        results = plan.execute(jobs=1)
        assert len(results) == 1
        req = plan.requests[0]
        assert cached_result(
            req.workload, req.config, req.budget, req.seed
        ) is not None
