"""End-to-end integration tests: the paper's qualitative claims must hold
on small-budget runs of the real pipeline.

These use a reduced access budget (REPRO_BUDGET-independent) so the whole
module stays fast; the full-budget numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.experiments.common import run_suite
from repro.experiments import common
from repro.sim import fast_config, run_cached
from repro.workloads import workload_names

BUDGET = 12_000

STENCILS = ["cactusADM", "lbm", "cg.B"]


@pytest.fixture(scope="module")
def headline():
    """Baseline + combined-predictor runs for a few workloads."""
    configs = {
        "base": common.baseline(),
        "dppred": common.dppred(),
        "combined": common.combined(),
    }
    return run_suite(configs, BUDGET, workloads=STENCILS + ["mcf", "pr"])


class TestHeadlineClaims:
    def test_dppred_reduces_llt_mpki_on_stencils(self, headline):
        """The paper's big winners must show double-digit reductions."""
        for wl in STENCILS:
            red = headline.llt_mpki_reduction(wl, "dppred", "base")
            assert red > 10.0, f"{wl}: only {red:.1f}%"

    def test_dppred_improves_ipc_on_stencils(self, headline):
        for wl in STENCILS:
            assert headline.ipc_vs(wl, "dppred", "base") > 1.0

    def test_combined_never_catastrophic(self, headline):
        """Figure 10: dpPred+cbPred improves (or at worst ~matches) every
        application; it must never tank one."""
        for wl in STENCILS + ["mcf", "pr"]:
            assert headline.ipc_vs(wl, "combined", "base") > 0.99

    def test_dppred_accuracy_high_on_streams(self, headline):
        for wl in ("cactusADM", "lbm"):
            acc = headline.result(wl, "dppred").tlb_accuracy
            assert acc is not None and acc > 0.9

    def test_cbpred_accuracy_very_high(self, headline):
        """Table VII: PFQ pre-filtering gives cbPred ~>=98% accuracy."""
        for wl in STENCILS:
            acc = headline.result(wl, "combined").llc_accuracy
            if acc is not None:
                assert acc > 0.9, f"{wl}: {acc:.2f}"

    def test_bypasses_happen(self, headline):
        total = sum(
            headline.result(wl, "dppred").llt_bypasses for wl in STENCILS
        )
        assert total > 100


class TestOrderingClaims:
    def test_aip_tlb_near_useless(self):
        """Table IV: AIP-TLB gives ~0% MPKI reduction (DOA-blind)."""
        for wl in ("cactusADM", "mcf"):
            base = run_cached(wl, fast_config(), BUDGET)
            aip = run_cached(wl, common.aip_tlb(), BUDGET)
            red = 100 * (base.llt_mpki - aip.llt_mpki) / base.llt_mpki
            assert abs(red) < 5.0

    def test_oracle_upper_bounds_dppred(self):
        for wl in ("cactusADM", "mcf"):
            base = run_cached(wl, fast_config(), BUDGET)
            dp = run_cached(wl, common.dppred(), BUDGET)
            oracle = run_cached(wl, common.oracle_tlb(), BUDGET)
            assert oracle.llt_misses <= dp.llt_misses * 1.05
            assert oracle.llt_misses <= base.llt_misses

    def test_shadow_table_raises_accuracy(self):
        """Table VI: dpPred-SH (no shadow) must not beat dpPred accuracy
        on the unpredictable workloads."""
        wl = "mcf"
        dp = run_cached(wl, common.dppred(), BUDGET)
        dp_sh = run_cached(wl, common.dppred_no_shadow(), BUDGET)
        if dp.tlb_accuracy is not None and dp_sh.tlb_accuracy is not None:
            assert dp.tlb_accuracy >= dp_sh.tlb_accuracy - 0.02


class TestCharacterizationClaims:
    def test_llt_mostly_dead(self):
        """Figure 1: the LLT is overwhelmingly dead for these workloads."""
        cfg = common.characterization()
        deads = []
        for wl in ("pr", "mcf", "canneal"):
            result = run_cached(wl, cfg, BUDGET)
            deads.append(result.llt_residency.dead_fraction)
        assert sum(deads) / len(deads) > 0.6

    def test_doa_dominates_dead_evictions(self):
        """Figure 2: DOA entries dominate dead LLT evictions."""
        cfg = common.characterization()
        result = run_cached("mcf", cfg, BUDGET)
        s = result.llt_residency
        assert s.doa_eviction_fraction > s.mostly_dead_eviction_fraction

    def test_doa_blocks_concentrate_on_doa_pages(self):
        """Table III: most DOA LLC blocks fall on DOA pages."""
        cfg = common.characterization()
        fractions = []
        for wl in ("cactusADM", "lbm", "mcf"):
            result = run_cached(wl, cfg, BUDGET)
            if result.doa_blocks_classified > 50:
                fractions.append(result.doa_block_on_doa_page_fraction)
        assert fractions, "no classifiable DOA blocks"
        assert sum(fractions) / len(fractions) > 0.5


class TestFullSuiteSmoke:
    def test_every_workload_simulates(self):
        cfg = fast_config()
        for wl in workload_names():
            result = run_cached(wl, cfg, 3000)
            assert result.instructions > 0
            assert result.ipc > 0
            assert result.llt_misses >= 0
