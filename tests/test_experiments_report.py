"""Tests for report rendering and the experiment registry."""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import ExperimentReport, render_bar, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(
            ["name", "value"], [("workload-x", 1.5), ("y", 22.25)]
        )
        lines = out.splitlines()
        assert len(lines) == 4
        # All rows share the same width and the numeric column is
        # right-aligned.
        assert len(set(len(line) for line in lines)) == 1
        assert lines[2].endswith("1.50")
        assert lines[3].endswith("22.25")

    def test_title(self):
        out = render_table(["a"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_none_rendered_as_dash(self):
        out = render_table(["a", "b"], [(None, 2)])
        assert "-" in out.splitlines()[-1]

    def test_floats_two_decimals(self):
        out = render_table(["a"], [(3.14159,)])
        assert "3.14" in out
        assert "3.142" not in out


class TestRenderBar:
    def test_basic(self):
        assert render_bar(10, scale=1, width=30) == "#" * 10

    def test_clamped(self):
        assert render_bar(100, scale=1, width=5) == "#####"
        assert render_bar(-3, scale=1) == ""


class TestExperimentReport:
    def test_render_includes_sections(self):
        report = ExperimentReport("figX", "Demo")
        report.add_table(["a"], [(1,)])
        report.add_note("a note")
        out = report.render()
        assert "== figX: Demo ==" in out
        assert "a note" in out


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {
            "fig1", "fig2", "fig3", "fig4", "table3",
            "fig9", "table4", "table6",
            "fig10", "table5", "table7",
            "fig11a", "fig11b", "fig11c", "fig11d", "fig11e", "fig11f",
            "storage",
            "ablation_action", "ablation_threshold",
            "extension_prefetch",
            "tenancy",
            "predictor_frontier",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_storage_runs_instantly(self):
        report = run_experiment("storage")
        out = report.render()
        assert "10.81" in out  # the paper's headline total
