"""Deeper behavioural tests of the SPEC/PARSEC-like kernels."""

import numpy as np
import pytest

from repro.workloads.spec_like import (
    CactusAdm,
    Canneal,
    ConjugateGradient,
    Lbm,
    Mcf,
)
from repro.workloads.trace import pc_for_site

BUDGET = 6000


class TestCactusAdm:
    def test_grid_functions_visited_in_lockstep(self):
        wl = CactusAdm(seed=1)
        trace = wl.generate(BUDGET)
        # Pages advance monotonically within each function's region.
        pages = (trace.vaddrs >> 12).astype(np.int64)
        assert len(np.unique(pages)) > 50

    def test_touches_per_page_bounded(self):
        wl = CactusAdm(seed=1)
        trace = wl.generate(BUDGET)
        pages, counts = np.unique(trace.vaddrs >> 12, return_counts=True)
        # Grid-function pages receive only a few touches (DOA formation);
        # coefficient pages receive many. The distribution is bimodal;
        # its low mode must dominate in page count.
        low_touch = (counts <= wl.touches_per_page).sum()
        assert low_touch > len(pages) * 0.5

    def test_shared_pc_present(self):
        trace = CactusAdm(seed=1).generate(BUDGET)
        assert pc_for_site(60) in set(np.unique(trace.pcs).tolist())

    def test_writes_target_output_function(self):
        wl = CactusAdm(seed=1)
        trace = wl.generate(BUDGET)
        assert trace.writes.sum() > 0


class TestLbm:
    def test_ping_pong_swaps_roles(self):
        wl = Lbm(seed=1)
        # A full sweep is pages * ~10 accesses; keep budget over one sweep.
        trace = wl.generate(40_000)
        writes = trace.vaddrs[trace.writes]
        reads = trace.vaddrs[~trace.writes]
        # Written pages overlap read pages only across sweeps (ping-pong).
        assert len(writes) > 0 and len(reads) > 0

    def test_obstacle_region_reused(self):
        wl = Lbm(seed=1)
        trace = wl.generate(BUDGET)
        pages, counts = np.unique(trace.vaddrs >> 12, return_counts=True)
        assert counts.max() > 3 * wl.touches_per_page  # hot geometry pages


class TestMcf:
    def test_pointer_chase_never_repeats_quickly(self):
        wl = Mcf(seed=1)
        trace = wl.generate(BUDGET)
        arc_pc = pc_for_site(0)
        arcs = trace.vaddrs[trace.pcs == arc_pc]
        # A permutation cycle: no arc repeats within the window.
        assert len(np.unique(arcs)) == len(arcs)

    def test_three_reads_per_pivot(self):
        wl = Mcf(seed=1)
        trace = wl.generate(BUDGET)
        arc_reads = (trace.pcs == pc_for_site(0)).sum()
        head_reads = (trace.pcs == pc_for_site(1)).sum()
        assert abs(arc_reads - head_reads) <= 1

    def test_occasional_writes(self):
        trace = Mcf(seed=1).generate(BUDGET)
        frac = trace.writes.mean()
        assert 0.01 < frac < 0.2


class TestConjugateGradient:
    def test_row_structure(self):
        wl = ConjugateGradient(seed=1)
        trace = wl.generate(BUDGET)
        # Each row: 1 rowptr + 3*nnz stream/gather + 1 y write.
        per_row = 2 + 3 * wl.nnz_per_row
        rows = len(trace) // per_row
        assert rows > 10
        y_writes = (trace.pcs == pc_for_site(4)).sum()
        assert abs(y_writes - rows) <= 1

    def test_x_gathers_within_vector(self):
        wl = ConjugateGradient(seed=1)
        trace = wl.generate(BUDGET)
        xbase = None
        # x gathers use pc_for_site(3).
        mask = trace.pcs == pc_for_site(3)
        assert mask.any()

    def test_values_are_wide_blocks(self):
        assert ConjugateGradient.value_size >= 64


class TestCanneal:
    def test_swap_pairs_random(self):
        wl = Canneal(seed=1)
        trace = wl.generate(BUDGET)
        a_reads = trace.vaddrs[trace.pcs == pc_for_site(0)]
        assert len(np.unique(a_reads)) > len(a_reads) * 0.5

    def test_netlist_reads_per_element(self):
        wl = Canneal(seed=1)
        trace = wl.generate(BUDGET)
        net_reads = (trace.pcs == pc_for_site(2)).sum()
        a_reads = (trace.pcs == pc_for_site(0)).sum()
        # fanout netlist reads per element read, two elements per step.
        assert net_reads >= a_reads * wl.fanout

    def test_accepted_swaps_write_both(self):
        trace = Canneal(seed=1).generate(BUDGET)
        swap_writes = (trace.pcs == pc_for_site(4)).sum()
        assert swap_writes % 2 == 0
        assert swap_writes > 0
