"""Tests for the four-level radix page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.pagetable import (
    ENTRIES_PER_NODE,
    NUM_LEVELS,
    PTE_SIZE,
    VPN_BITS,
    RadixPageTable,
)
from repro.vm.physmem import PAGE_SIZE, FrameAllocator


class TestTranslation:
    def test_demand_allocation(self):
        pt = RadixPageTable()
        assert pt.lookup(0x1234) is None
        pfn = pt.translate(0x1234)
        assert pt.lookup(0x1234) == pfn

    def test_translation_is_stable(self):
        pt = RadixPageTable()
        assert pt.translate(42) == pt.translate(42)

    def test_distinct_vpns_distinct_pfns(self):
        pt = RadixPageTable()
        pfns = [pt.translate(v) for v in range(100)]
        assert len(set(pfns)) == 100

    def test_rejects_out_of_range_vpn(self):
        pt = RadixPageTable()
        with pytest.raises(ValueError):
            pt.translate(1 << VPN_BITS)
        with pytest.raises(ValueError):
            pt.translate(-1)

    def test_pages_mapped_counter(self):
        pt = RadixPageTable()
        pt.translate(1)
        pt.translate(2)
        pt.translate(1)
        assert pt.pages_mapped == 2


class TestWalkPath:
    def test_path_has_four_levels(self):
        pt = RadixPageTable()
        _, path = pt.walk_path(0xABCDE)
        assert len(path) == NUM_LEVELS

    def test_path_addresses_within_frames(self):
        pt = RadixPageTable(FrameAllocator(scramble=False))
        _, path = pt.walk_path(0xABCDE)
        for addr in path:
            offset = addr % PAGE_SIZE
            assert offset % PTE_SIZE == 0
            assert offset < ENTRIES_PER_NODE * PTE_SIZE

    def test_same_region_shares_upper_levels(self):
        pt = RadixPageTable()
        _, path_a = pt.walk_path(0x1000)
        _, path_b = pt.walk_path(0x1001)  # same PT node, next index
        assert path_a[:3] == path_b[:3]
        assert path_a[3] != path_b[3]

    def test_distant_vpns_diverge_at_root(self):
        pt = RadixPageTable()
        _, path_a = pt.walk_path(0)
        _, path_b = pt.walk_path((1 << VPN_BITS) - 1)
        # Root node frame is shared, so the page is the same; the entry
        # offset inside the root differs.
        assert path_a[0] // PAGE_SIZE == path_b[0] // PAGE_SIZE
        assert path_a[0] != path_b[0]

    def test_level_index_decomposition(self):
        vpn = 0x123456789
        rebuilt = 0
        for level in range(NUM_LEVELS):
            rebuilt = (rebuilt << 9) | RadixPageTable.level_index(vpn, level)
        assert rebuilt == vpn & ((1 << VPN_BITS) - 1)


class TestFrameDiscipline:
    def test_page_frames_never_collide_with_node_frames(self):
        pt = RadixPageTable(FrameAllocator(num_frames=1 << 16))
        vpns = [i * 7919 for i in range(200)]
        pfns = {pt.translate(v) for v in vpns}
        node_frames = set()
        for v in vpns:
            _, path = pt.walk_path(v)
            node_frames.update(a // PAGE_SIZE for a in path)
        assert pfns.isdisjoint(node_frames)


@settings(max_examples=30)
@given(st.lists(st.integers(0, (1 << VPN_BITS) - 1), min_size=1, max_size=60))
def test_lookup_matches_translate(vpns):
    pt = RadixPageTable()
    expected = {}
    for v in vpns:
        expected[v] = pt.translate(v)
    for v, pfn in expected.items():
        assert pt.lookup(v) == pfn
        assert pt.translate(v) == pfn
