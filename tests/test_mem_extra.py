"""Additional edge-case tests for the memory substrate."""

import pytest

from repro.mem.cache import SetAssocCache
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.mainmem import MainMemory


class TestMainMemory:
    def test_counts_reads_and_writes(self):
        mem = MainMemory(100)
        mem.access(1)
        mem.access(2, is_write=True)
        assert mem.stats.get("reads") == 1
        assert mem.stats.get("writes") == 1
        assert mem.stats.get("accesses") == 2

    def test_latency_returned(self):
        assert MainMemory(123).access(0) == 123

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            MainMemory(0)


class TestWritebackChains:
    def make(self):
        l1 = SetAssocCache("L1D", 1, 1)
        l2 = SetAssocCache("L2", 1, 1)
        llc = SetAssocCache("LLC", 4, 4)
        return CacheHierarchy(l1, l2, llc, MainMemory())

    def test_l1_victim_dirty_propagates_through_l2_to_llc(self):
        h = self.make()
        h.access(0, now=0, is_write=True)   # dirty in L1
        h.access(4, now=1)                  # evicts 0 from L1 -> L2 dirty
        h.access(8, now=2)                  # evicts 4 from L1; 0 from L2
        # Block 0's dirtiness must now live in the LLC.
        assert h.llc.probe(0) is not None and h.llc.probe(0).dirty

    def test_clean_eviction_no_memory_write(self):
        h = self.make()
        h.access(0, now=0)
        writes = h.memory.stats.get("writes")
        h.access(4, now=1)
        assert h.memory.stats.get("writes") == writes

    def test_bypassed_block_writeback_safe(self):
        """A dirty L2 victim whose block was LLC-bypassed must not crash
        and must reach memory eventually (counted, latency uncharged)."""
        from repro.mem.cache import FILL_BYPASS, CacheListener

        class BypassAll(CacheListener):
            def on_fill(self, cache, block, now):
                return FILL_BYPASS

        l1 = SetAssocCache("L1D", 1, 1)
        l2 = SetAssocCache("L2", 1, 1)
        llc = SetAssocCache("LLC", 4, 4, listener=BypassAll())
        h = CacheHierarchy(l1, l2, llc, MainMemory())
        h.access(0, now=0, is_write=True)
        h.access(4, now=1, is_write=True)
        h.access(8, now=2, is_write=True)  # pushes dirty 0 out of L2
        assert llc.occupancy() == 0  # everything bypassed
        # With no LLC copy to absorb it, the dirty data reaches memory.
        assert h.memory.stats.get("writes") >= 1
        assert h.stats.get("orphan_writebacks") >= 1


class TestStatsConservation:
    def test_cache_fill_evict_balance(self):
        c = SetAssocCache("c", 2, 2)
        for now, b in enumerate([0, 2, 4, 6, 8, 10, 1, 3]):
            if not c.lookup(b, now):
                c.fill(b, now)
        s = c.stats
        assert (
            s.get("fills") - s.get("evictions") - s.get("invalidations")
            == c.occupancy()
        )
        assert s.get("hits") + s.get("misses") == 8
