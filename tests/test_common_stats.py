"""Tests for repro.common.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.stats import (
    Stats,
    arithmetic_mean,
    format_mapping,
    geometric_mean,
    percent,
    safe_reduction,
)


class TestStats:
    def test_default_zero(self):
        assert Stats().get("anything") == 0

    def test_add_accumulates(self):
        s = Stats()
        s.add("hits")
        s.add("hits", 4)
        assert s.get("hits") == 5

    def test_ratio(self):
        s = Stats()
        s.add("hits", 3)
        s.add("lookups", 4)
        assert s.ratio("hits", "lookups") == 0.75

    def test_ratio_zero_denominator(self):
        assert Stats().ratio("a", "b") == 0.0

    def test_nonzero_drops_preseeded_zeros(self):
        s = Stats()
        s.counters.update({"hits": 0, "misses": 3, "fills": 0})
        assert s.nonzero() == {"misses": 3}
        # Two bags differing only in zero-seeded names compare equal.
        t = Stats()
        t.add("misses", 3)
        assert s.nonzero() == t.nonzero()

    def test_delta_empty_interval_is_all_zero(self):
        s = Stats()
        s.add("hits", 2)
        snap = s.snapshot()
        assert set(s.delta(snap).values()) == {0}

    def test_delta_vanished_name_goes_negative(self):
        s = Stats()
        delta = s.delta({"gone": 4})
        assert delta == {"gone": -4}

    def test_delta_against_empty_snapshot(self):
        s = Stats()
        s.add("hits", 2)
        assert s.delta({}) == {"hits": 2}

    def test_snapshot_is_copy(self):
        s = Stats()
        s.add("x")
        snap = s.snapshot()
        snap["x"] = 99
        assert s.get("x") == 1

    def test_merge(self):
        a, b = Stats(), Stats()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_delta_against_snapshot(self):
        s = Stats()
        s.add("hits", 3)
        snap = s.snapshot()
        s.add("hits", 2)
        s.add("misses", 1)
        assert s.delta(snap) == {"hits": 2, "misses": 1}

    def test_delta_empty_snapshot_is_current_counters(self):
        s = Stats()
        s.add("hits", 4)
        assert s.delta({}) == {"hits": 4}

    def test_delta_includes_counters_only_in_snapshot(self):
        # A counter present in the snapshot but gone from the bag shows up
        # as a negative delta rather than silently disappearing.
        s = Stats()
        assert s.delta({"ghost": 5}) == {"ghost": -5}

    def test_delta_does_not_mutate(self):
        s = Stats()
        s.add("hits", 1)
        snap = s.snapshot()
        s.delta(snap)
        assert snap == {"hits": 1}
        assert s.get("hits") == 1


class TestMeans:
    def test_geometric_mean(self):
        assert abs(geometric_mean([2.0, 8.0]) - 4.0) < 1e-12

    def test_geometric_mean_single(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_arithmetic_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=20))
    def test_geomean_bounded_by_extremes(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(0.1, 10.0), min_size=2, max_size=20))
    def test_geomean_le_arithmetic_mean(self, values):
        assert geometric_mean(values) <= arithmetic_mean(values) + 1e-9


class TestHelpers:
    def test_percent(self):
        assert percent(0.5) == 50.0

    def test_safe_reduction_improvement(self):
        assert safe_reduction(10.0, 9.0) == pytest.approx(10.0)

    def test_safe_reduction_regression_is_negative(self):
        assert safe_reduction(10.0, 11.0) == pytest.approx(-10.0)

    def test_safe_reduction_zero_baseline(self):
        assert safe_reduction(0.0, 5.0) == 0.0

    def test_format_mapping(self):
        out = format_mapping({"abc": 1.5, "d": 2.25})
        assert "abc : 1.50" in out
        assert "d   : 2.25" in out

    def test_format_mapping_empty(self):
        assert format_mapping({}) == "(empty)"
