"""Tests for the shared-memory trace transport."""

import numpy as np
import pytest

from repro.workloads import shm, suite
from repro.workloads.trace import Trace


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    suite.clear_shared_traces()
    shm.detach_all()


def make_trace(n=100, name="shmtest"):
    return Trace(
        name,
        np.arange(n, dtype=np.uint64),
        np.arange(n, dtype=np.uint64) * 4096,
        (np.arange(n) % 2 == 0),
        np.full(n, 3, dtype=np.uint16),
    )


def test_publish_attach_roundtrip():
    trace = make_trace()
    arena = shm.SharedTraceArena()
    try:
        descriptor = arena.publish(("shmtest", 100, 1), trace)
        attached = shm.attach_trace(descriptor)
        assert attached is not None
        assert attached.name == trace.name
        np.testing.assert_array_equal(attached.pcs, trace.pcs)
        np.testing.assert_array_equal(attached.vaddrs, trace.vaddrs)
        np.testing.assert_array_equal(attached.writes, trace.writes)
        np.testing.assert_array_equal(attached.gaps, trace.gaps)
        # The batched engine's eligibility check keys on exact dtypes.
        assert attached.pcs.dtype == np.uint64
        assert attached.writes.dtype == np.bool_
        assert not attached.pcs.flags.writeable
    finally:
        arena.close()


def test_attach_unknown_segment_returns_none():
    missing = {
        "shm": "psm_repro_does_not_exist",
        "key": ["x", 1, 1],
        "name": "x",
        "fields": [],
    }
    assert shm.attach_trace(missing) is None


def test_registry_serves_get_trace_without_generation():
    trace = make_trace(name="locality")
    suite.register_shared_trace("locality", 12345, 7, trace)
    suite.clear_trace_cache()
    assert suite.get_trace("locality", 12345, 7) is trace


def test_close_is_idempotent():
    arena = shm.SharedTraceArena()
    arena.publish(("shmtest", 50, 1), make_trace(50))
    arena.close()
    arena.close()
    assert arena.descriptors == []


def test_shm_enabled_env(monkeypatch):
    assert shm.shm_enabled()
    monkeypatch.setenv("REPRO_SHM", "0")
    assert not shm.shm_enabled()


def test_descriptor_is_json_safe():
    import json

    arena = shm.SharedTraceArena()
    try:
        descriptor = arena.publish(("shmtest", 10, 1), make_trace(10))
        json.dumps(descriptor)
    finally:
        arena.close()


def test_worker_init_attaches_descriptors():
    """_worker_init with descriptors registers attached traces, exactly as
    a pool worker would experience it."""
    from repro.sim.parallel import _worker_init

    trace = make_trace(name="locality")
    arena = shm.SharedTraceArena()
    try:
        descriptor = arena.publish(("locality", 77, 5), trace)
        _worker_init(None, None, (descriptor,))
        suite.clear_trace_cache()
        got = suite.get_trace("locality", 77, 5)
        np.testing.assert_array_equal(got.vaddrs, trace.vaddrs)
    finally:
        arena.close()


def test_matrix_identical_with_and_without_shm(monkeypatch):
    """Pooled execution produces byte-identical results whether traces
    travel by shared memory or are regenerated per worker."""
    import json

    from repro.sim.config import fast_config
    from repro.sim.parallel import RunRequest, run_matrix
    from repro.sim.runner import clear_run_cache

    requests = [
        RunRequest(wl, fast_config(), 2000, 42)
        for wl in ("stream", "locality", "sssp")
    ]

    def execute():
        clear_run_cache()
        suite.clear_trace_cache()
        results = run_matrix(requests, jobs=2)
        return {
            req.workload: json.dumps(results[req].to_dict(), sort_keys=True)
            for req in requests
        }

    with_shm = execute()
    monkeypatch.setenv("REPRO_SHM", "0")
    without_shm = execute()
    assert with_shm == without_shm
