"""Tests for the telemetry timeline sampler and its machine integration."""

import json

from repro.common.stats import Stats
from repro.experiments.common import baseline, combined
from repro.obs import TelemetrySpec, TimelineSampler
from repro.sim.runner import clear_run_cache, run_cached
from repro.sim.parallel import RunRequest, run_matrix
from repro.workloads.suite import clear_trace_cache

BUDGET = 3000


class TestTimelineSampler:
    def _sampler(self):
        sampler = TimelineSampler(interval=100)
        stats = Stats()
        sampler.register("llt", stats)
        return sampler, stats

    def test_deltas_not_cumulative(self):
        sampler, stats = self._sampler()
        stats.add("misses", 5)
        sampler.sample(100, 200.0)
        stats.add("misses", 2)
        sampler.sample(200, 420.0)
        assert sampler.column("llt.misses") == [5, 2]
        assert sampler.instructions == [100, 100]
        assert sampler.cycles == [200.0, 220.0]

    def test_lazy_column_backfilled_with_zeros(self):
        sampler, stats = self._sampler()
        sampler.sample(100, 100.0)
        stats.add("hits", 3)
        sampler.sample(200, 200.0)
        sampler.sample(300, 300.0)
        assert sampler.column("llt.hits") == [0, 3, 0]

    def test_registration_snapshot_is_baseline(self):
        sampler = TimelineSampler(interval=100)
        stats = Stats()
        stats.add("misses", 40)  # pre-registration activity
        sampler.register("llt", stats)
        stats.add("misses", 1)
        sampler.sample(100, 100.0)
        assert sampler.column("llt.misses") == [1]

    def test_unknown_column_is_all_zeros(self):
        sampler, _ = self._sampler()
        sampler.sample(100, 100.0)
        assert sampler.column("nope.nothing") == [0]

    def test_series_and_ipc(self):
        sampler, stats = self._sampler()
        stats.add("misses", 10)
        sampler.sample(1000, 2000.0)
        assert sampler.series("llt.misses") == [10.0]  # per-1k rate
        assert sampler.ipc_series() == [0.5]

    def test_rows_include_every_column(self):
        sampler, stats = self._sampler()
        stats.add("misses", 1)
        sampler.sample(100, 100.0)
        (row,) = list(sampler.rows())
        assert row == {
            "mark": 100,
            "instructions": 100,
            "cycles": 100.0,
            "llt.misses": 1,
        }

    def test_payload_round_trip(self):
        sampler, stats = self._sampler()
        stats.add("misses", 7)
        sampler.sample(100, 150.0)
        payload = json.loads(json.dumps(sampler.to_payload()))
        back = TimelineSampler.from_payload(payload)
        assert back.to_payload() == sampler.to_payload()
        assert len(back) == 1

    def test_rejects_nonpositive_interval(self):
        import pytest

        with pytest.raises(ValueError):
            TimelineSampler(interval=0)


class TestMachineIntegration:
    def test_observed_run_produces_timeline(self):
        telemetry = TelemetrySpec(interval=500).build()
        result = run_cached("mcf", combined(), BUDGET, telemetry=telemetry)
        timeline = telemetry.timeline
        assert len(timeline) >= 2
        # Marks are strictly increasing and end at the retired total.
        assert timeline.marks == sorted(set(timeline.marks))
        assert timeline.marks[-1] == result.instructions
        # Interval deltas reassemble the end-of-run aggregates.
        assert sum(timeline.instructions) == result.instructions
        assert sum(timeline.column("llt.misses")) == result.llt_misses
        assert sum(timeline.column("llc.misses")) == result.llc_misses

    def test_enabled_vs_disabled_results_bit_identical(self):
        clear_run_cache()
        clear_trace_cache()
        plain = run_cached("mcf", combined(), BUDGET)
        clear_run_cache()
        clear_trace_cache()
        observed = run_cached(
            "mcf", combined(), BUDGET,
            telemetry=TelemetrySpec(interval=500).build(),
        )
        assert json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
            observed.to_dict(), sort_keys=True
        )


class TestMatrixTelemetry:
    def _requests(self):
        return [
            RunRequest(wl, cfg, BUDGET)
            for wl in ("mcf", "bfs")
            for cfg in (baseline(), combined())
        ]

    def test_serial_matrix_collects_payloads(self):
        requests = self._requests()
        out = {}
        results = run_matrix(
            requests,
            jobs=1,
            telemetry_spec=TelemetrySpec(interval=500),
            telemetry_out=out,
        )
        assert set(out) == set(requests)
        for req in requests:
            payload = out[req]
            assert payload["timeline"]["marks"][-1] == (
                results[req].instructions
            )

    def test_parallel_payloads_match_serial(self):
        requests = self._requests()
        spec = TelemetrySpec(interval=500)
        clear_run_cache()
        clear_trace_cache()
        serial_out = {}
        serial = run_matrix(
            requests, jobs=1, telemetry_spec=spec, telemetry_out=serial_out
        )
        clear_run_cache()
        clear_trace_cache()
        pool_out = {}
        pooled = run_matrix(
            requests, jobs=2, telemetry_spec=spec, telemetry_out=pool_out
        )
        for req in requests:
            assert json.dumps(
                serial[req].to_dict(), sort_keys=True
            ) == json.dumps(pooled[req].to_dict(), sort_keys=True)
            assert serial_out[req]["timeline"] == pool_out[req]["timeline"]
            assert serial_out[req]["events"] == pool_out[req]["events"]
