"""Crash-injection tests for the fault-tolerant run-matrix executor.

Every scenario asserts the tentpole invariant: a sweep degraded by
injected worker kills, hangs, or cache corruption — possibly completed
across two invocations via ``--resume`` — produces ``SimResult.to_dict``
output byte-identical to an uninterrupted run.
"""

import json

import pytest

import repro.obs.harness as obs_harness
import repro.sim.diskcache as diskcache
from repro.obs.events import (
    EV_FAULT_INJECT,
    EV_POOL_REBUILD,
    EV_RESUME_SKIP,
    EV_RUN_RETRY,
    EV_RUN_TIMEOUT,
)
from repro.sim.checkpoint import MatrixJournal, matrix_digest, resolve_resume
from repro.sim.config import fast_config, mix2_config
from repro.sim.faults import KILL, FaultPlan, FaultSpec, InjectedFault
from repro.sim.parallel import (
    MatrixError,
    RetryPolicy,
    RunRequest,
    resolve_retry,
    run_matrix,
)
from repro.sim.runner import clear_run_cache, run_cached

BUDGET = 2000


@pytest.fixture
def cache_dir(tmp_path):
    directory = tmp_path / "cache"
    diskcache.enable(directory)
    clear_run_cache()
    yield directory
    clear_run_cache()
    diskcache.disable()


def _requests():
    fast = fast_config()
    pred = fast_config(tlb_predictor="dppred")
    cells = [
        RunRequest(w, c, BUDGET, 42)
        for w in ("mcf", "cg.B")
        for c in (fast, pred)
    ]
    # A multi-tenant cell rides along: ASID-tagged traces and the scalar
    # tenant loop must survive kills, hangs, corruption, and --resume
    # byte-identically, like every single-tenant cell.
    cells.append(RunRequest("mix2", mix2_config(), BUDGET, 42))
    return cells


def _fingerprints(requests, results):
    return [
        json.dumps(results[r].to_dict(), sort_keys=True) for r in requests
    ]


@pytest.fixture
def clean_fingerprints(cache_dir):
    """Byte-exact results of an unfaulted sweep (then caches wiped)."""
    requests = _requests()
    fps = _fingerprints(requests, run_matrix(requests))
    clear_run_cache()
    diskcache.purge()
    obs_harness.reset_harness()
    return fps


def _event_kinds():
    return [row["kind"] for row in obs_harness.harness_events().rows()]


NO_BACKOFF = RetryPolicy(backoff=0)


# --------------------------------------------------------------------- #
# Plans and policies
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("explode", "mcf")
        with pytest.raises(ValueError):
            FaultSpec(KILL, "mcf", attempts=0)

    def test_matching_is_scoped_and_attempt_bounded(self):
        spec = FaultSpec(KILL, "mcf", config_name="fast", seed=42)
        assert spec.matches("mcf", "fast", 42, 1)
        assert not spec.matches("mcf", "fast", 42, 2)   # recovered
        assert not spec.matches("mcf", "fast", 7, 1)
        assert not spec.matches("cg.B", "fast", 42, 1)

    def test_random_plan_is_deterministic(self):
        cells = [("mcf", "fast", s) for s in range(20)]
        a = FaultPlan.random(cells, seed=5, rate=0.5)
        b = FaultPlan.random(cells, seed=5, rate=0.5)
        c = FaultPlan.random(cells, seed=6, rate=0.5)
        assert a == b
        assert a != c
        assert 0 < len(a.specs) < len(cells)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        assert RetryPolicy(backoff=0.5).delay(3) == 0.5 * 2.0 ** 2

    def test_retry_policy_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_BACKOFF", "0")
        policy = resolve_retry()
        assert policy.max_attempts == 5
        assert policy.timeout == 12.5
        assert policy.backoff == 0
        explicit = RetryPolicy(max_attempts=1)
        assert resolve_retry(explicit) is explicit


# --------------------------------------------------------------------- #
# Serial supervision
# --------------------------------------------------------------------- #
class TestSerialFaults:
    def test_kill_retries_to_identical_results(self, clean_fingerprints):
        requests = _requests()
        results = run_matrix(
            requests, retry=NO_BACKOFF, faults=FaultPlan.kill("mcf", hard=False)
        )
        assert _fingerprints(requests, results) == clean_fingerprints
        kinds = _event_kinds()
        assert EV_FAULT_INJECT in kinds
        assert EV_RUN_RETRY in kinds
        assert obs_harness.counters_snapshot()[EV_RUN_RETRY] == 2

    def test_corrupt_entry_is_detected_and_recomputed(
        self, cache_dir, clean_fingerprints
    ):
        requests = _requests()
        results = run_matrix(
            requests, retry=NO_BACKOFF,
            faults=FaultPlan.corrupt("mcf", seed=42),
        )
        assert _fingerprints(requests, results) == clean_fingerprints
        counters = obs_harness.counters_snapshot()
        assert counters["cache_corrupt"] == 2
        assert list(diskcache.quarantine_dir().iterdir())

    def test_exhausted_retries_raise_matrix_error(self, cache_dir):
        requests = _requests()
        fatal = FaultPlan.kill("cg.B", hard=False, attempts=99)
        with pytest.raises(MatrixError) as err:
            run_matrix(
                requests,
                retry=RetryPolicy(max_attempts=2, backoff=0),
                faults=fatal,
            )
        assert err.value.attempts == 2
        assert "cg.B" in str(err.value)

    def test_interrupt_then_resume_is_byte_identical(
        self, clean_fingerprints
    ):
        """The acceptance criterion: kill a sweep partway, rerun with
        resume, and require byte-identical merged output."""
        requests = _requests()
        fatal = FaultPlan.kill("cg.B", hard=False, attempts=99)
        with pytest.raises(MatrixError):
            run_matrix(
                requests,
                retry=RetryPolicy(max_attempts=2, backoff=0),
                faults=fatal,
            )
        clear_run_cache()
        obs_harness.reset_harness()
        resumed = run_matrix(requests, retry=NO_BACKOFF, resume=True)
        assert _fingerprints(requests, resumed) == clean_fingerprints
        kinds = _event_kinds()
        # mcf cells completed pre-crash and were replayed, not re-run.
        assert kinds.count(EV_RESUME_SKIP) == 2

    def test_without_resume_journal_is_discarded(self, clean_fingerprints):
        requests = _requests()
        with pytest.raises(MatrixError):
            run_matrix(
                requests,
                retry=RetryPolicy(max_attempts=1),
                faults=FaultPlan.kill("cg.B", hard=False, attempts=99),
            )
        clear_run_cache()
        diskcache.purge()  # also drops cached results: cells must re-run
        obs_harness.reset_harness()
        results = run_matrix(requests, retry=NO_BACKOFF)  # no resume
        assert _fingerprints(requests, results) == clean_fingerprints
        assert EV_RESUME_SKIP not in _event_kinds()


# --------------------------------------------------------------------- #
# Pool supervision
# --------------------------------------------------------------------- #
class TestPoolFaults:
    def test_hard_kill_rebuilds_pool_and_recovers(self, clean_fingerprints):
        requests = _requests()
        results = run_matrix(
            requests, jobs=2, retry=NO_BACKOFF,
            faults=FaultPlan.kill("mcf", seed=42),  # hard: os._exit(87)
        )
        assert _fingerprints(requests, results) == clean_fingerprints
        kinds = _event_kinds()
        assert EV_POOL_REBUILD in kinds
        assert EV_RUN_RETRY in kinds

    def test_hang_times_out_and_recovers(self, clean_fingerprints):
        requests = _requests()
        results = run_matrix(
            requests, jobs=2,
            retry=RetryPolicy(backoff=0, timeout=5.0),
            faults=FaultPlan.hang("cg.B", seconds=60.0, seed=42),
        )
        assert _fingerprints(requests, results) == clean_fingerprints
        kinds = _event_kinds()
        assert EV_RUN_TIMEOUT in kinds
        assert EV_POOL_REBUILD in kinds

    def test_resume_after_pool_crash_is_byte_identical(
        self, clean_fingerprints
    ):
        requests = _requests()
        fatal = FaultPlan.kill("cg.B", seed=42, attempts=99)
        with pytest.raises(MatrixError):
            run_matrix(
                requests, jobs=2,
                retry=RetryPolicy(max_attempts=2, backoff=0),
                faults=fatal,
            )
        clear_run_cache()
        resumed = run_matrix(requests, jobs=2, retry=NO_BACKOFF, resume=True)
        assert _fingerprints(requests, resumed) == clean_fingerprints


# --------------------------------------------------------------------- #
# Journal mechanics
# --------------------------------------------------------------------- #
class TestMatrixJournal:
    def _result(self):
        return run_cached("mcf", fast_config(), BUDGET)

    def test_round_trip_and_last_wins(self, cache_dir, tmp_path):
        result = self._result()
        journal = MatrixJournal(tmp_path / "j.jsonl")
        with journal:
            journal.start(fresh=True)
            journal.record("cell-a", result)
            journal.record("cell-a", result)  # retried duplicate
            journal.record("cell-b", result)
        loaded = journal.load()
        assert sorted(loaded) == ["cell-a", "cell-b"]
        assert loaded["cell-a"].to_dict() == result.to_dict()

    def test_torn_tail_line_is_skipped(self, cache_dir, tmp_path):
        result = self._result()
        journal = MatrixJournal(tmp_path / "j.jsonl")
        with journal:
            journal.start(fresh=True)
            journal.record("cell-a", result)
            journal.record("cell-b", result)
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[: len(data) - len(data) // 3])
        loaded = journal.load()
        assert list(loaded) == ["cell-a"]

    def test_checksum_mismatch_is_skipped(self, cache_dir, tmp_path):
        result = self._result()
        journal = MatrixJournal(tmp_path / "j.jsonl")
        with journal:
            journal.start(fresh=True)
            journal.record("cell-a", result)
        line = json.loads(journal.path.read_text())
        line["payload"]["instructions"] += 1  # tamper without re-hashing
        journal.path.write_text(json.dumps(line) + "\n")
        assert journal.load() == {}

    def test_matrix_digest_order_independent(self):
        assert matrix_digest(["a", "b"]) == matrix_digest(["b", "a"])
        assert matrix_digest(["a"]) != matrix_digest(["a", "b"])

    def test_resolve_resume_env(self, monkeypatch):
        assert resolve_resume() is False
        monkeypatch.setenv("REPRO_RESUME", "1")
        assert resolve_resume() is True
        assert resolve_resume(False) is False
