"""Tests for trace streaming (`iter_records`) and the bounded trace cache."""

import numpy as np
import pytest

import repro.workloads.suite as suite
from repro.workloads.suite import (
    clear_trace_cache,
    get_trace,
    trace_cache_size,
)
from repro.workloads.trace import Trace


def make_trace(n=300, seed=5):
    rng = np.random.RandomState(seed)
    return Trace(
        "synthetic",
        (0x400000 + rng.randint(0, 64, n) * 4).astype(np.uint64),
        (0x10000000 + rng.randint(0, 5000, n) * 64).astype(np.uint64),
        rng.rand(n) < 0.3,
        rng.randint(0, 7, n).astype(np.uint16),
    )


class TestIterRecords:
    def test_matches_materialised_records(self):
        trace = make_trace()
        expected = list(
            zip(
                trace.pcs.tolist(),
                trace.vaddrs.tolist(),
                trace.writes.tolist(),
                trace.gaps.tolist(),
            )
        )
        assert list(trace.iter_records()) == expected

    @pytest.mark.parametrize("chunk", [1, 7, 299, 300, 301, 100000])
    def test_chunk_size_is_invisible(self, chunk):
        trace = make_trace()
        assert list(trace.iter_records(chunk=chunk)) == list(
            trace.iter_records()
        )

    def test_yields_native_python_types(self):
        pc, vaddr, is_write, gap = next(make_trace().iter_records())
        assert type(pc) is int and type(vaddr) is int
        assert type(is_write) is bool and type(gap) is int

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(ValueError):
            next(make_trace().iter_records(chunk=0))

    def test_empty_trace(self):
        empty = make_trace(n=0)
        assert list(empty.iter_records()) == []


class TestTraceCacheBound:
    BUDGET = 1000

    def test_cache_size_is_bounded(self, monkeypatch):
        monkeypatch.setattr(suite, "TRACE_CACHE_MAX", 2)
        clear_trace_cache()
        for name in ("mcf", "cg.B", "canneal"):
            get_trace(name, self.BUDGET)
        assert trace_cache_size() == 2

    def test_eviction_is_lru(self, monkeypatch):
        monkeypatch.setattr(suite, "TRACE_CACHE_MAX", 2)
        clear_trace_cache()
        first = get_trace("mcf", self.BUDGET)
        get_trace("cg.B", self.BUDGET)
        # Touch "mcf" so "cg.B" is the least recently used...
        assert get_trace("mcf", self.BUDGET) is first
        get_trace("canneal", self.BUDGET)  # ...and gets evicted here.
        assert get_trace("mcf", self.BUDGET) is first
        assert trace_cache_size() == 2

    def test_regenerated_trace_is_identical(self, monkeypatch):
        monkeypatch.setattr(suite, "TRACE_CACHE_MAX", 1)
        clear_trace_cache()
        first = get_trace("mcf", self.BUDGET)
        get_trace("cg.B", self.BUDGET)  # evicts "mcf"
        regenerated = get_trace("mcf", self.BUDGET)
        assert regenerated is not first
        np.testing.assert_array_equal(regenerated.vaddrs, first.vaddrs)

    def test_clear_resets(self):
        get_trace("mcf", self.BUDGET)
        assert trace_cache_size() >= 1
        clear_trace_cache()
        assert trace_cache_size() == 0
