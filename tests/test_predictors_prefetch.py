"""Tests for the distance-based TLB prefetcher baseline."""

import numpy as np
import pytest

from repro.predictors.prefetch import (
    DistancePrefetcherConfig,
    DistanceTlbPrefetcher,
)
from repro.sim.config import fast_config
from repro.sim.runner import run_trace
from repro.vm.tlb import Tlb
from repro.workloads.trace import Trace


def make_tlb(resolver=None, **cfg):
    pred = DistanceTlbPrefetcher(
        DistancePrefetcherConfig(**cfg), resolver=resolver
    )
    tlb = Tlb("LLT", num_entries=16, assoc=4, listener=pred)
    return tlb, pred


def demand(tlb, vpn, now):
    if tlb.lookup(vpn, now) is None:
        tlb.fill(vpn, vpn + 1000, 0, now)


class TestTraining:
    def test_learns_constant_stride(self):
        tlb, pred = make_tlb(resolver=lambda v: v + 1000)
        for i, vpn in enumerate([10, 11, 12, 13]):
            demand(tlb, vpn, now=i)
        # After seeing d=1 twice, vpn 14 should have been prefetched.
        assert tlb.probe(14) is not None
        assert pred.stats.get("prefetches_issued") >= 1

    def test_large_jumps_not_trained(self):
        tlb, pred = make_tlb(resolver=lambda v: v + 1000, max_distance=8)
        for i, vpn in enumerate([10, 5000, 11, 9000]):
            demand(tlb, vpn, now=i)
        assert pred.stats.get("trainings") == 0

    def test_unmapped_pages_not_prefetched(self):
        tlb, pred = make_tlb(resolver=lambda v: None)
        for i, vpn in enumerate([10, 11, 12, 13]):
            demand(tlb, vpn, now=i)
        assert pred.stats.get("prefetches_issued") == 0

    def test_no_resolver_is_safe(self):
        tlb, pred = make_tlb(resolver=None)
        for i, vpn in enumerate([10, 11, 12]):
            demand(tlb, vpn, now=i)
        assert pred.stats.get("prefetches_issued") == 0


class TestUsefulness:
    def test_useful_prefetch_counted(self):
        tlb, pred = make_tlb(resolver=lambda v: v + 1000)
        for i, vpn in enumerate([10, 11, 12, 13, 14]):
            demand(tlb, vpn, now=i)
        assert pred.stats.get("useful_prefetches") >= 1
        assert 0 < pred.usefulness <= 1

    def test_wasted_prefetch_counted_on_eviction(self):
        tlb, pred = make_tlb(resolver=lambda v: v + 1000)
        for i, vpn in enumerate([10, 11, 12]):
            demand(tlb, vpn, now=i)
        # Evict the prefetched entry (13) before any hit.
        if tlb.probe(13) is not None:
            tlb.invalidate(13, now=99)
            assert pred.stats.get("wasted_prefetches") == 1

    def test_usefulness_zero_without_issues(self):
        _, pred = make_tlb(resolver=None)
        assert pred.usefulness == 0.0


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DistancePrefetcherConfig(table_entries=0).validate()
        with pytest.raises(ValueError):
            DistancePrefetcherConfig(prefetch_degree=0).validate()
        with pytest.raises(ValueError):
            DistancePrefetcherConfig(max_distance=-1).validate()


class TestEndToEnd:
    def test_prefetcher_wins_on_repeated_sweep(self):
        """Second sweep of a mapped region: distances are learnable and
        the pages are mapped, so prefetching cuts misses."""
        pages = 512  # 4x the 128-entry LLT: every sweep misses everywhere
        sweeps = 4
        vaddrs = np.tile(
            np.arange(pages, dtype=np.uint64) * 4096, sweeps
        ) + 0x10000000
        trace = Trace(
            "resweep",
            np.full(len(vaddrs), 0x400000, dtype=np.uint64),
            vaddrs,
            np.zeros(len(vaddrs), dtype=bool),
            np.full(len(vaddrs), 3, dtype=np.uint16),
        )
        base = run_trace(trace, fast_config())
        pf = run_trace(
            trace, fast_config(tlb_predictor="distance_prefetch")
        )
        assert pf.llt_misses < base.llt_misses

    def test_machine_wires_resolver(self):
        from repro.sim.machine import Machine

        m = Machine(fast_config(tlb_predictor="distance_prefetch"))
        assert m.tlb_predictor.resolver is not None
        m.access(0x400000, 0x10000000, False, 2)
