"""Tests for the predictor hash functions."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.hashing import (
    DEFAULT_BLOCK_HASH_BITS,
    DEFAULT_PC_HASH_BITS,
    DEFAULT_VPN_HASH_BITS,
    block_hash,
    pc_hash,
    vpn_hash,
)


def test_paper_default_widths():
    assert DEFAULT_PC_HASH_BITS == 6
    assert DEFAULT_VPN_HASH_BITS == 4
    assert DEFAULT_BLOCK_HASH_BITS == 12


@given(st.integers(0, 2**64 - 1))
def test_pc_hash_range(pc):
    assert 0 <= pc_hash(pc) < 64


@given(st.integers(0, 2**36 - 1))
def test_vpn_hash_range(vpn):
    assert 0 <= vpn_hash(vpn) < 16


@given(st.integers(0, 2**45 - 1))
def test_block_hash_range(block):
    assert 0 <= block_hash(block) < 4096


def test_custom_widths():
    assert 0 <= pc_hash(0xDEADBEEF, bits=10) < 1024
    assert 0 <= vpn_hash(0xDEADBEEF, bits=5) < 32


def test_hashes_spread_sequential_pages():
    """Nearby VPNs must not all collapse to one hash bucket."""
    hashes = {vpn_hash(v) for v in range(64)}
    assert len(hashes) > 8


def test_hashes_spread_strided_pcs():
    hashes = {pc_hash(0x400000 + 4 * i) for i in range(64)}
    assert len(hashes) > 8
