"""The predictor registry: round-trips, errors, and the byte-identity pin.

The registry replaced ``Machine``'s hard-wired if/elif predictor
construction. These tests pin the three contracts that swap rests on:

* every registered name builds through :func:`repro.predictors.build`
  and survives a short end-to-end run;
* duplicate registration and unknown names are loud, and unknown names
  are rejected at ``SystemConfig`` *construction* (and, via the serve
  protocol, as HTTP 400) with the registered names listed;
* registry dispatch is byte-identical to the pre-registry chain: a
  machine whose listeners are replaced by literal replicas of the old
  if/elif constructions produces the same results and the same
  decision-event ring as the registry-built machine.
"""

import pytest

from repro.core.cbpred import CbPredConfig, CorrelatingDeadBlockPredictor
from repro.core.dppred import DeadPagePredictor, DpPredConfig
from repro.obs.telemetry import Telemetry, TelemetrySpec
from repro.predictors import registry
from repro.predictors.ship import ShipConfig, ShipTlbPredictor
from repro.serve.protocol import ProtocolError, config_from_wire
from repro.sim.config import (
    LLC_PREDICTORS,
    TLB_PREDICTORS,
    fast_config,
    leeway_config,
    perceptron_config,
)
from repro.sim.machine import Machine
from repro.sim.runner import run_trace
from repro.workloads.suite import get_trace

BUDGET = 2000


def _trace():
    return get_trace("cc", BUDGET, 1)


def _config_for(kind: str, name: str):
    """A valid config selecting predictor ``name`` on structure ``kind``."""
    if kind == registry.KIND_TLB:
        return fast_config(tlb_predictor=name)
    # cbPred requires the dpPred coupling (Section VI-B).
    tlb = "dppred" if name.startswith("cbpred") else "none"
    return fast_config(tlb_predictor=tlb, llc_predictor=name)


class TestRoundTrip:
    def test_every_registered_name_builds_and_runs(self):
        trace = _trace()
        for kind in (registry.KIND_TLB, registry.KIND_LLC):
            for name in registry.registered_names(kind):
                cfg = _config_for(kind, name)
                result = run_trace(trace, cfg)
                assert result.instructions > 0, (kind, name)
                assert result.llt_misses > 0, (kind, name)

    def test_build_returns_fresh_instances(self):
        cfg = fast_config(tlb_predictor="dppred")
        a = registry.build(registry.KIND_TLB, "dppred", cfg)
        b = registry.build(registry.KIND_TLB, "dppred", cfg)
        assert a is not b
        assert type(a) is type(b)

    def test_public_constant_tuples_match_registry(self):
        assert set(TLB_PREDICTORS) == {"none", *registry.registered_names("tlb")}
        assert set(LLC_PREDICTORS) == {"none", *registry.registered_names("llc")}


class TestErrors:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(
                registry.KIND_TLB, "dppred", lambda cfg, ctx: None
            )

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError) as exc:
            registry.build(registry.KIND_TLB, "belady", fast_config())
        assert "dppred" in str(exc.value)
        assert "leeway" in str(exc.value)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            registry.build("l4", "dppred", fast_config())

    def test_unknown_name_fails_at_config_construction(self):
        with pytest.raises(ValueError) as exc:
            fast_config(tlb_predictor="belady")
        assert "perceptron" in str(exc.value)
        with pytest.raises(ValueError):
            fast_config(llc_predictor="belady")

    def test_serve_rejects_unknown_predictor_with_names(self):
        with pytest.raises(ProtocolError) as exc:
            config_from_wire({"tlb_predictor": "belady"})
        assert "leeway" in str(exc.value)

    def test_third_party_registration_validates(self):
        name = "_test_registry_plugin"
        registry.register(
            registry.KIND_TLB,
            name,
            lambda cfg, ctx: ShipTlbPredictor(ShipConfig(signature_bits=4)),
        )
        try:
            cfg = fast_config(tlb_predictor=name)
            result = run_trace(_trace(), cfg)
            assert result.instructions > 0
        finally:
            registry.unregister(registry.KIND_TLB, name)
        with pytest.raises(ValueError):
            fast_config(tlb_predictor=name)


class TestServeProfiles:
    def test_new_profiles_resolve(self):
        assert config_from_wire("leeway") == leeway_config()
        assert config_from_wire("perceptron") == perceptron_config()


def _old_style_tlb_predictor(cfg, llc_pred):
    """Literal replica of the pre-registry ``Machine._build_tlb_predictor``
    construction for the dpPred kinds (the byte-identity reference)."""
    kind = cfg.tlb_predictor
    dp = DeadPagePredictor(
        DpPredConfig(
            pc_hash_bits=cfg.dppred_pc_bits,
            vpn_hash_bits=cfg.dppred_vpn_bits,
            threshold=cfg.dppred_threshold,
            shadow_entries=(
                cfg.dppred_shadow_entries
                if kind in ("dppred", "dppred_demote")
                else 0
            ),
            action="demote" if kind == "dppred_demote" else "bypass",
        )
    )
    if isinstance(llc_pred, CorrelatingDeadBlockPredictor):
        dp.pfn_sink = llc_pred.notify_doa_page
    return dp


def _old_style_llc_predictor(cfg):
    kind = cfg.llc_predictor
    return CorrelatingDeadBlockPredictor(
        CbPredConfig(
            bhist_entries=cfg.cbpred_bhist_entries,
            threshold=cfg.cbpred_threshold,
            pfq_entries=cfg.cbpred_pfq_entries,
            use_pfq=(kind == "cbpred"),
        )
    )


class TestByteIdentityPin:
    @pytest.mark.parametrize(
        "tlb,llc", [("dppred", "cbpred"), ("dppred_sh", "cbpred_nopfq")]
    )
    def test_registry_dispatch_matches_old_chain(self, tlb, llc):
        """Same trace, registry-built machine vs a machine whose listeners
        are literal old-style constructions: identical SimResult and
        identical decision-event rings."""
        trace = _trace()
        cfg = fast_config(tlb_predictor=tlb, llc_predictor=llc)

        spec = TelemetrySpec(timeline=False, events=True)
        new_tel = Telemetry(spec)
        new_result = Machine(cfg, telemetry=new_tel).run(trace)

        old_tel = Telemetry(spec)
        machine = Machine(cfg, telemetry=old_tel)
        llc_pred = _old_style_llc_predictor(cfg)
        tlb_pred = _old_style_tlb_predictor(cfg, llc_pred)
        tlb_pred.probe = old_tel.probe
        if tlb_pred.shadow is not None:
            tlb_pred.shadow.probe = old_tel.probe
        llc_pred.probe = old_tel.probe
        machine._tlb_predictor = tlb_pred
        machine.l2_tlb.listener = tlb_pred
        machine._llc_predictor = llc_pred
        machine.llc.listener = llc_pred
        old_result = machine.run(trace)

        assert repr(new_result) == repr(old_result)
        assert new_result.raw == old_result.raw
        assert new_tel.probe.events() == old_tel.probe.events()

    def test_registry_objects_match_old_construction(self):
        """Attribute-level pin for every pre-registry name: the factory
        yields the same type with the same config the old chain built."""
        cfg = fast_config(
            tlb_predictor="dppred", llc_predictor="cbpred"
        )
        dp = registry.build(registry.KIND_TLB, "dppred", cfg)
        assert type(dp) is DeadPagePredictor
        assert dp.config == DpPredConfig(
            pc_hash_bits=cfg.dppred_pc_bits,
            vpn_hash_bits=cfg.dppred_vpn_bits,
            threshold=cfg.dppred_threshold,
            shadow_entries=cfg.dppred_shadow_entries,
            action="bypass",
        )
        sh = registry.build(registry.KIND_TLB, "dppred_sh", cfg)
        assert sh.shadow is None
        demote = registry.build(registry.KIND_TLB, "dppred_demote", cfg)
        assert demote.config.action == "demote"

        cb = registry.build(registry.KIND_LLC, "cbpred", cfg)
        assert type(cb) is CorrelatingDeadBlockPredictor
        assert cb.config == CbPredConfig(
            bhist_entries=cfg.cbpred_bhist_entries,
            threshold=cfg.cbpred_threshold,
            pfq_entries=cfg.cbpred_pfq_entries,
            use_pfq=True,
        )
        nopfq = registry.build(registry.KIND_LLC, "cbpred_nopfq", cfg)
        assert nopfq.config.use_pfq is False

        ship = registry.build(registry.KIND_TLB, "ship", cfg)
        assert ship.core.config.signature_bits == cfg.ship_tlb_signature_bits
        ship_llc = registry.build(registry.KIND_LLC, "ship", cfg)
        assert (
            ship_llc.core.config.signature_bits == cfg.ship_llc_signature_bits
        )

    def test_oracle_factory_selects_pass(self):
        from repro.predictors.oracle import (
            DoaRecordingListener,
            OracleTlbListener,
        )

        cfg = fast_config(tlb_predictor="oracle")
        rec = registry.build(registry.KIND_TLB, "oracle", cfg)
        assert type(rec) is DoaRecordingListener
        ctx = registry.BuildContext(oracle_outcomes={(1, 0): True})
        replay = registry.build(registry.KIND_TLB, "oracle", cfg, ctx)
        assert type(replay) is OracleTlbListener
