"""Model-equivalence property tests.

The set-associative cache and TLB are checked access-for-access against a
tiny executable specification (an OrderedDict-per-set LRU model). If these
hold, every higher-level result rests on correct LRU bookkeeping.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import SetAssocCache
from repro.vm.tlb import Tlb


class LruModel:
    """Executable specification of a set-associative LRU structure."""

    def __init__(self, num_sets, assoc):
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, key):
        """Returns True on hit; fills (with LRU eviction) on miss."""
        s = self.sets[key % self.num_sets]
        if key in s:
            s.move_to_end(key)
            return True
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[key] = True
        return False

    def resident(self):
        return sorted(k for s in self.sets for k in s)


KEYS = st.integers(0, 96)


@settings(max_examples=40)
@given(keys=st.lists(KEYS, min_size=1, max_size=400))
def test_cache_matches_lru_model(keys):
    cache = SetAssocCache("c", num_sets=4, assoc=4)
    model = LruModel(4, 4)
    for now, key in enumerate(keys):
        model_hit = model.access(key)
        cache_hit = cache.lookup(key, now)
        if not cache_hit:
            cache.fill(key, now)
        assert cache_hit == model_hit, f"diverged at access {now} ({key})"
    assert sorted(cache.resident_blocks()) == model.resident()


@settings(max_examples=40)
@given(keys=st.lists(KEYS, min_size=1, max_size=400))
def test_tlb_matches_lru_model(keys):
    tlb = Tlb("t", num_entries=16, assoc=4)
    model = LruModel(4, 4)
    for now, key in enumerate(keys):
        model_hit = model.access(key)
        tlb_hit = tlb.lookup(key, now) is not None
        if not tlb_hit:
            tlb.fill(key, key + 100, 0, now)
        assert tlb_hit == model_hit, f"diverged at access {now} ({key})"
    assert sorted(tlb.resident_vpns()) == model.resident()


@settings(max_examples=40)
@given(
    keys=st.lists(KEYS, min_size=1, max_size=300),
    invalidations=st.lists(KEYS, max_size=30),
)
def test_cache_model_with_invalidations(keys, invalidations):
    """Interleaved invalidations keep the cache aligned with the model."""
    cache = SetAssocCache("c", num_sets=2, assoc=4)
    model = LruModel(2, 4)
    inv = list(invalidations)
    for now, key in enumerate(keys):
        model_hit = model.access(key)
        cache_hit = cache.lookup(key, now)
        if not cache_hit:
            cache.fill(key, now)
        assert cache_hit == model_hit
        if inv and now % 7 == 3:
            victim = inv.pop()
            cache.invalidate(victim, now)
            s = model.sets[victim % model.num_sets]
            s.pop(victim, None)
    assert sorted(cache.resident_blocks()) == model.resident()
