"""Tests for the set-associative TLB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.tlb import FILL_BYPASS, FILL_DISTANT, Tlb, TlbListener


def make_tlb(**kw):
    defaults = dict(name="L2TLB", num_entries=8, assoc=2)
    defaults.update(kw)
    return Tlb(**defaults)


class TestBasics:
    def test_miss_then_fill_then_hit(self):
        t = make_tlb()
        assert t.lookup(0x10, now=0) is None
        t.fill(0x10, pfn=0x99, pc_hash=3, now=1)
        assert t.lookup(0x10, now=2) == 0x99

    def test_entry_metadata(self):
        t = make_tlb()
        t.fill(0x10, pfn=0x99, pc_hash=0x2A, now=0)
        entry = t.probe(0x10)
        assert entry.pc_hash == 0x2A
        assert not entry.accessed
        t.lookup(0x10, now=1)
        assert entry.accessed

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Tlb("bad", num_entries=10, assoc=4)  # not divisible
        with pytest.raises(ValueError):
            Tlb("bad", num_entries=12, assoc=4)  # 3 sets, not power of 2

    def test_duplicate_fill_is_noop(self):
        t = make_tlb()
        t.fill(0x10, 1, 0, now=0)
        assert t.fill(0x10, 2, 0, now=1) is None
        assert t.lookup(0x10, now=2) == 1

    def test_invalidate(self):
        t = make_tlb()
        t.fill(0x10, 1, 0, now=0)
        assert t.invalidate(0x10, now=1).vpn == 0x10
        assert t.lookup(0x10, now=2) is None
        assert t.invalidate(0x10, now=3) is None


class TestEviction:
    def test_lru_within_set(self):
        t = Tlb("t", num_entries=2, assoc=2)  # one set
        t.fill(0, 10, 0, now=0)
        t.fill(2, 12, 0, now=1)
        t.lookup(0, now=2)
        victim = t.fill(4, 14, 0, now=3)
        assert victim.vpn == 2

    def test_eviction_reports_accessed_state(self):
        t = Tlb("t", num_entries=1, assoc=1)
        t.fill(0, 10, 0, now=0)
        victim = t.fill(1, 11, 0, now=1)
        # vpn 1 maps to a different set (set = vpn & 0)? single set: same.
        assert victim is not None
        assert not victim.accessed  # DOA victim


class RecordingListener(TlbListener):
    def __init__(self):
        self.decision = "allocate"
        self.victim_pfn = None
        self.hits = []
        self.misses = []
        self.evicts = []

    def on_hit(self, tlb, entry, now):
        self.hits.append(entry.vpn)

    def on_miss(self, tlb, vpn, now):
        self.misses.append(vpn)
        return self.victim_pfn

    def on_fill(self, tlb, vpn, pfn, pc_hash, now):
        return self.decision

    def on_evict(self, tlb, entry, now):
        self.evicts.append(entry.vpn)


class TestListener:
    def test_bypass(self):
        listener = RecordingListener()
        listener.decision = FILL_BYPASS
        t = make_tlb(listener=listener)
        t.fill(0x10, 1, 0, now=0)
        assert t.occupancy() == 0
        assert t.stats.get("bypasses") == 1

    def test_victim_buffer_serves_miss(self):
        listener = RecordingListener()
        listener.victim_pfn = 0x77
        t = make_tlb(listener=listener)
        assert t.lookup(0x10, now=0) == 0x77
        assert t.stats.get("victim_buffer_hits") == 1
        assert listener.misses == [0x10]

    def test_distant_insertion(self):
        listener = RecordingListener()
        t = Tlb("t", num_entries=2, assoc=2, listener=listener)
        t.fill(0, 10, 0, now=0)
        listener.decision = FILL_DISTANT
        t.fill(2, 12, 0, now=1)
        listener.decision = "allocate"
        victim = t.fill(4, 14, 0, now=2)
        assert victim.vpn == 2

    def test_evict_hook_called(self):
        listener = RecordingListener()
        t = Tlb("t", num_entries=1, assoc=1, listener=listener)
        t.fill(0, 10, 0, now=0)
        t.fill(1, 11, 0, now=1)
        assert listener.evicts == [0]


class TestResidency:
    def test_doa_page_counted(self):
        t = Tlb("t", num_entries=1, assoc=1, track_residency=True)
        t.fill(0, 10, 0, now=0)
        t.fill(1, 11, 0, now=5)  # evicts untouched vpn 0 -> DOA
        t.lookup(1, now=6)  # vpn 1: live 1 tick, then dead 4 -> mostly dead
        t.flush_residency(now=10)
        assert t.residency.summary.doa_evictions == 1
        assert t.residency.summary.mostly_dead_evictions == 1
        assert t.residency.summary.residencies == 2


@settings(max_examples=50)
@given(vpns=st.lists(st.integers(0, 31), min_size=1, max_size=200))
def test_occupancy_bounded_and_unique(vpns):
    t = Tlb("prop", num_entries=8, assoc=4)
    now = 0
    for v in vpns:
        now += 1
        if t.lookup(v, now) is None:
            t.fill(v, v + 100, 0, now)
        assert t.occupancy() <= t.num_entries
    resident = t.resident_vpns()
    assert len(resident) == len(set(resident))


@settings(max_examples=50)
@given(vpns=st.lists(st.integers(0, 31), min_size=1, max_size=200))
def test_translation_consistency(vpns):
    """The TLB never returns a wrong PFN."""
    t = Tlb("prop", num_entries=8, assoc=2)
    now = 0
    for v in vpns:
        now += 1
        pfn = t.lookup(v, now)
        if pfn is None:
            t.fill(v, v + 100, 0, now)
        else:
            assert pfn == v + 100
