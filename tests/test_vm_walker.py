"""Tests for the page-table walker."""

from repro.mem.cache import SetAssocCache
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.mainmem import MainMemory
from repro.vm.pagetable import RadixPageTable
from repro.vm.physmem import FrameAllocator
from repro.vm.pwc import PageWalkCaches
from repro.vm.walker import PageTableWalker


def make_walker(pwc_entries=(4, 8, 16)):
    hierarchy = CacheHierarchy(
        SetAssocCache("L1D", 8, 2),
        SetAssocCache("L2", 32, 4),
        SetAssocCache("LLC", 64, 4),
        MainMemory(191),
    )
    pt = RadixPageTable(FrameAllocator(num_frames=1 << 20))
    return PageTableWalker(pt, PageWalkCaches(pwc_entries), hierarchy)


class TestWalk:
    def test_walk_returns_stable_pfn(self):
        w = make_walker()
        pfn1, _, huge1 = w.walk(0x1234, now=0)
        pfn2, _, huge2 = w.walk(0x1234, now=1)
        assert pfn1 == pfn2
        assert huge1 is None and huge2 is None  # 4 KB mapping
        assert pfn1 == w.page_table.lookup(0x1234)

    def test_cold_walk_is_four_accesses(self):
        w = make_walker()
        w.walk(0x1234, now=0)
        assert w.stats.get("walk_memory_accesses") == 4

    def test_warm_walk_uses_pwc(self):
        w = make_walker()
        w.walk(0x1234, now=0)
        before = w.stats.get("walk_memory_accesses")
        w.walk(0x1234, now=1)
        assert w.stats.get("walk_memory_accesses") - before == 1

    def test_warm_walk_is_much_faster(self):
        w = make_walker()
        _, cold, _ = w.walk(0x1234, now=0)
        _, warm, _ = w.walk(0x1234, now=1)
        assert warm < cold

    def test_walk_latency_varies_with_pwc(self):
        """The paper's '1 to 3 memory accesses on a PWC hit' regime."""
        w = make_walker()
        w.walk(0, now=0)
        # Same 2MB region: 1 access (PTE). Different region sharing upper
        # levels: more accesses.
        before = w.stats.get("walk_memory_accesses")
        w.walk(1, now=1)
        assert w.stats.get("walk_memory_accesses") - before == 1
        before = w.stats.get("walk_memory_accesses")
        w.walk(1 << 18, now=2)
        accesses = w.stats.get("walk_memory_accesses") - before
        assert 2 <= accesses <= 3

    def test_page_table_cached_in_data_caches(self):
        w = make_walker()
        w.walk(0x9999, now=0)
        assert w.hierarchy.stats.get("walk_accesses") == 4
        # Re-walking after PWC pressure hits the caches, not memory.
        mem_before = w.hierarchy.memory.stats.get("accesses")
        w.walk(0x9999 ^ 0x1, now=1)  # same PT node
        assert w.hierarchy.memory.stats.get("accesses") == mem_before

    def test_walk_counter(self):
        w = make_walker()
        w.walk(1, now=0)
        w.walk(2, now=1)
        assert w.stats.get("walks") == 2
        assert w.average_walk_latency > 0


def make_huge_walker():
    hierarchy = CacheHierarchy(
        SetAssocCache("L1D", 8, 2),
        SetAssocCache("L2", 32, 4),
        SetAssocCache("LLC", 64, 4),
        MainMemory(191),
    )
    allocator = FrameAllocator(num_frames=1 << 20)
    pt = RadixPageTable(allocator, huge_policy=lambda region: True)
    return PageTableWalker(pt, PageWalkCaches(), hierarchy)


class TestHugeWalks:
    def test_cold_huge_walk_is_three_accesses(self):
        """The PD entry is the leaf: PGD + PUD + PD, no PTE load."""
        w = make_huge_walker()
        pfn, _, huge_base = w.walk(0x1234, now=0)
        assert w.stats.get("walk_memory_accesses") == 3
        assert huge_base is not None

    def test_huge_base_arithmetic(self):
        w = make_huge_walker()
        vpn = (7 << 9) | 0x55
        pfn, _, huge_base = w.walk(vpn, now=0)
        assert huge_base == pfn - 0x55
        assert huge_base % 512 == 0

    def test_warm_huge_walk_resolves_at_most_two_levels(self):
        """The L1 PWC resolves three levels — past the PD leaf — so huge
        walks must cap the probe plan and still load the leaf."""
        w = make_huge_walker()
        w.walk(0x1234, now=0)
        before = w.stats.get("walk_memory_accesses")
        w.walk(0x1235, now=1)  # same region: PWC-resolved down to the PD
        assert w.stats.get("walk_memory_accesses") - before == 1

    def test_tenant_tables_created_on_demand(self):
        import pytest

        w = make_walker()
        with pytest.raises(ValueError):
            w.walk(1, now=0, asid=3)  # no table_factory wired
        assert w.table_for(0) is w.page_table
