"""Regression tests pinning incremental victim tracking to the old scans.

PR 10 replaced two O(n) ``min()``-based victim scans with incremental
structures:

* :class:`repro.vm.pwc._FullyAssocLru` keeps its stamp dict in recency
  order so eviction is ``popitem(last=False)``;
* :class:`repro.mem.cache.SetAssocCache` caches a per-set ``(way, stamp)``
  min candidate so full-set LRU fills skip the stamp scan when the
  candidate is still valid.

Both must select the *identical* victim the old scan would have picked —
simulation output is bit-compared across engines, so a different victim
is a correctness bug, not a heuristic change. Each test drives the live
structure through randomized operation sequences while an oracle recomputes
the old ``min()`` scan from the same state at every eviction.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import (
    FILL_DISTANT,
    CacheListener,
    SetAssocCache,
)
from repro.vm.pwc import PageWalkCaches, _FullyAssocLru


# --------------------------------------------------------------------- #
# _FullyAssocLru vs. the old min()-scan oracle
# --------------------------------------------------------------------- #
class _MinScanLru:
    """The pre-PR-10 implementation: plain dict + O(n) min() eviction."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.stamps: dict = {}
        self.clock = 0

    def lookup(self, tag: int) -> bool:
        if tag in self.stamps:
            self.clock += 1
            self.stamps[tag] = self.clock
            return True
        return False

    def fill(self, tag: int):
        """Returns the evicted tag (None if no eviction)."""
        victim = None
        self.clock += 1
        if tag not in self.stamps and len(self.stamps) >= self.capacity:
            victim = min(self.stamps, key=self.stamps.get)
            del self.stamps[victim]
        self.stamps[tag] = self.clock
        return victim


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=24)),
        min_size=1,
        max_size=200,
    ),
)
def test_fully_assoc_lru_matches_min_scan(capacity, ops):
    """Every eviction picks the tag the old min() scan would evict, and
    the surviving (tag, stamp) state stays identical throughout."""
    live = _FullyAssocLru(capacity)
    oracle = _MinScanLru(capacity)
    for is_lookup, tag in ops:
        if is_lookup:
            assert live.lookup(tag) == oracle.lookup(tag)
        else:
            before = set(live._stamps)
            oracle_victim = oracle.fill(tag)
            live.fill(tag)
            evicted = before - set(live._stamps)
            live_victim = evicted.pop() if evicted else None
            assert live_victim == oracle_victim
        assert dict(live._stamps) == oracle.stamps
        assert live._clock == oracle.clock


def test_fully_assoc_lru_recency_order_invariant():
    """_stamps stays sorted by stamp (least-recent first) — the property
    that makes popitem(last=False) equivalent to the min() scan."""
    rng = random.Random(0xC0FFEE)
    lru = _FullyAssocLru(6)
    for _ in range(500):
        tag = rng.randrange(20)
        if rng.random() < 0.5:
            lru.lookup(tag)
        else:
            lru.fill(tag)
        stamps = list(lru._stamps.values())
        assert stamps == sorted(stamps)
        assert len(lru._stamps) <= 6


def test_pwc_stack_victims_match_min_scan_oracle():
    """Whole-stack PWC consult/fill against three min()-scan oracles."""
    rng = random.Random(0x5EED)
    pwc = PageWalkCaches(entries=(4, 8, 16))
    oracles = [_MinScanLru(n) for n in (4, 8, 16)]
    shifts = (9, 18, 27)  # L1/L2/L3 tag shifts for 9-bit radix levels
    for _ in range(800):
        vpn = rng.randrange(1 << 20)
        asid = rng.choice((0, 0, 1, 3))
        base = 0 if asid == 0 else asid << 36
        if rng.random() < 0.5:
            pwc.consult(vpn, asid)
            # Mirror the early-out probe order: L1 first, stop on hit.
            for oracle, shift in zip(oracles, shifts):
                if oracle.lookup(base | (vpn >> shift)):
                    break
        else:
            pwc.fill(vpn, asid)
            for oracle, shift in zip(oracles, shifts):
                oracle.fill(base | (vpn >> shift))
        for level, oracle in zip(pwc._levels, oracles):
            assert dict(level._stamps) == oracle.stamps


# --------------------------------------------------------------------- #
# SetAssocCache incremental min-stamp candidate vs. a fresh stamp scan
# --------------------------------------------------------------------- #
def _scan_victim(cache: SetAssocCache, set_idx: int) -> int:
    """The old implementation: full O(assoc) min-stamp scan, first
    minimal way wins (ties broken by lowest way index)."""
    row = cache._lru_stamps[set_idx]
    way, best = 0, row[0]
    for w in range(1, cache.assoc):
        if row[w] < best:
            way, best = w, row[w]
    return way


class _EveryThirdDistant(CacheListener):
    """Deterministically demotes every third fill to distant insertion —
    distant stamps are *below* the set minimum, the one case where the
    cached candidate must be explicitly re-pointed."""

    def __init__(self):
        self.count = 0

    def on_fill(self, cache, block, now):
        self.count += 1
        if self.count % 3 == 0:
            return FILL_DISTANT
        return "allocate"


@pytest.mark.parametrize("with_listener", [False, True])
def test_setassoc_lru_victim_matches_fresh_scan(with_listener):
    """Randomized fill/lookup/invalidate traffic: whenever a full set
    evicts, the incremental candidate must name the way a fresh min()
    scan of the live stamps would pick."""
    rng = random.Random(0xDEAD)
    listener = _EveryThirdDistant() if with_listener else None
    cache = SetAssocCache("pin", num_sets=4, assoc=4, listener=listener)
    now = 0
    for _ in range(2000):
        now += 1
        block = rng.randrange(64)
        roll = rng.random()
        if roll < 0.25:
            cache.lookup(block, now)
        elif roll < 0.30:
            victim = cache.invalidate(block, now)
            if victim is not None:
                from repro.mem.cache import release_line

                release_line(victim)
        else:
            set_idx = block & cache._set_mask
            expected_tag = None
            if (
                block not in cache._tags[set_idx]
                and len(cache._tags[set_idx]) == cache.assoc
            ):
                will_bypass = (
                    listener is not None
                    and (listener.count + 1) % 3 == 0
                    and False  # distant still allocates; never bypasses
                )
                if not will_bypass:
                    way = _scan_victim(cache, set_idx)
                    expected_tag = cache._lines[set_idx][way].tag
            victim = cache.fill(block, now)
            if expected_tag is not None:
                assert victim is not None
                assert victim.tag == expected_tag
            if victim is not None:
                from repro.mem.cache import release_line

                release_line(victim)


def test_setassoc_distant_insertion_is_next_victim():
    """A distant insertion into a full set must be the next eviction's
    victim (its stamp sits below the previous set minimum)."""
    listener = _EveryThirdDistant()
    cache = SetAssocCache("distant", num_sets=1, assoc=4, listener=listener)
    now = 0
    # Fills 1, 2 allocate; fill 3 is distant; fill 4 allocates.
    for block in (0, 4, 8, 12):
        now += 1
        cache.fill(block, now)
    # Set is full; block 8 was the distant (3rd) fill → next victim.
    now += 1
    victim = cache.fill(16, now)
    assert victim is not None and victim.tag == 8
