"""Tests for repro.common.counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.counters import CounterArray, SaturatingCounter


class TestSaturatingCounter:
    def test_starts_at_initial(self):
        assert SaturatingCounter(3).value == 0
        assert SaturatingCounter(3, initial=5).value == 5

    def test_saturates_high(self):
        c = SaturatingCounter(3)
        for _ in range(20):
            c.increment()
        assert c.value == 7

    def test_saturates_low(self):
        c = SaturatingCounter(3, initial=1)
        c.decrement()
        c.decrement()
        assert c.value == 0

    def test_clear(self):
        c = SaturatingCounter(3, initial=6)
        c.clear()
        assert c.value == 0

    def test_is_above_threshold(self):
        c = SaturatingCounter(3, initial=7)
        assert c.is_above(6)
        assert not c.is_above(7)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(2, initial=4)

    @given(st.integers(1, 8), st.lists(st.booleans(), max_size=200))
    def test_always_in_range(self, width, ops):
        c = SaturatingCounter(width)
        for up in ops:
            c.increment() if up else c.decrement()
            assert 0 <= c.value <= c.max_value


class TestCounterArray:
    def test_all_start_at_initial(self):
        arr = CounterArray(16, width=3, initial=2)
        assert all(arr.get(i) == 2 for i in range(16))

    def test_len(self):
        assert len(CounterArray(10, width=3)) == 10

    def test_increment_saturates(self):
        arr = CounterArray(4, width=3)
        for _ in range(10):
            arr.increment(1)
        assert arr.get(1) == 7
        assert arr.get(0) == 0  # neighbours untouched

    def test_decrement_saturates(self):
        arr = CounterArray(4, width=3, initial=1)
        arr.decrement(2)
        arr.decrement(2)
        assert arr.get(2) == 0

    def test_clear_single(self):
        arr = CounterArray(4, width=3, initial=5)
        arr.clear(0)
        assert arr.get(0) == 0
        assert arr.get(1) == 5

    def test_clear_all(self):
        arr = CounterArray(4, width=3, initial=5)
        arr.clear_all()
        assert all(arr.get(i) == 0 for i in range(4))

    def test_is_above(self):
        arr = CounterArray(2, width=3, initial=7)
        assert arr.is_above(0, 6)
        assert not arr.is_above(0, 7)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CounterArray(0, width=3)

    @given(
        st.integers(1, 6),
        st.lists(
            st.tuples(st.integers(0, 7), st.sampled_from(["inc", "dec", "clr"])),
            max_size=300,
        ),
    )
    def test_array_values_always_in_range(self, width, ops):
        arr = CounterArray(8, width=width)
        for idx, op in ops:
            if op == "inc":
                arr.increment(idx)
            elif op == "dec":
                arr.decrement(idx)
            else:
                arr.clear(idx)
            assert 0 <= arr.get(idx) <= arr.max_value
