"""Tests for the ground-truth reference structure (accuracy/coverage)."""

import pytest

from repro.sim.reference import ReferenceStructure


def make_ref(entries=4, assoc=2):
    return ReferenceStructure("ref", entries, assoc)


class TestTruth:
    def test_doa_counted_on_eviction(self):
        ref = make_ref(entries=2, assoc=2)
        ref.access(0, 0)
        ref.access(2, 1)
        ref.access(4, 2)  # evicts 0 (never re-accessed): true DOA
        assert ref.stats.get("true_doas") == 1

    def test_reused_not_doa(self):
        ref = make_ref(entries=2, assoc=2)
        ref.access(0, 0)
        ref.access(0, 1)
        ref.access(2, 2)
        ref.access(4, 3)  # evicts someone; 0 was reused
        ref.finalize()
        assert ref.stats.get("true_doas") == ref.stats.get("residencies") - 1

    def test_finalize_settles_residents(self):
        ref = make_ref()
        ref.access(0, 0)
        ref.access(2, 1)
        ref.finalize()
        assert ref.stats.get("residencies") == 2
        assert ref.stats.get("true_doas") == 2


class TestPredictionScoring:
    def test_correct_doa_prediction(self):
        ref = make_ref(entries=2, assoc=2)
        ref.access(0, 0)
        ref.record_prediction(0, True)
        ref.access(2, 1)
        ref.access(4, 2)  # evicts 0, truly DOA
        ref.finalize()
        assert ref.stats.get("correct_doa_predictions") == 1
        assert ref.accuracy == 1.0
        assert ref.coverage == pytest.approx(1 / 3)

    def test_wrong_doa_prediction(self):
        ref = make_ref(entries=2, assoc=2)
        ref.access(0, 0)
        ref.record_prediction(0, True)
        ref.access(0, 1)  # reused: the prediction was wrong
        ref.finalize()
        assert ref.accuracy == 0.0

    def test_not_doa_predictions_ignored_for_accuracy(self):
        ref = make_ref()
        ref.access(0, 0)
        ref.record_prediction(0, False)
        ref.finalize()
        assert ref.accuracy is None  # no DOA predictions made
        assert ref.stats.get("predictions") == 1

    def test_prediction_before_access_is_buffered(self):
        """Fill hooks can fire ahead of the reference feed."""
        ref = make_ref(entries=2, assoc=2)
        ref.record_prediction(0, True)
        ref.access(0, 0)
        ref.access(2, 1)
        ref.access(4, 2)
        ref.finalize()
        assert ref.stats.get("correct_doa_predictions") == 1

    def test_coverage_none_without_true_doas(self):
        ref = make_ref()
        ref.access(0, 0)
        ref.access(0, 1)
        # Entry still resident and reused; no DOAs yet.
        assert ref.coverage is None


class TestGeometry:
    def test_lru_within_set(self):
        ref = ReferenceStructure("ref", 2, 2)  # one set
        ref.access(0, 0)
        ref.access(2, 1)
        ref.access(0, 2)  # promote 0
        ref.access(4, 3)  # evicts 2
        ref.access(2, 4)  # refill: 2 had been evicted
        assert ref.stats.get("residencies") >= 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            ReferenceStructure("bad", 10, 4)
        with pytest.raises(ValueError):
            ReferenceStructure("bad", 12, 4)
