"""Tests for dpPred's demote ablation mode and trace persistence."""

import numpy as np
import pytest

from repro.core.dppred import (
    ACTION_BYPASS,
    ACTION_DEMOTE,
    DeadPagePredictor,
    DpPredConfig,
)
from repro.vm.tlb import Tlb
from repro.workloads.trace import Trace


def train_doa(tlb, vpn, pc, times):
    for i in range(times):
        tlb.fill(vpn, vpn + 1000, pc, now=i)
        tlb.invalidate(vpn, now=i)


class TestDemoteMode:
    def test_demote_allocates_at_lru(self):
        pred = DeadPagePredictor(DpPredConfig(action=ACTION_DEMOTE))
        tlb = Tlb("LLT", num_entries=2, assoc=2, listener=pred)
        train_doa(tlb, 0x10, 5, 7)
        tlb.fill(0, 100, 9, now=50)
        tlb.fill(0x10, 1, 5, now=100)  # predicted DOA -> demoted, not gone
        assert tlb.probe(0x10) is not None
        assert tlb.stats.get("bypasses") == 0
        # The demoted entry is the next victim despite being newest.
        victim = tlb.fill(2, 102, 9, now=101)
        assert victim.vpn == 0x10

    def test_demote_skips_shadow(self):
        pred = DeadPagePredictor(DpPredConfig(action=ACTION_DEMOTE))
        tlb = Tlb("LLT", num_entries=2, assoc=2, listener=pred)
        train_doa(tlb, 0x10, 5, 7)
        tlb.fill(0x10, 1, 5, now=100)
        assert 0x10 not in pred.shadow

    def test_demote_still_feeds_pfq(self):
        sunk = []
        pred = DeadPagePredictor(
            DpPredConfig(action=ACTION_DEMOTE), pfn_sink=sunk.append
        )
        tlb = Tlb("LLT", num_entries=2, assoc=2, listener=pred)
        train_doa(tlb, 0x10, 5, 7)
        tlb.fill(0x10, 0x77, 5, now=100)
        assert sunk == [0x77]

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            DeadPagePredictor(DpPredConfig(action="evict"))

    def test_bypass_is_default(self):
        assert DpPredConfig().action == ACTION_BYPASS


class TestDemoteEndToEnd:
    def test_machine_accepts_demote_config(self):
        from repro.sim import fast_config
        from repro.sim.machine import Machine

        m = Machine(fast_config(tlb_predictor="dppred_demote"))
        m.access(0x400000, 0x10000000, False, 3)
        assert m.tlb_predictor.config.action == ACTION_DEMOTE


class TestTracePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace(
            "demo",
            np.arange(10, dtype=np.uint64),
            np.arange(10, dtype=np.uint64) * 4096,
            np.asarray([i % 2 == 0 for i in range(10)]),
            np.full(10, 3, dtype=np.uint16),
        )
        path = tmp_path / "demo.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "demo"
        assert np.array_equal(loaded.pcs, trace.pcs)
        assert np.array_equal(loaded.vaddrs, trace.vaddrs)
        assert np.array_equal(loaded.writes, trace.writes)
        assert np.array_equal(loaded.gaps, trace.gaps)
