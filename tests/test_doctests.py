"""Run the doctest examples embedded in library docstrings."""

import doctest

import pytest

import repro.common.bitops
import repro.common.counters
import repro.common.stats


@pytest.mark.parametrize(
    "module",
    [repro.common.bitops, repro.common.counters, repro.common.stats],
    ids=lambda m: m.__name__,
)
def test_doctests(module):
    failures, tests = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert tests > 0, f"{module.__name__} has no doctests"
    assert failures == 0
