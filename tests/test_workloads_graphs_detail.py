"""Deeper behavioural tests of the graph kernels' access structure."""

import numpy as np
import pytest

from repro.workloads.graphs import (
    EDGE_SIZE,
    OFFSET_SIZE,
    VALUE_SIZE,
    Bfs,
    GraphWorkload,
    PageRank,
    TriangleCounting,
)

BUDGET = 6000


class SmallPr(PageRank):
    num_vertices = 500
    avg_degree = 6


class SmallBfs(Bfs):
    num_vertices = 500
    avg_degree = 6


class TestVertexScanMotif:
    def test_pr_interleaves_edges_and_gathers(self):
        trace = SmallPr(seed=1).generate(BUDGET)
        pcs = trace.pcs
        # Find positions of edge reads; the next access is (almost always)
        # a gather of the target's value.
        edge_pos = np.where(pcs == GraphWorkload.PC_EDGES)[0]
        edge_pos = edge_pos[edge_pos + 1 < len(pcs)]
        followers = pcs[edge_pos + 1]
        gather_follow = (followers == GraphWorkload.PC_GATHER).mean()
        assert gather_follow > 0.95

    def test_edge_reads_are_sequential(self):
        trace = SmallPr(seed=1).generate(BUDGET)
        mask = trace.pcs == GraphWorkload.PC_EDGES
        eaddrs = trace.vaddrs[mask].astype(np.int64)
        deltas = np.diff(eaddrs)
        # Within a vertex the edge reads advance by EDGE_SIZE.
        assert (deltas == EDGE_SIZE).mean() > 0.5

    def test_gathers_match_graph_targets(self):
        wl = SmallPr(seed=1)
        trace = wl.generate(BUDGET)
        g = wl._graph
        rank_base = wl.space.base("rank")
        mask = trace.pcs == GraphWorkload.PC_GATHER
        gathered = (trace.vaddrs[mask] - rank_base) // VALUE_SIZE
        # Every gathered vertex id is a real vertex.
        assert (gathered < g.num_vertices).all()
        # The multiset of early gathers equals the first vertices' targets.
        n_check = min(50, len(gathered))
        expected = g.targets[:n_check]
        assert np.array_equal(
            np.sort(gathered[:n_check]), np.sort(expected[:n_check])
        )

    def test_writes_only_on_write_pcs(self):
        trace = SmallPr(seed=1).generate(BUDGET)
        write_pcs = set(np.unique(trace.pcs[trace.writes]).tolist())
        assert GraphWorkload.PC_EDGES not in write_pcs
        assert GraphWorkload.PC_OFFSETS not in write_pcs


class TestBfsSemantics:
    def test_bfs_visits_each_vertex_once_per_source(self):
        """Within one BFS, a vertex's parent is written at most once."""
        wl = SmallBfs(seed=3)
        trace = wl.generate(BUDGET)
        parent_base = wl.space.base("parent")
        mask = (trace.pcs == GraphWorkload.PC_WRITE) & trace.writes
        written = (trace.vaddrs[mask] - parent_base) // VALUE_SIZE
        # Writes can repeat across restarts, but within the first BFS
        # (before any repeated vertex) they must be unique.
        first_repeat = len(written)
        seen = set()
        for i, v in enumerate(written.tolist()):
            if v in seen:
                first_repeat = i
                break
            seen.add(v)
        assert first_repeat > 0


class TestTriangleProbes:
    def test_probe_addresses_inside_edge_array(self):
        class SmallTri(TriangleCounting):
            num_vertices = 400
            avg_degree = 6

        wl = SmallTri(seed=2)
        trace = wl.generate(BUDGET)
        tg_base = wl.space.base("targets")
        mask = trace.pcs == GraphWorkload.PC_AUX
        assert mask.any()
        probes = trace.vaddrs[mask]
        assert (probes >= tg_base).all()
        assert (probes < tg_base + wl._graph.num_edges * EDGE_SIZE).all()


class TestLayout:
    def test_regions_sized_to_graph(self):
        wl = SmallPr(seed=1)
        wl.generate(1000)
        space = wl.space
        n = wl._graph.num_vertices
        assert space.base("targets") > space.base("offsets") + n * OFFSET_SIZE
        assert space.base("rank") > space.base("targets")

    def test_value_arrays_created_per_kernel(self):
        wl = SmallPr(seed=1)
        wl.generate(1000)
        assert wl.space.base("rank_new") > wl.space.base("rank")
