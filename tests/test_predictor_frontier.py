"""The two frontier predictor families: Leeway and hashed-perceptron.

Unit tests pin the decision cores (percentile rule, ring training,
margin-gated integer perceptron updates), the machine-level contracts
(bypass accounting, counted ``predictor`` flat declines — never a silent
engine change), and a hypothesis differential pinning bit-determinism:
two identically seeded runs of either family produce identical results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.engine as engine_mod
from repro.predictors.base import AccessContext, PredictorSpec
from repro.predictors.leeway import (
    LeewayCachePredictor,
    LeewayConfig,
    LeewayTlbPredictor,
    _LeewayCore,
    _LeewayState,
)
from repro.predictors.perceptron import (
    PerceptronCachePredictor,
    PerceptronConfig,
    PerceptronTlbPredictor,
    _PerceptronCore,
    _cache_features,
    _tlb_features,
)
from repro.sim.config import fast_config, leeway_config, perceptron_config
from repro.sim.engine import ENGINE_BATCHED, flat_reason
from repro.sim.machine import Machine
from repro.workloads.suite import get_trace

BUDGET = 3000
SEED = 7


def _evict(core, sig, live):
    state = _LeewayState(sig)
    state.live = live
    core.train_eviction(state)


class TestLeewayCore:
    def test_cold_ring_never_predicts(self):
        core = _LeewayCore(LeewayConfig(ring_entries=4))
        assert not core.predicts_doa(0)
        for _ in range(3):  # still one -1 slot left
            _evict(core, 0, 0)
        assert not core.predicts_doa(0)

    def test_all_doa_signature_predicts_dead(self):
        core = _LeewayCore(LeewayConfig(ring_entries=4, percentile=75))
        for _ in range(4):
            _evict(core, 0, 0)
        assert core.predicts_doa(0)
        assert not core.predicts_doa(1)  # other signatures untouched

    def test_percentile_tolerates_outlier_reuse(self):
        """One live residency among four at percentile 75 keeps the
        signature dead (the variability tolerance); at 100 it flips."""
        strict = _LeewayCore(LeewayConfig(ring_entries=4, percentile=100))
        tolerant = _LeewayCore(LeewayConfig(ring_entries=4, percentile=75))
        for core in (strict, tolerant):
            for live in (0, 0, 0, 9):
                _evict(core, 0, live)
        assert tolerant.predicts_doa(0)
        assert not strict.predicts_doa(0)

    def test_mostly_live_signature_allocates(self):
        core = _LeewayCore(LeewayConfig(ring_entries=4, percentile=75))
        for live in (5, 3, 0, 7):
            _evict(core, 0, live)
        assert not core.predicts_doa(0)

    def test_ring_shifts_one_sample_per_eviction(self):
        """Recovery is gradual: an all-dead ring needs enough live
        evictions to cross the percentile back, not just one."""
        core = _LeewayCore(LeewayConfig(ring_entries=4, percentile=75))
        for _ in range(4):
            _evict(core, 0, 0)
        assert core.predicts_doa(0)
        _evict(core, 0, 9)
        assert core.predicts_doa(0)  # 3/4 dead still >= 75th percentile
        _evict(core, 0, 9)
        assert not core.predicts_doa(0)

    def test_sampling_period_is_deterministic(self):
        core = _LeewayCore(LeewayConfig(sample_period=4))
        picks = [core.should_sample(0) for _ in range(8)]
        assert picks == [False, False, False, True] * 2

    def test_age_saturates_at_max_distance(self):
        core = _LeewayCore(LeewayConfig(max_distance=3))
        state = _LeewayState(0)
        for _ in range(10):
            core.on_set_access(state)
        assert state.age == 3

    def test_storage_bits_positive(self):
        assert _LeewayCore().storage_bits(1024) > 0

    def test_config_validation(self):
        for bad in (
            {"signature_bits": 0},
            {"ring_entries": 0},
            {"percentile": 0},
            {"percentile": 101},
            {"max_distance": 0},
            {"sample_period": 1},
        ):
            with pytest.raises(ValueError):
                LeewayConfig(**bad).validate()


class TestPerceptronCore:
    def test_cold_tables_allocate(self):
        core = _PerceptronCore(PerceptronConfig())
        state = core.predict((1, 2, 3, 4))
        assert state.yout == 0
        assert not core.predicts_doa(state)

    def test_training_moves_weights_toward_doa(self):
        core = _PerceptronCore(PerceptronConfig(threshold=4))
        features = (1, 2, 3, 4)
        for _ in range(3):
            core.train(core.predict(features), was_doa=True)
        state = core.predict(features)
        assert state.yout == 12  # 3 trainings x 4 features
        assert core.predicts_doa(state)
        core.train(core.predict(features), was_doa=False)
        assert core.predict(features).yout == 8

    def test_weights_saturate(self):
        core = _PerceptronCore(PerceptronConfig(weight_bits=3))
        features = (0, 0, 0, 0)
        for _ in range(50):
            core.train(core.predict(features), was_doa=True)
        limit = core.weight_limit
        assert limit == 3
        assert core.predict(features).yout == 4 * limit

    def test_margin_gates_confident_correct_predictions(self):
        core = _PerceptronCore(PerceptronConfig(threshold=1, train_margin=8))
        features = (5, 6, 7, 8)
        # Train well past the margin, then a correct confident prediction
        # must leave the weights untouched.
        for _ in range(4):
            core.train(core.predict(features), was_doa=True)
        yout = core.predict(features).yout
        assert yout > 8
        core.train(core.predict(features), was_doa=True)
        assert core.predict(features).yout == yout

    def test_features_are_distinct_per_level(self):
        tlb = _tlb_features(0x400123, 0x10011, 8)
        cache = _cache_features(0x400123, 0x40044, 8)
        assert len(tlb) == len(cache) == _PerceptronCore.NUM_FEATURES
        assert all(0 <= f < 256 for f in tlb + cache)

    def test_storage_bits_positive(self):
        assert _PerceptronCore().storage_bits(4096) > 0

    def test_config_validation(self):
        for bad in (
            {"table_bits": 0},
            {"weight_bits": 1},
            {"threshold": 0},
            {"train_margin": -1},
            {"sample_period": 1},
        ):
            with pytest.raises(ValueError):
                PerceptronConfig(**bad).validate()


class TestPredictorSpecContract:
    def test_cache_variants_require_context(self):
        with pytest.raises(ValueError, match="AccessContext"):
            LeewayCachePredictor(LeewayConfig())
        with pytest.raises(ValueError, match="AccessContext"):
            PerceptronCachePredictor(PerceptronConfig())

    def test_new_predictors_satisfy_predictor_spec(self):
        ctx = AccessContext()
        for pred in (
            LeewayTlbPredictor(),
            LeewayCachePredictor(context=ctx),
            PerceptronTlbPredictor(),
            PerceptronCachePredictor(context=ctx),
        ):
            assert isinstance(pred, PredictorSpec)
            assert pred.probe is None
            assert pred.storage_bits(64) > 0


class TestMachineIntegration:
    @pytest.mark.parametrize("factory", [leeway_config, perceptron_config])
    def test_runs_and_bypasses(self, factory):
        trace = get_trace("cc", BUDGET, SEED)
        machine = Machine(factory(track_reference=True), seed=SEED)
        result = machine.run(trace)
        assert result.instructions > 0
        assert result.llt_bypasses > 0
        assert result.tlb_accuracy is not None

    @pytest.mark.parametrize("factory", [leeway_config, perceptron_config])
    def test_flat_decline_is_counted_not_silent(self, factory):
        """New families must keep the bulk+scalar hybrid with a counted
        ``predictor`` decline — the no-silent-fallback acceptance bar."""
        config = factory()
        machine = Machine(config, seed=SEED)
        assert flat_reason(machine) == "predictor"

        engine_mod.reset_engine_totals()
        trace = get_trace("locality", 500, SEED)
        machine = Machine(config, seed=SEED)
        machine.run(trace, engine=ENGINE_BATCHED)
        stats = machine.engine_stats
        assert stats["engine"] == ENGINE_BATCHED
        assert stats["mode"] == "hybrid"
        assert stats["flat_reason"] == "predictor"
        totals = engine_mod.engine_totals()
        assert totals["flat_declines"] == {"predictor": 1}
        assert totals["fallbacks"] == 0
        engine_mod.reset_engine_totals()

    def test_dppred_still_runs_flat(self):
        """Regression: the counted decline must not leak onto configs the
        flat interpreter does model."""
        machine = Machine(
            fast_config(tlb_predictor="dppred", llc_predictor="cbpred"),
            seed=SEED,
        )
        assert flat_reason(machine) is None


# ------------------------------------------------------------------ #
# Determinism differential (hypothesis)
# ------------------------------------------------------------------ #
PAGES = st.integers(0, 600)
STREAMS = st.lists(
    st.tuples(PAGES, st.booleans(), st.integers(0, 3)),
    min_size=20,
    max_size=250,
)


def drive(machine, stream):
    for page, write, site in stream:
        machine.access(
            0x400000 + site * 4, 0x10000000 + page * 4096, write, 2
        )


def _fingerprint(machine):
    return (
        machine.instructions,
        machine.cycles,
        machine.l2_tlb.stats.snapshot(),
        machine.llc.stats.snapshot(),
        sorted(machine.llc.resident_blocks()),
    )


@settings(max_examples=15, deadline=None)
@given(stream=STREAMS)
@pytest.mark.parametrize("factory", [leeway_config, perceptron_config])
def test_identical_streams_are_bit_deterministic(factory, stream):
    """Integer-only training: two machines fed the same stream agree on
    every counter and on the exact LLC contents."""
    a = Machine(factory())
    b = Machine(factory())
    drive(a, stream)
    drive(b, stream)
    assert _fingerprint(a) == _fingerprint(b)


@pytest.mark.parametrize("factory", [leeway_config, perceptron_config])
def test_identical_seeded_runs_produce_identical_results(factory):
    trace_a = get_trace("cc", BUDGET, SEED)
    trace_b = get_trace("cc", BUDGET, SEED)
    result_a = Machine(factory(), seed=SEED).run(trace_a)
    result_b = Machine(factory(), seed=SEED).run(trace_b)
    assert repr(result_a) == repr(result_b)
    assert result_a.raw == result_b.raw
