"""Tests for the residency tracker behind Figures 1-4."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.residency import ResidencyTracker


def run_residency(events):
    """Apply (op, key, time) events and return the tracker."""
    t = ResidencyTracker()
    for op, key, now in events:
        getattr(t, op)(key, now)
    return t


class TestEvictionClassification:
    def test_doa_residency(self):
        # Filled at 0, never hit, evicted at 100 -> DOA, fully dead.
        t = run_residency([("fill", "a", 0), ("evict", "a", 100)])
        s = t.summary
        assert s.residencies == 1
        assert s.doa_evictions == 1
        assert s.dead_fraction == 1.0
        assert s.doa_fraction == 1.0
        assert s.doa_eviction_fraction == 1.0

    def test_mostly_dead_residency(self):
        # Hit early (t=10), evicted late (t=100): dead 90 > live 10.
        t = run_residency(
            [("fill", "a", 0), ("hit", "a", 10), ("evict", "a", 100)]
        )
        s = t.summary
        assert s.doa_evictions == 0
        assert s.mostly_dead_evictions == 1
        assert s.dead_fraction == 0.9
        assert s.doa_fraction == 0.0

    def test_mostly_live_residency(self):
        # Hit at t=90, evicted at t=100: live 90 > dead 10.
        t = run_residency(
            [("fill", "a", 0), ("hit", "a", 90), ("evict", "a", 100)]
        )
        s = t.summary
        assert s.mostly_live_evictions == 1
        assert s.dead_eviction_fraction == 0.0
        assert abs(s.dead_fraction - 0.1) < 1e-12

    def test_boundary_dead_equals_live_is_mostly_live(self):
        t = run_residency(
            [("fill", "a", 0), ("hit", "a", 50), ("evict", "a", 100)]
        )
        assert t.summary.mostly_live_evictions == 1


class TestAggregation:
    def test_two_entries_mixed(self):
        t = run_residency(
            [
                ("fill", "a", 0),
                ("fill", "b", 0),
                ("hit", "b", 80),
                ("evict", "a", 100),  # DOA
                ("evict", "b", 100),  # mostly live
            ]
        )
        s = t.summary
        assert s.residencies == 2
        assert s.doa_eviction_fraction == 0.5
        # dead time: a fully (100) + b (20) = 120 over 200 total.
        assert abs(s.dead_fraction - 0.6) < 1e-12

    def test_key_reuse_after_evict(self):
        # The same (set, way) key hosts two different residencies.
        t = run_residency(
            [
                ("fill", "w0", 0),
                ("evict", "w0", 10),
                ("fill", "w0", 10),
                ("hit", "w0", 15),
                ("evict", "w0", 20),
            ]
        )
        assert t.summary.residencies == 2
        assert t.summary.doa_evictions == 1

    def test_evict_unknown_key_is_noop(self):
        t = ResidencyTracker()
        t.evict("ghost", 5)
        assert t.summary.residencies == 0

    def test_hit_unknown_key_is_noop(self):
        t = ResidencyTracker()
        t.hit("ghost", 5)
        assert t.live_count == 0

    def test_flush_closes_all(self):
        t = ResidencyTracker()
        t.fill("a", 0)
        t.fill("b", 0)
        t.hit("a", 5)
        t.flush(10)
        assert t.summary.residencies == 2
        assert t.live_count == 0

    def test_empty_summary_fractions_are_zero(self):
        s = ResidencyTracker().summary
        assert s.dead_fraction == 0.0
        assert s.doa_eviction_fraction == 0.0
        assert s.dead_eviction_fraction == 0.0


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_invariants_under_random_schedules(schedule):
    """Dead time never exceeds total time; DOA is a subset of dead."""
    t = ResidencyTracker()
    now = 0
    live = set()
    for key, do_hit in schedule:
        now += 1
        if key not in live:
            t.fill(key, now)
            live.add(key)
        elif do_hit:
            t.hit(key, now)
        else:
            t.evict(key, now)
            live.discard(key)
    t.flush(now + 1)
    s = t.summary
    assert 0 <= s.dead_time <= s.total_time
    assert 0 <= s.doa_time <= s.dead_time
    assert (
        s.doa_evictions + s.mostly_dead_evictions + s.mostly_live_evictions
        == s.residencies
    )
