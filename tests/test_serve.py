"""Tests for the simulation server (:mod:`repro.serve`) and the shared
infrastructure it rides on (keyed in-flight coalescing, warm pools,
concurrent-safe cache publication).

The load-bearing invariant: a served result is **byte-identical** to the
same config run through the CLI path — asserted here against an
independent :func:`repro.sim.runner.run_trace` reference that bypasses
every cache the server could have consulted.
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.sim.diskcache as diskcache
import repro.sim.runner as runner
from repro.serve import ServeClient, start_background
from repro.serve.client import ServeError
from repro.serve.protocol import (
    ProtocolError,
    config_from_wire,
    config_to_wire,
    parse_matrix_body,
    parse_run_body,
    run_key,
)
from repro.sim.config import fast_config, paper_config
from repro.sim.inflight import (
    KeyedInflight,
    global_inflight,
    reset_global_inflight,
)
from repro.sim.parallel import (
    RunRequest,
    WarmPool,
    close_shared_pool,
    run_matrix,
    shared_warm_pool,
)
from repro.sim.results import SimResult, wire_bytes
from repro.sim.runner import (
    clear_run_cache,
    machine_seed_for,
    run_trace,
)
from repro.workloads.suite import clear_trace_cache, get_trace

BUDGET = 3000


@pytest.fixture(autouse=True)
def _fresh_run_state():
    """Isolate the process-wide run cache and in-flight registry: several
    tests prime them (one with a sentinel result that must not leak)."""
    clear_run_cache()
    reset_global_inflight()
    yield
    clear_run_cache()
    reset_global_inflight()


def reference_result(workload, config, budget=BUDGET, seed=42):
    """The CLI-path ground truth, bypassing every cache layer."""
    return run_trace(
        get_trace(workload, budget, seed), config,
        seed=machine_seed_for(seed),
    )


# --------------------------------------------------------------------- #
# Protocol (wire forms)
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_profile_names(self):
        assert config_from_wire("fast") == fast_config()
        assert config_from_wire("paper") == paper_config()

    def test_flat_overrides(self):
        cfg = config_from_wire({"tlb_predictor": "dppred"})
        assert cfg == fast_config(tlb_predictor="dppred")

    def test_full_round_trip(self):
        cfg = paper_config(
            tlb_predictor="dppred", llc_predictor="cbpred"
        )
        # JSON round trip degrades tuples to lists and dataclasses to
        # dicts; the wire parser must rebuild an *equal* frozen config,
        # or content-addressed keys would diverge between client and CLI.
        wire = json.loads(json.dumps(config_to_wire(cfg)))
        assert config_from_wire(wire) == cfg

    def test_nested_geometry_override(self):
        cfg = config_from_wire(
            {"l2_tlb": {"entries": 64, "assoc": 8, "latency": 8}}
        )
        assert cfg.l2_tlb.entries == 64

    def test_rejects_unknown_profile_and_fields(self):
        with pytest.raises(ProtocolError):
            config_from_wire("turbo")
        with pytest.raises(ProtocolError):
            config_from_wire({"tlb_size": 64})

    def test_rejects_invalid_predictor_coupling(self):
        # cbPred without dpPred fails SystemConfig.validate -> 400 path.
        with pytest.raises(ProtocolError):
            config_from_wire({"llc_predictor": "cbpred"})

    def test_parse_run_body(self):
        request, spec, stream = parse_run_body(
            {"workload": "mcf", "budget": 5000, "seed": 7}
        )
        assert request == RunRequest("mcf", fast_config(), 5000, 7)
        assert spec is None and stream is False

    def test_parse_run_body_rejects_unknown_workload(self):
        with pytest.raises(ProtocolError):
            parse_run_body({"workload": "nonesuch"})

    def test_stream_implies_telemetry(self):
        _, spec, stream = parse_run_body(
            {"workload": "mcf", "stream": True}
        )
        assert stream is True and spec is not None and spec.timeline

    def test_parse_matrix_body(self):
        requests, jobs = parse_matrix_body(
            {"cells": [{"workload": "mcf"}, {"workload": "lbm"}], "jobs": 2}
        )
        assert [r.workload for r in requests] == ["mcf", "lbm"]
        assert jobs == 2
        with pytest.raises(ProtocolError):
            parse_matrix_body({"cells": []})

    def test_observed_key_never_matches_plain_key(self):
        request, spec, _ = parse_run_body(
            {"workload": "mcf", "telemetry": True}
        )
        assert run_key(request) != run_key(request, spec)
        assert run_key(request) == diskcache.result_key(
            "mcf", request.config, request.budget, request.seed
        )


# --------------------------------------------------------------------- #
# Keyed in-flight registry
# --------------------------------------------------------------------- #
class TestKeyedInflight:
    def test_leader_then_followers_share_one_future(self):
        registry = KeyedInflight()
        lead, f1 = registry.lead_or_follow("k")
        follow, f2 = registry.lead_or_follow("k")
        assert lead is True and follow is False and f1 is f2
        registry.resolve("k", 41)
        assert f2.result(timeout=1) == 41
        assert registry.snapshot() == {
            "inflight": 0, "led": 1, "coalesced": 1,
        }

    def test_resolved_key_leads_fresh_computation(self):
        registry = KeyedInflight()
        registry.lead_or_follow("k")
        registry.resolve("k", 1)
        lead, _ = registry.lead_or_follow("k")
        assert lead is True

    def test_fail_propagates_to_followers(self):
        registry = KeyedInflight()
        _, future = registry.lead_or_follow("k")
        registry.fail("k", RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            future.result(timeout=1)

    def test_abandon_is_noop_after_resolve(self):
        registry = KeyedInflight()
        _, future = registry.lead_or_follow("k")
        registry.resolve("k", 7)
        registry.abandon("k")
        assert future.result(timeout=1) == 7

    def test_run_matrix_follows_external_leader(self):
        """A matrix cell already being computed elsewhere (another thread,
        a server request) is awaited, not re-simulated."""
        registry = global_inflight()
        request = RunRequest("mcf", fast_config(), BUDGET, 42)
        key = diskcache.result_key("mcf", request.config, BUDGET, 42)
        lead, _ = registry.lead_or_follow(key)
        assert lead is True
        sentinel = SimResult(
            workload="mcf", config_name="fast",
            instructions=1, cycles=2.0,
        )
        out = {}
        thread = threading.Thread(
            target=lambda: out.update(run_matrix([request], jobs=1))
        )
        thread.start()
        time.sleep(0.1)  # let the matrix register as a follower
        registry.resolve(key, sentinel)
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert out[request].to_dict() == sentinel.to_dict()


# --------------------------------------------------------------------- #
# Warm pool
# --------------------------------------------------------------------- #
class TestWarmPool:
    def test_matrix_reuses_borrowed_pool_workers(self):
        configs = [fast_config(), fast_config(tlb_predictor="dppred")]
        pool = WarmPool(max_workers=2)
        try:
            first = [RunRequest("mcf", c, BUDGET) for c in configs]
            second = [RunRequest("lbm", c, BUDGET) for c in configs]
            run_matrix(first, jobs=2, pool=pool)
            assert pool.warm  # workers survived the matrix
            executor = pool.executor()
            run_matrix(second, jobs=2, pool=pool)
            assert pool.executor() is executor  # same warm workers
            for req in first + second:
                served = runner.run_cached(
                    req.workload, req.config, req.budget, req.seed
                )
                ref = reference_result(req.workload, req.config)
                assert served.to_wire() == ref.to_wire()
        finally:
            pool.close()

    def test_shared_pool_identity_and_settings_rebuild(self, tmp_path):
        close_shared_pool()
        try:
            pool = shared_warm_pool(1)
            assert shared_warm_pool(1) is pool
            pool.executor()  # bind current (disabled-cache) settings
            diskcache.enable(tmp_path / "cache")
            try:
                rebuilt = shared_warm_pool(1)
                assert rebuilt is not pool and pool.closed
            finally:
                diskcache.disable()
        finally:
            close_shared_pool()

    def test_closed_shared_pool_is_replaced(self):
        close_shared_pool()
        try:
            pool = shared_warm_pool(1)
            pool.close()
            assert shared_warm_pool(1) is not pool
        finally:
            close_shared_pool()

    def test_release_keeps_workers_warm(self):
        pool = WarmPool(max_workers=1)
        try:
            pool.acquire()
            pool.executor()
            pool.release()
            assert pool.warm and not pool.closed
            pool.acquire()
            pool.release(close_idle=True)
            assert pool.closed
        finally:
            pool.close()


# --------------------------------------------------------------------- #
# Concurrent-safe cache publication
# --------------------------------------------------------------------- #
class TestEntryLock:
    def test_concurrent_stores_publish_one_valid_envelope(self, tmp_path):
        diskcache.enable(tmp_path / "cache")
        try:
            config = fast_config()
            result = reference_result("mcf", config)
            with ThreadPoolExecutor(8) as pool:
                list(pool.map(
                    lambda _: diskcache.store_result(
                        "mcf", config, BUDGET, 42, result
                    ),
                    range(16),
                ))
            loaded = diskcache.load_result("mcf", config, BUDGET, 42)
            assert loaded is not None
            assert loaded.to_wire() == result.to_wire()
            # No torn envelope was quarantined along the way.
            assert not any(diskcache.quarantine_dir().glob("*"))
        finally:
            diskcache.disable()

    def test_store_skips_republish_when_entry_exists(self, tmp_path):
        diskcache.enable(tmp_path / "cache")
        try:
            config = fast_config()
            result = reference_result("mcf", config)
            diskcache.store_result("mcf", config, BUDGET, 42, result)
            key = diskcache.result_key("mcf", config, BUDGET, 42)
            path = tmp_path / "cache" / "results" / f"{key}.json"
            before = path.stat().st_mtime_ns
            diskcache.store_result("mcf", config, BUDGET, 42, result)
            assert path.stat().st_mtime_ns == before
        finally:
            diskcache.disable()


# --------------------------------------------------------------------- #
# The server
# --------------------------------------------------------------------- #
@pytest.fixture
def server(tmp_path):
    """A background server (in-thread execution) over a fresh cache."""
    diskcache.enable(tmp_path / "cache")
    clear_run_cache()
    clear_trace_cache()
    reset_global_inflight()
    handle = start_background(workers=0)
    client = ServeClient(port=handle.port)
    try:
        yield handle, client
    finally:
        handle.stop()
        diskcache.disable()
        clear_run_cache()
        reset_global_inflight()


SUITE_CONFIGS = [
    {"tlb_predictor": "dppred"},
    {"tlb_predictor": "dppred", "llc_predictor": "cbpred"},
]


class TestServer:
    def test_healthz_and_status(self, server):
        _, client = server
        assert client.healthz() is True
        status = client.status()
        assert status["ok"] and not status["draining"]
        assert status["cache"]["enabled"] is True
        assert status["pool"]["mode"] == "in-thread"

    @pytest.mark.parametrize("config", SUITE_CONFIGS)
    @pytest.mark.parametrize("telemetry", [False, True])
    def test_served_result_is_byte_identical_to_cli(
        self, server, config, telemetry
    ):
        _, client = server
        body = json.loads(client.run_bytes(
            "mcf", config, budget=BUDGET,
            telemetry=True if telemetry else None,
        ).decode())
        ref = reference_result("mcf", fast_config(**config))
        assert wire_bytes(body["result"]) == ref.to_wire()
        prov = body["provenance"]
        assert prov["schema"] == diskcache.CACHE_SCHEMA_VERSION
        assert prov["cached"] is False

    def test_second_request_is_a_cache_hit(self, server):
        _, client = server
        first = client.run("mcf", budget=BUDGET)
        second = client.run("mcf", budget=BUDGET)
        assert first["provenance"]["cached"] is False
        assert second["provenance"]["cached"] is True
        assert second["result"] == first["result"]
        counters = client.status()["counters"]
        assert counters["computed"] == 1 and counters["hits"] == 1

    def test_duplicate_concurrent_requests_run_one_simulation(
        self, server, monkeypatch
    ):
        _, client = server
        sim_calls = []
        real = runner.run_trace

        def slow_run_trace(*args, **kwargs):
            sim_calls.append(1)
            time.sleep(0.3)  # hold the key so duplicates overlap
            return real(*args, **kwargs)

        monkeypatch.setattr(runner, "run_trace", slow_run_trace)
        n = 6
        barrier = threading.Barrier(n)

        def fire():
            barrier.wait()
            return client.run_bytes(
                "mcf", {"tlb_predictor": "dppred"}, budget=BUDGET
            )

        with ThreadPoolExecutor(n) as pool:
            raws = list(pool.map(lambda _: fire(), range(n)))

        assert len(sim_calls) == 1
        results = {
            wire_bytes(json.loads(r.decode())["result"]) for r in raws
        }
        assert len(results) == 1
        counters = client.status()["counters"]
        assert counters["computed"] == 1
        # Everyone else either coalesced onto the leader or arrived after
        # it resolved and hit the cache.
        assert counters["coalesced"] + counters["hits"] == n - 1

    def test_result_endpoint_read_through(self, server):
        _, client = server
        body = client.run("mcf", budget=BUDGET)
        key = body["provenance"]["key"]
        stored = client.result_bytes(key)
        assert stored == wire_bytes(body["result"])
        assert client.result_bytes("0" * 64) is None

    def test_stream_run_ndjson_order_and_identity(self, server):
        _, client = server
        rows = list(client.stream_run(
            "mcf", {"tlb_predictor": "dppred"}, budget=BUDGET,
            telemetry={"interval": 500, "events": False},
        ))
        kinds = [row["kind"] for row in rows]
        assert kinds[0] == "provenance" and kinds[-1] == "result"
        intervals = [row for row in rows if row["kind"] == "interval"]
        assert len(intervals) == len(rows) - 2 and intervals
        assert [row["mark"] for row in intervals] == sorted(
            row["mark"] for row in intervals
        )
        ref = reference_result("mcf", fast_config(tlb_predictor="dppred"))
        assert wire_bytes(rows[-1]["result"]) == ref.to_wire()
        assert client.status()["counters"]["streams"] == 1

    def test_matrix_endpoint_orders_cells_and_flags_cached(self, server):
        _, client = server
        client.run("mcf", budget=BUDGET)  # pre-warm one cell
        body = client.matrix([
            {"workload": "mcf", "budget": BUDGET},
            {"workload": "mcf", "config": {"tlb_predictor": "dppred"},
             "budget": BUDGET},
        ])
        assert body["provenance"]["cells"] == 2
        cached = [cell["cached"] for cell in body["results"]]
        assert cached == [True, False]
        for cell, config in zip(
            body["results"], [{}, {"tlb_predictor": "dppred"}]
        ):
            ref = reference_result("mcf", fast_config(**config))
            assert wire_bytes(cell["result"]) == ref.to_wire()

    def test_bad_requests_get_400(self, server):
        _, client = server
        with pytest.raises(ServeError) as err:
            client.run("nonesuch", budget=BUDGET)
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.matrix([])
        assert err.value.status == 400
        status, _ = client._request("GET", "/nowhere")
        assert status == 404

    def test_graceful_stop_drains_inflight_request(
        self, server, monkeypatch
    ):
        handle, client = server
        release = threading.Event()
        real = runner.run_trace

        def gated_run_trace(*args, **kwargs):
            release.wait(timeout=10)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner, "run_trace", gated_run_trace)
        out = {}

        def fire():
            out["body"] = client.run("mcf", budget=BUDGET)

        thread = threading.Thread(target=fire)
        thread.start()
        deadline = time.monotonic() + 5
        while not client.status()["inflight"]["inflight"]:
            assert time.monotonic() < deadline, "request never started"
            time.sleep(0.01)
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        time.sleep(0.1)
        release.set()
        stopper.join(timeout=15)
        thread.join(timeout=15)
        assert not stopper.is_alive() and not thread.is_alive()
        # The in-flight request completed despite the shutdown...
        ref = reference_result("mcf", fast_config())
        assert wire_bytes(out["body"]["result"]) == ref.to_wire()
        # ...and the server no longer accepts connections.
        assert client.healthz() is False

    def test_warm_cache_hit_is_fast_and_poolless(self, server):
        _, client = server
        client.run("mcf", budget=BUDGET)
        start = time.perf_counter()
        body = client.run("mcf", budget=BUDGET)
        elapsed = time.perf_counter() - start
        assert body["provenance"]["cached"] is True
        # The CI smoke gate is < 50 ms; under pytest parallel load be
        # lenient but still catch "hit accidentally re-simulates".
        assert elapsed < 0.5
        assert client.status()["counters"]["computed"] == 1
