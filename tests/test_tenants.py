"""Multi-tenant scenario layer: scheduler, shootdowns, machine plumbing.

Covers the tenancy tentpole end to end: deterministic ASID-tagged mix
traces whose components are byte-identical to their standalone runs, the
machine's context-switch/shootdown path (including the PWC-staleness
regression), per-tenant page-table isolation, and byte-identical results
through ``run_matrix`` and the serve path.
"""

import json

import numpy as np
import pytest

import repro.sim.diskcache as diskcache
from repro.serve import ServeClient, start_background
from repro.sim.config import fast_config, hugepage_config, mix2_config, mix4_config
from repro.sim.inflight import reset_global_inflight
from repro.sim.machine import Machine
from repro.sim.parallel import RunRequest, run_matrix
from repro.sim.results import wire_bytes
from repro.sim.runner import clear_run_cache, machine_seed_for, run_trace
from repro.vm.pwc import PageWalkCaches
from repro.vm.tlb import Tlb
from repro.workloads.suite import clear_trace_cache, get_trace
from repro.workloads.tenants import (
    MIX_COMPONENTS,
    TenantScheduler,
    build_mix_trace,
)

BUDGET = 4000
SEED = 42


# --------------------------------------------------------------------- #
# Scheduler and mix-trace construction
# --------------------------------------------------------------------- #
class TestScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantScheduler(quantum=0)
        with pytest.raises(ValueError):
            TenantScheduler(jitter=1.0)
        with pytest.raises(ValueError):
            TenantScheduler().schedule("empty", [])
        with pytest.raises(ValueError):
            build_mix_trace("mix9", BUDGET)

    def test_mix_trace_is_deterministic(self):
        a = build_mix_trace("mix2", BUDGET, SEED)
        b = build_mix_trace("mix2", BUDGET, SEED)
        for field in ("pcs", "vaddrs", "writes", "gaps", "asids"):
            np.testing.assert_array_equal(
                getattr(a, field), getattr(b, field)
            )
        c = build_mix_trace("mix2", BUDGET, SEED + 1)
        assert not np.array_equal(a.asids, c.asids) or not np.array_equal(
            a.vaddrs, c.vaddrs
        )

    @pytest.mark.parametrize("mix", sorted(MIX_COMPONENTS))
    def test_components_match_standalone_traces(self, mix):
        """Per-ASID sub-streams are exactly the standalone component
        traces — record order preserved — so mix-vs-solo comparisons
        measure consolidation, not trace drift."""
        names = MIX_COMPONENTS[mix]
        trace = build_mix_trace(mix, BUDGET, SEED)
        per_tenant = BUDGET // len(names)
        for asid, comp in enumerate(names, start=1):
            solo = get_trace(comp, per_tenant, SEED)
            mask = trace.asids == asid
            np.testing.assert_array_equal(trace.vaddrs[mask], solo.vaddrs)
            np.testing.assert_array_equal(trace.pcs[mask], solo.pcs)
            np.testing.assert_array_equal(trace.writes[mask], solo.writes)
            np.testing.assert_array_equal(trace.gaps[mask], solo.gaps)

    def test_interleaving_respects_jittered_quanta(self):
        trace = build_mix_trace("mix2", BUDGET, SEED)
        asids = trace.asids
        boundaries = np.flatnonzero(np.diff(asids)) + 1
        assert len(boundaries) >= 2  # genuinely interleaved
        slices = np.diff(np.concatenate(([0], boundaries, [len(asids)])))
        scheduler = TenantScheduler()
        lo = int(scheduler.quantum * (1 - scheduler.jitter))
        hi = int(scheduler.quantum * (1 + scheduler.jitter))
        # Every slice except per-tenant tails obeys the jitter window.
        assert (slices[:-2] >= lo).all() and (slices[:-2] <= hi).all()

    def test_iter_asids_matches_array(self):
        trace = build_mix_trace("mix2", 2000, SEED)
        assert list(trace.iter_asids(chunk=256)) == trace.asids.tolist()
        plain = get_trace("stream", 500, SEED)
        with pytest.raises(ValueError):
            list(plain.iter_asids())

    def test_truncated_preserves_asids(self):
        trace = build_mix_trace("mix2", 2000, SEED)
        head = trace.truncated(100)
        assert head.asids is not None and len(head.asids) == 100
        np.testing.assert_array_equal(head.asids, trace.asids[:100])


# --------------------------------------------------------------------- #
# Machine plumbing: tenancy counters, shootdowns, isolation
# --------------------------------------------------------------------- #
class TestMachineTenancy:
    def test_mix_run_counts_tenancy(self):
        trace = build_mix_trace("mix2", BUDGET, SEED)
        machine = Machine(mix2_config(), seed=SEED)
        result = machine.run_scalar(trace)
        tenants = result.raw["tenants"]
        assert tenants["tenants_seen"] == 2
        assert tenants["context_switches"] >= 2
        # shootdown_on_switch: one shootdown per switch.
        assert tenants["shootdowns"] == tenants["context_switches"]

    def test_no_shootdown_when_disabled(self):
        trace = build_mix_trace("mix2", BUDGET, SEED)
        machine = Machine(
            mix2_config(shootdown_on_switch=False), seed=SEED
        )
        result = machine.run_scalar(trace)
        tenants = result.raw["tenants"]
        assert tenants["context_switches"] >= 2
        assert "shootdowns" not in tenants

    def test_single_tenant_results_carry_no_tenant_key(self):
        """Byte-stability guard: classic runs must not grow a raw key."""
        trace = get_trace("stream", 1000, SEED)
        result = Machine(fast_config(), seed=SEED).run_scalar(trace)
        assert "tenants" not in result.raw

    def test_tenants_share_frames_but_not_translations(self):
        machine = Machine(mix2_config(), seed=SEED)
        walker = machine.walker
        pfn1, _, _ = walker.walk(0x123, 0, asid=1)
        pfn2, _, _ = walker.walk(0x123, 1, asid=2)
        assert pfn1 != pfn2  # same VPN, disjoint address spaces
        again, _, _ = walker.walk(0x123, 2, asid=1)
        assert again == pfn1  # translations are stable per tenant

    def test_shootdown_asid_spares_other_tenants(self):
        machine = Machine(mix2_config(), seed=SEED)
        machine.access(0x400000, 0x10000000, False, 2, asid=1)
        machine.access(0x400004, 0x10000000, False, 2, asid=2)
        machine.shootdown_asid(1)
        assert machine.l1_dtlb.probe(0x10000, asid=1) is None
        assert machine.l1_dtlb.probe(0x10000, asid=2) is not None
        assert machine.l2_tlb.probe(0x10000, asid=2) is not None

    def test_shootdown_all_empties_every_tlb(self):
        machine = Machine(mix2_config(), seed=SEED)
        machine.access(0x400000, 0x10000000, False, 2, asid=1)
        machine.access(0x400004, 0x20000000, True, 2, asid=2)
        dropped = machine.shootdown_all()
        assert dropped > 0
        assert machine.l1_itlb.occupancy() == 0
        assert machine.l1_dtlb.occupancy() == 0
        assert machine.l2_tlb.occupancy() == 0


# --------------------------------------------------------------------- #
# PWC staleness regression (the shootdown bugfix)
# --------------------------------------------------------------------- #
class TestPwcShootdownConsistency:
    def test_invalidate_flushes_pwc_entries(self):
        """Regression: Tlb.invalidate used to shoot down the TLB entry
        but leave the page-walk caches holding partial translations for
        the same region, so a post-shootdown remap resolved through
        stale paging-structure entries."""
        tlb = Tlb("llt", 16, 4)
        pwc = PageWalkCaches()
        tlb.pwc = pwc
        vpn = 0x40
        tlb.fill(vpn, 0x99, 0, now=0)
        pwc.fill(vpn)
        resolved, _ = pwc.consult(vpn)
        assert resolved == 3
        tlb.invalidate(vpn, now=1)
        resolved, _ = pwc.consult(vpn)
        assert resolved == 0

    def test_invalidate_asid_flushes_only_that_asid(self):
        tlb = Tlb("llt", 16, 4)
        pwc = PageWalkCaches()
        tlb.pwc = pwc
        tlb.fill(0x40, 0x99, 0, now=0, asid=1)
        tlb.fill(0x40, 0xAA, 0, now=0, asid=2)
        pwc.fill(0x40, asid=1)
        pwc.fill(0x40, asid=2)
        tlb.invalidate_asid(1, now=1)
        assert pwc.consult(0x40, asid=1)[0] == 0
        assert pwc.consult(0x40, asid=2)[0] == 3

    def test_invalidate_all_flushes_pwc(self):
        tlb = Tlb("llt", 16, 4)
        pwc = PageWalkCaches()
        tlb.pwc = pwc
        for vpn in (0x40, 0x41, 0x1000):
            tlb.fill(vpn, vpn + 1, 0, now=0)
            pwc.fill(vpn)
        tlb.invalidate_all(now=1)
        for vpn in (0x40, 0x41, 0x1000):
            assert pwc.consult(vpn)[0] == 0

    def test_machine_wires_llt_to_pwc(self):
        machine = Machine(fast_config(), seed=SEED)
        assert machine.l2_tlb.pwc is machine.walker.pwc

    def test_shootdown_then_remap_uses_fresh_translation(self):
        """End to end: walk, shoot down, unmap + rewalk — the second walk
        must re-load the full path (no stale PWC skip) and produce the
        new frame."""
        machine = Machine(fast_config(), seed=SEED)
        vaddr = 0x10000000
        vpn = vaddr >> 12
        machine.access(0x400000, vaddr, False, 2)
        old_pfn = machine.page_table.lookup(vpn)
        assert old_pfn is not None
        assert machine.walker.pwc.consult(vpn)[0] > 0
        machine.shootdown_page(vpn)
        assert machine.walker.pwc.consult(vpn)[0] == 0
        assert machine.l2_tlb.probe(vpn) is None
        machine.page_table.unmap(vpn)
        new_pfn, _, _ = machine.walker.walk(vpn, 10)
        assert new_pfn != old_pfn  # demand-remapped to a fresh frame

    def test_page_filter_reset_on_shootdown(self):
        """The same-page filter holds live TlbEntry references; a
        shootdown must drop them or the next access revives a dead
        translation without a TLB probe."""
        machine = Machine(fast_config(), seed=SEED)
        vaddr = 0x10000000
        machine.access(0x400000, vaddr, False, 2)
        machine.access(0x400000, vaddr + 8, False, 2)  # filter armed
        hits_before = machine.l1_dtlb.stats.get("hits")
        misses_before = machine.l1_dtlb.stats.get("misses")
        machine.shootdown_page(vaddr >> 12)
        machine.access(0x400000, vaddr + 16, False, 2)
        assert machine.l1_dtlb.stats.get("misses") == misses_before + 1
        assert machine.l1_dtlb.stats.get("hits") == hits_before


# --------------------------------------------------------------------- #
# End-to-end determinism through run_matrix and serve
# --------------------------------------------------------------------- #
def _scenario_requests():
    return [
        RunRequest("mix2", mix2_config(), BUDGET, SEED),
        RunRequest("mix4", mix4_config(), BUDGET, SEED),
        RunRequest("mcf", hugepage_config(), BUDGET, SEED),
    ]


def test_scenario_matrix_is_deterministic():
    requests = _scenario_requests()
    clear_run_cache()
    first = {
        r: json.dumps(res.to_dict(), sort_keys=True)
        for r, res in run_matrix(requests).items()
    }
    clear_run_cache()
    second = {
        r: json.dumps(res.to_dict(), sort_keys=True)
        for r, res in run_matrix(requests).items()
    }
    assert first == second
    clear_run_cache()


def test_served_mix2_is_byte_identical_to_cli(tmp_path):
    diskcache.enable(tmp_path / "cache")
    clear_run_cache()
    clear_trace_cache()
    reset_global_inflight()
    handle = start_background(workers=0)
    client = ServeClient(port=handle.port)
    try:
        body = client.run("mix2", "mix2", budget=BUDGET)
        ref = run_trace(
            get_trace("mix2", BUDGET, SEED),
            mix2_config(),
            seed=machine_seed_for(SEED),
        )
        assert wire_bytes(body["result"]) == ref.to_wire()
        assert body["result"]["raw"]["tenants"]["tenants_seen"] == 2
    finally:
        handle.stop()
        diskcache.disable()
        clear_run_cache()
        reset_global_inflight()


def test_served_hugepage_profile_round_trips(tmp_path):
    diskcache.enable(tmp_path / "cache")
    clear_run_cache()
    clear_trace_cache()
    reset_global_inflight()
    handle = start_background(workers=0)
    client = ServeClient(port=handle.port)
    try:
        body = client.run("mcf", "hugepage", budget=BUDGET)
        ref = run_trace(
            get_trace("mcf", BUDGET, SEED),
            hugepage_config(),
            seed=machine_seed_for(SEED),
        )
        assert wire_bytes(body["result"]) == ref.to_wire()
    finally:
        handle.stop()
        diskcache.disable()
        clear_run_cache()
        reset_global_inflight()
