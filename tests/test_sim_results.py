"""Tests for :class:`repro.sim.results.SimResult`: derived metrics,
merging, and serialisation stability."""

import json

import pytest

from repro.common.residency import ResidencySummary
from repro.sim.results import SimResult


def _result(**kwargs) -> SimResult:
    base = dict(workload="mcf", config_name="baseline")
    base.update(kwargs)
    return SimResult(**base)


class TestDerivedMetrics:
    def test_empty_result_has_no_division_errors(self):
        empty = _result()
        assert empty.ipc == 0.0
        assert empty.llt_mpki == 0.0
        assert empty.llc_mpki == 0.0
        assert empty.avg_walk_latency == 0.0
        assert empty.doa_block_on_doa_page_fraction == 0.0
        assert empty.speedup_over(empty) == 0.0

    def test_metrics_view_matches_properties(self):
        r = _result(
            instructions=1000,
            cycles=2000.0,
            llt_misses=10,
            llc_misses=20,
            walk_cycles=300,
            walks=10,
            tlb_accuracy=0.9,
        )
        m = r.metrics()
        assert m["ipc"] == r.ipc == 0.5
        assert m["llt_mpki"] == r.llt_mpki == 10.0
        assert m["llc_mpki"] == r.llc_mpki == 20.0
        assert m["avg_walk_latency"] == 30.0
        assert m["tlb_accuracy"] == 0.9
        assert m["llc_accuracy"] is None  # untracked stays None, not 0


class TestMerge:
    def test_counts_and_cycles_add(self):
        a = _result(instructions=100, cycles=200.0, llt_misses=3, walks=1)
        b = _result(instructions=300, cycles=400.0, llt_misses=5, walks=2)
        m = a.merge(b)
        assert m.instructions == 400
        assert m.cycles == 600.0
        assert m.llt_misses == 8
        assert m.walks == 3
        assert m.workload == "mcf"

    def test_labels_join_when_different(self):
        m = _result(workload="mcf").merge(_result(workload="bfs"))
        assert m.workload == "mcf+bfs"

    def test_ratios_weighted_by_instructions(self):
        a = _result(instructions=100, tlb_accuracy=1.0)
        b = _result(instructions=300, tlb_accuracy=0.0)
        assert a.merge(b).tlb_accuracy == pytest.approx(0.25)

    def test_ratio_none_on_one_side_keeps_other(self):
        a = _result(instructions=100, tlb_accuracy=0.8)
        b = _result(instructions=300)
        assert a.merge(b).tlb_accuracy == 0.8
        assert a.merge(b).llc_accuracy is None

    def test_zero_instruction_merge_falls_back_to_unweighted_mean(self):
        # Two empty intervals carry no instruction weights; the merged
        # ratio must be their plain mean, not a fabricated 0.0.
        a = _result(tlb_accuracy=0.5)
        b = _result(tlb_accuracy=0.7)
        assert a.merge(b).tlb_accuracy == pytest.approx(0.6)

    def test_zero_instruction_merge_none_side_survives(self):
        a = _result(tlb_accuracy=0.5)
        b = _result()
        assert a.merge(b).tlb_accuracy == 0.5
        assert b.merge(b).tlb_accuracy is None

    def test_residency_adds_fieldwise(self):
        a = _result(
            llt_residency=ResidencySummary(
                residencies=2, total_time=10.0, dead_time=4.0
            )
        )
        b = _result(
            llt_residency=ResidencySummary(
                residencies=3, total_time=20.0, dead_time=6.0
            )
        )
        merged = a.merge(b).llt_residency
        assert merged.residencies == 5
        assert merged.total_time == 30.0
        assert merged.dead_time == 10.0

    def test_residency_none_on_one_side_keeps_other(self):
        a = _result(llt_residency=ResidencySummary(residencies=1))
        b = _result()
        assert a.merge(b).llt_residency == a.llt_residency
        assert b.merge(a).llt_residency == a.llt_residency
        assert a.merge(b).llc_residency is None

    def test_residency_kept_side_is_copied_not_aliased(self):
        a = _result(llt_residency=ResidencySummary(residencies=1))
        b = _result()
        merged = a.merge(b)
        assert merged.llt_residency is not a.llt_residency
        merged.llt_residency.residencies = 99
        assert a.llt_residency.residencies == 1

    def test_raw_counters_union_sum(self):
        a = _result(raw={"llt": {"hits": 1, "misses": 2}})
        b = _result(raw={"llt": {"hits": 10}, "llc": {"misses": 4}})
        merged = a.merge(b).raw
        assert merged == {
            "llt": {"hits": 11, "misses": 2},
            "llc": {"misses": 4},
        }

    def test_merge_does_not_mutate_inputs(self):
        a = _result(raw={"llt": {"hits": 1}})
        b = _result(raw={"llt": {"hits": 2}})
        a.merge(b)
        assert a.raw == {"llt": {"hits": 1}}
        assert b.raw == {"llt": {"hits": 2}}


class TestSerialisation:
    def test_round_trip(self):
        r = _result(
            instructions=10,
            cycles=20.0,
            tlb_accuracy=0.5,
            raw={"llt": {"hits": 1}},
        )
        assert SimResult.from_dict(r.to_dict()) == r

    def test_raw_insertion_order_does_not_change_bytes(self):
        a = _result(raw={"llt": {"b": 2, "a": 1}, "llc": {"x": 3}})
        b = _result(raw={"llc": {"x": 3}, "llt": {"a": 1, "b": 2}})
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())

    def test_from_dict_rejects_unknown_fields(self):
        data = _result().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError):
            SimResult.from_dict(data)
