"""Differential tests: the batched engine is bit-identical to scalar.

The batched engine (:mod:`repro.sim.engine`) retires guaranteed L1-hit
prefixes array-at-a-time. Its contract is byte equality with the scalar
reference loop — same ``SimResult.to_dict()``, same telemetry payloads
(timeline marks/deltas and decision-event streams), same disk-cache
bytes — on every workload kernel and on adversarial random traces. These
tests are the contract's enforcement.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.engine as engine_mod
from repro.obs.telemetry import TelemetrySpec
from repro.sim.config import fast_config
from repro.sim.engine import (
    ENGINE_BATCHED,
    ENGINE_SCALAR,
    resolve_engine,
    set_default_engine,
)
from repro.sim.machine import Machine
from repro.workloads.suite import (
    EXTRA_WORKLOAD_CLASSES,
    get_trace,
    workload_names,
)
from repro.workloads.trace import Trace

BUDGET = 6000
SEED = 42


def fingerprint(result) -> bytes:
    return json.dumps(result.to_dict(), sort_keys=True).encode()


def run_both(trace, config, telemetry=False, seed=SEED):
    """Run one trace under both engines; returns the two (result, machine)
    pairs. Telemetry uses a small interval so bulk spans straddle many
    sampling boundaries."""
    out = []
    for engine in (ENGINE_SCALAR, ENGINE_BATCHED):
        tel = (
            TelemetrySpec(interval=500).build() if telemetry else None
        )
        machine = Machine(config, seed=seed, telemetry=tel)
        result = machine.run(trace, engine=engine)
        out.append((result, machine))
    return out


def assert_equivalent(trace, config, telemetry=False, seed=SEED):
    (r_s, m_s), (r_b, m_b) = run_both(trace, config, telemetry, seed)
    assert fingerprint(r_s) == fingerprint(r_b)
    if telemetry:
        assert m_s.telemetry.to_payload() == m_b.telemetry.to_payload()
    return m_b


# --------------------------------------------------------------------- #
# Every workload kernel
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", workload_names())
def test_suite_workloads_bit_identical(workload):
    trace = get_trace(workload, BUDGET, SEED)
    assert_equivalent(trace, fast_config(), telemetry=True)


@pytest.mark.parametrize("workload", sorted(EXTRA_WORKLOAD_CLASSES))
def test_extra_workloads_bit_identical(workload):
    trace = get_trace(workload, BUDGET, SEED)
    assert_equivalent(trace, fast_config(), telemetry=True)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"tlb_predictor": "dppred"},
        {"tlb_predictor": "dppred", "llc_predictor": "cbpred"},
        {"tlb_predictor": "ship", "llc_predictor": "ship"},
        {"track_residency": True},
        {"track_reference": True},
    ],
    ids=["dppred", "dppred+cbpred", "ship", "residency", "reference"],
)
def test_predictor_configs_bit_identical(kwargs):
    """Predictors/instrumentation live beyond the L1s; the bulk path must
    leave their slow-path event streams untouched."""
    for workload in ("sssp", "locality"):
        trace = get_trace(workload, BUDGET, SEED)
        assert_equivalent(trace, fast_config(**kwargs), telemetry=True)


def test_locality_workload_exercises_bulk_path():
    """The showcase workload must actually take the vectorized path —
    otherwise every equivalence test above is vacuous."""
    trace = get_trace("locality", BUDGET, SEED)
    machine = assert_equivalent(trace, fast_config(), telemetry=True)
    stats = machine.engine_stats
    assert stats["engine"] == ENGINE_BATCHED
    assert stats["bulk_records"] > stats["scalar_records"]


# --------------------------------------------------------------------- #
# Hypothesis traces
# --------------------------------------------------------------------- #
RECORDS = st.lists(
    st.tuples(
        st.integers(0, 7),        # pc site
        st.integers(0, 40),       # page
        st.integers(0, 70),       # byte offset within page (block varies)
        st.booleans(),            # write
        st.integers(0, 5),        # gap
    ),
    min_size=1,
    max_size=400,
)


def build_trace(records) -> Trace:
    pcs = np.array([0x400000 + s * 4 for s, _, _, _, _ in records], np.uint64)
    vaddrs = np.array(
        [0x10000000 + p * 4096 + o * 64 for _, p, o, _, _ in records],
        np.uint64,
    )
    writes = np.array([w for _, _, _, w, _ in records], bool)
    gaps = np.array([g for _, _, _, _, g in records], np.uint16)
    return Trace("hypothesis", pcs, vaddrs, writes, gaps)


@settings(max_examples=40, deadline=None)
@given(records=RECORDS)
def test_random_traces_bit_identical(records):
    assert_equivalent(build_trace(records), fast_config(), telemetry=True)


@settings(max_examples=15, deadline=None)
@given(records=RECORDS, run_length=st.integers(2, 64))
def test_repeated_traces_bit_identical(records, run_length):
    """Tiling the stream manufactures long all-hit stretches, driving the
    window-doubling and boundary-splitting paths."""
    trace = build_trace(records * run_length)
    assert_equivalent(trace, fast_config(), telemetry=True)


@settings(max_examples=15, deadline=None)
@given(records=RECORDS)
def test_random_traces_with_predictors(records):
    config = fast_config(tlb_predictor="dppred", llc_predictor="cbpred")
    assert_equivalent(build_trace(records), config, telemetry=True)


# --------------------------------------------------------------------- #
# Fallback + selection
# --------------------------------------------------------------------- #
def test_srrip_policy_runs_flat():
    """SRRIP has no fused-LRU bulk path (and no same-page filter), so the
    batched engine runs the flat interpreter for the whole trace."""
    trace = get_trace("locality", BUDGET, SEED)
    config = fast_config(tlb_policy="srrip", cache_policy="srrip")
    machine = assert_equivalent(trace, config, telemetry=True)
    stats = machine.engine_stats
    assert stats["engine"] == ENGINE_BATCHED
    assert stats["mode"] == "flat"
    assert stats["flat_records"] == len(trace)
    assert "fallback" not in stats


def test_predictor_configs_run_batched_without_fallback():
    """The headline configs — dpPred alone and dpPred+cbPred — must take
    the batched engine's hybrid (bulk + flat) path, not scalar."""
    trace = get_trace("sssp", BUDGET, SEED)
    for kwargs in (
        {"tlb_predictor": "dppred"},
        {"tlb_predictor": "dppred", "llc_predictor": "cbpred"},
    ):
        machine = assert_equivalent(trace, fast_config(**kwargs), telemetry=True)
        stats = machine.engine_stats
        assert stats["engine"] == ENGINE_BATCHED
        assert "fallback" not in stats
        assert stats["flat_records"] > 0
        assert (
            stats["bulk_records"] + stats["flat_records"]
            + stats["scalar_records"] == len(trace)
        )


def test_fifo_policy_falls_back_with_reason():
    """FIFO replacement has neither a bulk nor a flat model; the engine
    must fall back to scalar and say why."""
    trace = get_trace("locality", BUDGET, SEED)
    config = fast_config(tlb_policy="fifo")
    machine = assert_equivalent(trace, config)
    stats = machine.engine_stats
    assert stats["engine"] == ENGINE_SCALAR
    assert stats["fallback"]
    assert stats["fallback_reasons"] == {"policy": 1}


def test_engine_totals_accumulate_fallback_reasons():
    engine_mod.reset_engine_totals()
    trace = get_trace("locality", 500, SEED)
    Machine(fast_config(tlb_policy="fifo"), seed=SEED).run(
        trace, engine=ENGINE_BATCHED
    )
    Machine(fast_config(), seed=SEED).run(trace, engine=ENGINE_BATCHED)
    totals = engine_mod.engine_totals()
    assert totals["runs"] == 2
    assert totals["batched"] == 1
    assert totals["fallbacks"] == 1
    assert totals["fallback_reasons"] == {"policy": 1}
    assert totals["bulk_records"] + totals["flat_records"] + totals[
        "scalar_records"
    ] == len(trace)
    engine_mod.reset_engine_totals()


# --------------------------------------------------------------------- #
# Multi-tenant / huge-page dispatch: batched hybrid, never scalar fallback
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("mix,profile", [("mix2", "mix2"), ("mix4", "mix4")])
def test_mix_configs_run_batched_and_bit_identical(mix, profile):
    """ASID-carrying traces run the bulk + scalar hybrid — the bulk tier
    probes combined (asid, vpn) keys and the prefix truncates at context
    switches — byte-identical to the scalar tenant loop, decision-event
    rings included. The flat decline (reason "tenant") is counted, and
    there is *no* scalar fallback."""
    from repro.sim.config import mix2_config, mix4_config
    from repro.workloads.tenants import build_mix_trace

    factory = {"mix2": mix2_config, "mix4": mix4_config}[profile]
    trace = build_mix_trace(mix, BUDGET, SEED)
    config = factory(tlb_predictor="dppred", llc_predictor="cbpred")
    (r_s, m_s), (r_b, m_b) = run_both(trace, config, telemetry=True)
    assert fingerprint(r_s) == fingerprint(r_b)
    assert m_s.telemetry.to_payload() == m_b.telemetry.to_payload()
    ev_s = m_s.telemetry.probe.events()
    ev_b = m_b.telemetry.probe.events()
    assert json.dumps(ev_s).encode() == json.dumps(ev_b).encode()
    counts = m_b.telemetry.probe.counts()
    assert counts.get("ctx_switch", 0) > 0
    assert counts.get("shootdown", 0) > 0
    stats = m_b.engine_stats
    assert stats["engine"] == ENGINE_BATCHED
    assert "fallback" not in stats
    assert stats["flat_reason"] == "tenant"
    assert stats["bulk_records"] > 0
    assert (
        stats["bulk_records"] + stats["flat_records"]
        + stats["scalar_records"] == len(trace)
    )


def test_hugepage_config_runs_batched_and_bit_identical():
    """Huge-mapped tables keep the bulk tier sound (only the LLT holds
    2 MB entries; the L1 TLBs get splintered 4 KB granules), so hugepage
    configs run the hybrid with a counted flat decline, byte-identical
    to scalar."""
    from repro.sim.config import hugepage_config

    config = hugepage_config(tlb_predictor="dppred")
    for workload in ("mcf", "locality"):
        trace = get_trace(workload, BUDGET, SEED)
        machine = assert_equivalent(trace, config, telemetry=True)
        stats = machine.engine_stats
        assert stats["engine"] == ENGINE_BATCHED
        assert "fallback" not in stats
        assert stats["flat_reason"] == "hugepage"
    # locality has real reuse, so the bulk tier must actually engage on
    # the huge-mapped machine — otherwise the hybrid claim is vacuous.
    assert stats["bulk_records"] > 0


def test_tenant_and_hugepage_declines_counted_in_engine_totals():
    """Regression: tenant/hugepage runs must be *visible* in the process-
    wide dispatch accounting as flat declines — and contribute zero
    scalar fallbacks."""
    from repro.sim.config import hugepage_config, mix2_config
    from repro.workloads.tenants import build_mix_trace

    engine_mod.reset_engine_totals()
    trace = build_mix_trace("mix2", 2000, SEED)
    Machine(mix2_config(), seed=SEED).run(trace, engine=ENGINE_BATCHED)
    flat = get_trace("locality", 500, SEED)
    Machine(hugepage_config(), seed=SEED).run(flat, engine=ENGINE_BATCHED)
    totals = engine_mod.engine_totals()
    assert totals["runs"] == 2
    assert totals["batched"] == 2
    assert totals["fallbacks"] == 0
    assert totals["fallback_reasons"] == {}
    assert totals["flat_declines"] == {"tenant": 1, "hugepage": 1}
    engine_mod.reset_engine_totals()


def test_num_tenants_config_runs_batched_without_asids():
    """A multi-tenant *config* on a plain (asid-free) trace is ordinary
    single-tenant execution — the hybrid (including the flat tier) runs
    it with no decline and no fallback."""
    trace = get_trace("locality", 500, SEED)
    from repro.sim.config import mix2_config

    machine = assert_equivalent(trace, mix2_config(), telemetry=True)
    stats = machine.engine_stats
    assert stats["engine"] == ENGINE_BATCHED
    assert "fallback" not in stats
    assert "flat_reason" not in stats


def test_mix_trace_roundtrips_through_npz(tmp_path):
    """The asids array must survive disk-cache serialisation."""
    from repro.workloads.tenants import build_mix_trace

    trace = build_mix_trace("mix2", 2000, SEED)
    path = tmp_path / "mix2.npz"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.asids is not None
    np.testing.assert_array_equal(loaded.asids, trace.asids)
    np.testing.assert_array_equal(loaded.vaddrs, trace.vaddrs)


# --------------------------------------------------------------------- #
# Decision-event rings (batched-mode obs telemetry)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", ["sssp", "mcf"])
def test_decision_event_rings_byte_identical(workload):
    """The predictors' decision-event ring buffers — LLT bypass/demote,
    shadow promote/hit/evict, PFQ push/hit, DP-mark, verdicts, walks —
    must be byte-identical between the batched and scalar engines."""
    trace = get_trace(workload, BUDGET, SEED)
    config = fast_config(tlb_predictor="dppred", llc_predictor="cbpred")
    (r_s, m_s), (r_b, m_b) = run_both(trace, config, telemetry=True)
    assert fingerprint(r_s) == fingerprint(r_b)
    ev_s = m_s.telemetry.probe.events()
    ev_b = m_b.telemetry.probe.events()
    assert json.dumps(ev_s).encode() == json.dumps(ev_b).encode()
    counts = m_b.telemetry.probe.counts()
    # The suite workloads must actually exercise the decision streams —
    # otherwise byte-equality above is vacuous.
    assert counts.get("walk", 0) > 0
    assert sum(
        counts.get(kind, 0)
        for kind in (
            "llt_bypass", "llt_demote", "shadow_promote", "shadow_hit",
            "shadow_evict", "pfq_push", "pfq_hit", "llc_bypass",
            "llc_mark_dp", "llt_verdict", "llc_verdict",
        )
    ) > 0
    assert m_s.telemetry.probe.emitted == m_b.telemetry.probe.emitted


def test_unexpected_trace_dtype_falls_back():
    trace = get_trace("locality", BUDGET, SEED)
    odd = Trace(
        trace.name,
        trace.pcs.astype(np.int64),
        trace.vaddrs.astype(np.int64),
        trace.writes,
        trace.gaps,
    )
    machine = Machine(fast_config(), seed=SEED)
    result = machine.run(odd, engine=ENGINE_BATCHED)
    assert machine.engine_stats["fallback"]
    reference = Machine(fast_config(), seed=SEED).run_scalar(trace)
    assert fingerprint(result) == fingerprint(reference)


def test_scalar_engine_records_engine_stats():
    trace = get_trace("locality", 500, SEED)
    machine = Machine(fast_config(), seed=SEED)
    machine.run(trace, engine=ENGINE_SCALAR)
    assert machine.engine_stats == {"engine": ENGINE_SCALAR}


def test_resolve_engine_precedence(monkeypatch):
    assert resolve_engine() == ENGINE_BATCHED  # default
    monkeypatch.setenv("REPRO_ENGINE", ENGINE_SCALAR)
    assert resolve_engine() == ENGINE_SCALAR  # env beats default
    set_default_engine(ENGINE_BATCHED)
    assert resolve_engine() == ENGINE_BATCHED  # CLI beats env
    assert resolve_engine(ENGINE_SCALAR) == ENGINE_SCALAR  # arg beats all


def test_resolve_engine_validation(monkeypatch):
    with pytest.raises(ValueError):
        resolve_engine("turbo")
    with pytest.raises(ValueError):
        set_default_engine("turbo")
    monkeypatch.setenv("REPRO_ENGINE", "turbo")
    with pytest.raises(ValueError):
        resolve_engine()


def test_run_honours_env_engine(monkeypatch):
    trace = get_trace("locality", BUDGET, SEED)
    monkeypatch.setenv("REPRO_ENGINE", ENGINE_SCALAR)
    machine = Machine(fast_config(), seed=SEED)
    machine.run(trace)
    assert machine.engine_stats == {"engine": ENGINE_SCALAR}


def test_batchable_rejects_listeners_and_residency():
    machine = Machine(fast_config(), seed=SEED)
    assert engine_mod.batchable(machine)
    from repro.mem.cache import CacheListener

    machine.l1d.listener = CacheListener()
    assert not engine_mod.batchable(machine)
