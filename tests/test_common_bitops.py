"""Tests for repro.common.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitops import (
    align_down,
    bits_to_bytes,
    fold_xor,
    is_power_of_two,
    log2_exact,
    mask,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(12) == 0xFFF

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestFoldXor:
    def test_identity_for_small_values(self):
        # A value that fits in the width folds to itself.
        assert fold_xor(0b1011, 6) == 0b1011

    def test_folds_two_blocks(self):
        # 0b1010 and 0b0101 in adjacent 4-bit blocks XOR to 0b1111.
        assert fold_xor(0b1010_0101, 4) == 0b1111

    def test_zero(self):
        assert fold_xor(0, 6) == 0

    def test_respects_input_bits(self):
        # Bits above input_bits are discarded before folding.
        value = (1 << 40) | 0b11
        assert fold_xor(value, 4, input_bits=8) == 0b11

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            fold_xor(5, 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(1, 16))
    def test_result_always_in_range(self, value, width):
        assert 0 <= fold_xor(value, width) < (1 << width)

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(1, 16))
    def test_deterministic(self, value, width):
        assert fold_xor(value, width) == fold_xor(value, width)

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(1, 12))
    def test_xor_homomorphic(self, value, width):
        # fold(a ^ b) == fold(a) ^ fold(b): the defining property of
        # a fold-XOR hash. Checked with b = value rotated.
        other = (value * 3) & (2**32 - 1)
        assert fold_xor(value ^ other, width) == (
            fold_xor(value, width) ^ fold_xor(other, width)
        )


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(1024) == 10

    def test_log2_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_exact(12)

    @given(st.integers(0, 40))
    def test_log2_roundtrip(self, e):
        assert log2_exact(1 << e) == e


class TestAlignDown:
    def test_basic(self):
        assert align_down(0x1234, 0x1000) == 0x1000

    def test_already_aligned(self):
        assert align_down(0x2000, 0x1000) == 0x2000

    def test_rejects_non_power_alignment(self):
        with pytest.raises(ValueError):
            align_down(100, 12)


def test_bits_to_bytes():
    assert bits_to_bytes(8) == 1.0
    assert bits_to_bytes(7 * 1024) == 896.0
