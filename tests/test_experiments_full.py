"""Smoke + invariant tests for every experiment function (tiny budgets).

Full-budget outputs live in EXPERIMENTS.md; here each experiment must run,
render, and satisfy the structural properties its paper artifact implies.
"""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.workloads.suite import workload_names

BUDGET = 2500


@pytest.fixture(scope="module")
def reports():
    """Run every experiment once at a tiny budget (results are cached
    process-wide, so the matrix is shared across tests)."""
    out = {}
    for exp_id in EXPERIMENTS:
        if exp_id == "storage":
            out[exp_id] = run_experiment(exp_id)
        else:
            out[exp_id] = run_experiment(exp_id, budget=BUDGET)
    return out


def test_all_reports_render(reports):
    for exp_id, report in reports.items():
        text = report.render()
        assert text.startswith(f"== {exp_id}:")
        assert len(text.splitlines()) > 5


@pytest.mark.parametrize(
    "exp_id",
    ["fig1", "fig2", "fig3", "fig4", "table3", "fig9", "table4",
     "table5", "table6", "table7", "fig10"],
)
def test_per_workload_experiments_list_all_workloads(reports, exp_id):
    text = reports[exp_id].render()
    for wl in workload_names():
        assert wl in text, f"{exp_id} missing {wl}"


def test_fig1_fractions_in_range(reports):
    text = reports["fig1"].render()
    # Every numeric percentage cell must be 0..100; spot-check the average.
    avg_line = [l for l in text.splitlines() if l.startswith("AVERAGE")][0]
    dead = float(avg_line.split("|")[1])
    assert 0 <= dead <= 100


def test_fig2_doa_share_reported(reports):
    assert "DOA share of dead %" in reports["fig2"].render()


def test_table3_has_paper_column(reports):
    text = reports["table3"].render()
    assert "paper %" in text
    assert "72.70" in text  # the paper's average

def test_fig9_has_all_four_configs(reports):
    text = reports["fig9"].render()
    for col in ("AIP-TLB", "SHiP-TLB", "dpPred", "iso-storage"):
        assert col in text


def test_table4_includes_oracle(reports):
    assert "Oracle" in reports["table4"].render()


def test_fig10_has_five_configs(reports):
    text = reports["fig10"].render()
    for col in ("AIP-LLC", "SHiP-LLC", "AIP-TLB+LLC", "SHiP-TLB+LLC",
                "dpPred+cbPred"):
        assert col in text


def test_table6_has_ablation_columns(reports):
    text = reports["table6"].render()
    for col in ("dp acc", "dp-SH acc", "SHiP acc"):
        assert col in text


def test_table7_has_ablation_columns(reports):
    text = reports["table7"].render()
    for col in ("cb acc", "cb-PFQ acc", "SHiP acc"):
        assert col in text


@pytest.mark.parametrize(
    "exp_id,labels",
    [
        ("fig11a", ["64 entries", "128 entries", "192 entries"]),
        ("fig11b", ["6b PC + 5b VPN", "6b PC + 4b VPN", "10b PC only"]),
        ("fig11c", ["2-entry shadow", "4-entry shadow"]),
        ("fig11d", ["8-entry PFQ", "64-entry PFQ"]),
        ("fig11e", ["256KB (2MB/8)", "384KB (3MB/8)"]),
        ("fig11f", ["SRRIP LLT", "SRRIP+dpPred", "SRRIP LLT+LLC",
                    "SRRIP+dp+cb"]),
    ],
)
def test_sensitivity_variants_present(reports, exp_id, labels):
    text = reports[exp_id].render()
    for label in labels:
        assert label in text, f"{exp_id} missing {label}"


def test_storage_matches_paper_exactly(reports):
    text = reports["storage"].render()
    assert "10.81" in text
    assert "9.54" in text
    assert "1.28" in text  # dpPred ~1306 bytes = 1.28 KB


def test_ablation_action_reports_both_modes(reports):
    text = reports["ablation_action"].render()
    assert "bypass IPCx" in text and "demote IPCx" in text


def test_ablation_threshold_sweeps(reports):
    text = reports["ablation_threshold"].render()
    for t in (1, 3, 5, 6, 7):
        assert f"threshold {t}" in text
