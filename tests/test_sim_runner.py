"""Tests for run orchestration and caching."""

import numpy as np
import pytest

from repro.sim.config import fast_config
from repro.sim.runner import (
    baseline_and,
    clear_run_cache,
    run_cached,
    run_trace,
)
from repro.workloads.trace import Trace


def make_trace(n=400, pages=60, seed=3):
    rng = np.random.RandomState(seed)
    vaddrs = (0x10000000 + rng.randint(0, pages, n) * 4096).astype(np.uint64)
    return Trace(
        "synthetic",
        np.full(n, 0x400000, dtype=np.uint64),
        vaddrs,
        np.zeros(n, dtype=bool),
        np.full(n, 3, dtype=np.uint16),
    )


class TestRunTrace:
    def test_basic_run(self):
        result = run_trace(make_trace(), fast_config())
        assert result.instructions == 400 * 4
        assert result.ipc > 0

    def test_deterministic(self):
        trace = make_trace()
        a = run_trace(trace, fast_config())
        b = run_trace(trace, fast_config())
        assert a.cycles == b.cycles
        assert a.llt_misses == b.llt_misses

    def test_oracle_two_pass(self):
        trace = make_trace(n=800, pages=40)
        base = run_trace(trace, fast_config())
        oracle = run_trace(trace, fast_config(tlb_predictor="oracle"))
        assert oracle.llt_misses <= base.llt_misses

    def test_oracle_strictly_wins_on_hot_plus_stream(self):
        # A hot set that marginally fits plus a cold DOA stream: the DOA
        # oracle bypasses the stream, letting the hot set stay resident.
        rng = np.random.RandomState(11)
        n = 4000
        hot = (np.arange(n, dtype=np.uint64) % 64) * 4096
        cold = (rng.randint(4096, 1 << 20, size=n).astype(np.uint64)) * 4096
        vaddrs = np.where(np.arange(n) % 2 == 0, hot, cold) + 0x10000000
        trace = Trace(
            "hot+stream",
            np.full(n, 0x400000, dtype=np.uint64),
            vaddrs.astype(np.uint64),
            np.zeros(n, dtype=bool),
            np.full(n, 3, dtype=np.uint16),
        )
        base = run_trace(trace, fast_config())
        oracle = run_trace(trace, fast_config(tlb_predictor="oracle"))
        assert oracle.llt_misses < base.llt_misses


class TestRunCached:
    def test_cache_returns_same_object(self):
        clear_run_cache()
        a = run_cached("mcf", fast_config(), budget=3000)
        b = run_cached("mcf", fast_config(), budget=3000)
        assert a is b

    def test_cache_distinguishes_configs(self):
        clear_run_cache()
        a = run_cached("mcf", fast_config(), budget=3000)
        b = run_cached(
            "mcf", fast_config(tlb_predictor="dppred"), budget=3000
        )
        assert a is not b

    def test_baseline_and(self):
        clear_run_cache()
        base, pred = baseline_and(
            "mcf", fast_config(tlb_predictor="dppred"), budget=3000
        )
        assert base.config_name.endswith("tlb=none/llc=none")
        assert pred.config_name.endswith("tlb=dppred/llc=none")


class TestSeedPlumbing:
    def test_default_seed_maps_to_historical_machine_seed(self):
        from repro.sim.runner import DEFAULT_SEED, machine_seed_for

        assert machine_seed_for(DEFAULT_SEED) == 1

    def test_machine_seed_is_a_bijection(self):
        from repro.sim.runner import machine_seed_for

        derived = [machine_seed_for(s) for s in range(256)]
        assert len(set(derived)) == 256

    def test_distinct_run_seeds_vary_the_machine(self):
        # The run seed must reach the frame allocator, not just the trace
        # generator: same config, different seeds, different frame layouts.
        from repro.sim.config import fast_config
        from repro.sim.machine import Machine
        from repro.sim.runner import machine_seed_for

        a = Machine(fast_config(), seed=machine_seed_for(7))
        b = Machine(fast_config(), seed=machine_seed_for(8))
        assert (
            a.page_table.allocator._salt != b.page_table.allocator._salt
        )


class TestMultiSeed:
    def test_run_many_distinct_seeds(self):
        from repro.sim.runner import run_many, summarize_runs

        results = run_many(
            "mcf", fast_config(), seeds=[1, 2, 3], budget=3000
        )
        assert len(results) == 3
        summary = summarize_runs(results)
        assert summary["runs"] == 3
        assert summary["ipc"]["min"] <= summary["ipc"]["mean"] <= summary["ipc"]["max"]

    def test_summarize_empty_rejected(self):
        from repro.sim.runner import summarize_runs

        with pytest.raises(ValueError):
            summarize_runs([])
