"""Tests for the trace infrastructure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.trace import Trace, TraceBuilder, pc_for_site


class TestTraceBuilder:
    def test_emit_single(self):
        b = TraceBuilder("t", budget=10)
        b.emit(0x400000, 0x1000, write=True, gap=5)
        trace = b.build()
        assert len(trace) == 1
        assert trace.writes[0]
        assert trace.gaps[0] == 5

    def test_emit_chunk(self):
        b = TraceBuilder("t", budget=10)
        b.emit_chunk(0x400000, np.arange(5, dtype=np.uint64) * 64)
        trace = b.build()
        assert len(trace) == 5
        assert (trace.pcs == 0x400000).all()

    def test_budget_truncates_chunks(self):
        b = TraceBuilder("t", budget=3)
        b.emit_chunk(0x400000, np.arange(10, dtype=np.uint64))
        assert b.full
        assert len(b.build()) == 3

    def test_emit_after_full_is_noop(self):
        b = TraceBuilder("t", budget=1)
        b.emit(0x400000, 0)
        b.emit(0x400000, 1)
        assert len(b.build()) == 1

    def test_emit_interleaved(self):
        b = TraceBuilder("t", budget=10)
        b.emit_interleaved(
            np.asarray([1, 2], dtype=np.uint64),
            np.asarray([10, 20], dtype=np.uint64),
            np.asarray([False, True]),
            np.asarray([2, 3], dtype=np.uint16),
        )
        trace = b.build()
        assert trace.pcs.tolist() == [1, 2]
        assert trace.writes.tolist() == [False, True]

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder("t", budget=5).build()

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder("t", budget=0)


class TestTrace:
    def make(self, n=10):
        return Trace(
            "t",
            np.arange(n, dtype=np.uint64),
            np.arange(n, dtype=np.uint64) * 4096,
            np.zeros(n, dtype=bool),
            np.full(n, 2, dtype=np.uint16),
        )

    def test_num_instructions(self):
        assert self.make(10).num_instructions == 30

    def test_footprint_pages(self):
        assert self.make(10).footprint_pages == 10

    def test_iter_records_yields_python_types(self):
        for pc, vaddr, write, gap in self.make(3).iter_records():
            assert isinstance(pc, int)
            assert isinstance(gap, int)

    def test_truncated(self):
        t = self.make(10).truncated(4)
        assert len(t) == 4
        assert self.make(10).truncated(100).num_accesses == 10

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                "bad",
                np.arange(3, dtype=np.uint64),
                np.arange(2, dtype=np.uint64),
                np.zeros(3, dtype=bool),
                np.zeros(3, dtype=np.uint16),
            )


class TestIterRecordsChunking:
    def make(self, n):
        return Trace(
            "t",
            np.arange(n, dtype=np.uint64),
            np.arange(n, dtype=np.uint64) * 64,
            (np.arange(n) % 3 == 0),
            (np.arange(n) % 5).astype(np.uint16),
        )

    def reference(self, trace):
        return list(
            zip(
                trace.pcs.tolist(),
                trace.vaddrs.tolist(),
                trace.writes.tolist(),
                trace.gaps.tolist(),
            )
        )

    @pytest.mark.parametrize("chunk", [1, 2, 3, 7, 10, 11, 64])
    def test_chunk_boundaries_lossless(self, chunk):
        """Every chunk size yields the same records in the same order —
        including sizes that divide the length, straddle it, and exceed
        it — through the reused staging buffer."""
        trace = self.make(10)
        assert list(trace.iter_records(chunk=chunk)) == self.reference(trace)

    def test_chunked_types_match_unchunked(self):
        trace = self.make(7)
        for rec in trace.iter_records(chunk=3):
            pc, vaddr, write, gap = rec
            assert type(pc) is int and type(vaddr) is int
            assert type(write) is bool and type(gap) is int

    def test_repro_chunk_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "4")
        assert Trace.resolve_chunk() == 4
        trace = self.make(11)
        assert list(trace.iter_records()) == self.reference(trace)

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "4")
        assert Trace.resolve_chunk(9) == 9

    def test_default_chunk(self):
        assert Trace.resolve_chunk() == Trace.ITER_CHUNK

    @pytest.mark.parametrize("bad", ["0", "-3", "many"])
    def test_invalid_repro_chunk_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_CHUNK", bad)
        with pytest.raises(ValueError):
            Trace.resolve_chunk()

    def test_invalid_chunk_argument_rejected(self):
        with pytest.raises(ValueError):
            list(self.make(3).iter_records(chunk=0))

    def test_simulation_invariant_under_chunk_size(self, monkeypatch):
        """End to end: a tiny REPRO_CHUNK leaves simulation results
        byte-identical (the regression the reusable buffer must not cause)."""
        import json

        from repro.sim.config import fast_config
        from repro.sim.machine import Machine
        from repro.workloads.suite import get_trace

        trace = get_trace("stream", 3000, 42)
        def run():
            result = Machine(fast_config(), seed=42).run_scalar(trace)
            return json.dumps(result.to_dict(), sort_keys=True)

        baseline = run()
        monkeypatch.setenv("REPRO_CHUNK", "17")
        assert run() == baseline


def test_pc_for_site_distinct_and_stable():
    pcs = {pc_for_site(i) for i in range(100)}
    assert len(pcs) == 100
    assert pc_for_site(3) == pc_for_site(3)


@settings(max_examples=30)
@given(
    chunks=st.lists(
        st.integers(1, 20), min_size=1, max_size=20
    ),
    budget=st.integers(1, 100),
)
def test_builder_never_exceeds_budget(chunks, budget):
    b = TraceBuilder("prop", budget=budget)
    for n in chunks:
        b.emit_chunk(0x400000, np.arange(n, dtype=np.uint64))
    trace = b.build() if b.remaining < budget else None
    if trace is not None:
        assert len(trace) <= budget
