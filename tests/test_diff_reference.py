"""Differential tests: real structures vs the tag-only reference model.

:mod:`repro.sim.reference` re-simulates LLT/LLC residency to score DOA
predictions, which only works if its LRU set-associative model is
*exactly* equivalent to the real never-bypassing structures. These tests
feed randomized seeded access streams through both sides and require the
per-access hit/miss decision streams — and the final hit/miss stats — to
agree, first at the model level (:class:`~repro.vm.tlb.Tlb` and
:class:`~repro.mem.cache.SetAssocCache` against
:class:`~repro.sim.reference.ReferenceStructure`), then at the machine
level (the live L2 TLB against the ``track_reference`` shadow copy fed
the same miss stream).

Property-based cases use hypothesis when available (shrinking a failing
stream to a minimal counterexample); fixed-seed streams cover the same
properties everywhere else.
"""

import random

import pytest

from repro.mem.cache import SetAssocCache
from repro.sim.config import fast_config
from repro.sim.machine import Machine
from repro.sim.reference import ReferenceStructure
from repro.vm.tlb import (
    GLOBAL_KEY_BASE,
    HUGE_KEY_BASE,
    HUGE_SPAN_BITS,
    Tlb,
    tlb_key,
)
from repro.workloads.suite import get_trace

try:
    from hypothesis import given, note, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


# --------------------------------------------------------------------- #
# Drivers: one access on each side, returning (real_hit, ref_hit)
# --------------------------------------------------------------------- #
def _drive_tlb(entries, assoc, keys):
    """Feed ``keys`` through a real predictor-less Tlb and a reference of
    the same geometry; returns the two hit/miss decision streams."""
    tlb = Tlb("llt", entries, assoc)
    ref = ReferenceStructure("ref", entries, assoc)
    real_stream, ref_stream = [], []
    for now, key in enumerate(keys):
        hit = tlb.lookup(key, now) is not None
        if not hit:
            tlb.fill(key, key + 1, 0, now)
        real_stream.append(hit)
        ref_stream.append(ref.access(key, now))
    return tlb, ref, real_stream, ref_stream


def _drive_cache(num_sets, assoc, keys):
    cache = SetAssocCache("llc", num_sets, assoc)
    ref = ReferenceStructure("ref", num_sets * assoc, assoc)
    real_stream, ref_stream = [], []
    for now, key in enumerate(keys):
        hit = cache.lookup(key, now)
        if not hit:
            cache.fill(key, now)
        real_stream.append(hit)
        ref_stream.append(ref.access(key, now))
    return cache, ref, real_stream, ref_stream


def _assert_streams_agree(keys, real_stream, ref_stream, real, ref):
    """Shrink-friendly comparison: name the first diverging access."""
    for i, (a, b) in enumerate(zip(real_stream, ref_stream)):
        if a != b:
            window = keys[max(0, i - 8): i + 1]
            pytest.fail(
                f"divergence at access {i} (key {keys[i]:#x}): real="
                f"{'hit' if a else 'miss'} ref={'hit' if b else 'miss'}; "
                f"trailing keys {[hex(k) for k in window]}"
            )
    assert real.stats.get("hits") == ref.stats.get("hits")
    assert real.stats.get("misses") == ref.stats.get("misses")


def _key_stream(seed, length, universe):
    """A skewed random stream: reuse-heavy with a random working set,
    the regime where LRU order and victim choice actually matter."""
    rng = random.Random(seed)
    hot = [rng.randrange(universe) for _ in range(max(2, universe // 8))]
    return [
        rng.choice(hot) if rng.random() < 0.7 else rng.randrange(universe)
        for _ in range(length)
    ]


GEOMETRIES = [(16, 4), (32, 8), (8, 1), (64, 4)]


# --------------------------------------------------------------------- #
# Fixed-seed differential (runs everywhere)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("entries,assoc", GEOMETRIES)
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_tlb_matches_reference_fixed_streams(entries, assoc, seed):
    keys = _key_stream(seed, 2000, entries * 4)
    tlb, ref, real_stream, ref_stream = _drive_tlb(entries, assoc, keys)
    _assert_streams_agree(keys, real_stream, ref_stream, tlb, ref)


@pytest.mark.parametrize("num_sets,assoc", [(8, 4), (16, 8), (4, 1)])
@pytest.mark.parametrize("seed", [0, 3])
def test_cache_matches_reference_fixed_streams(num_sets, assoc, seed):
    keys = _key_stream(seed, 2000, num_sets * assoc * 4)
    cache, ref, real_stream, ref_stream = _drive_cache(
        num_sets, assoc, keys
    )
    _assert_streams_agree(keys, real_stream, ref_stream, cache, ref)


def test_reference_counts_hits_and_misses():
    ref = ReferenceStructure("ref", 4, 2)
    assert ref.access(0, 0) is False
    assert ref.access(0, 1) is True
    assert ref.stats.get("hits") == 1
    assert ref.stats.get("misses") == 1


# --------------------------------------------------------------------- #
# Property-based differential (hypothesis)
# --------------------------------------------------------------------- #
if HAVE_HYPOTHESIS:
    geometry = st.sampled_from(GEOMETRIES)
    streams = st.lists(
        st.integers(min_value=0, max_value=255), min_size=1, max_size=400
    )

    @settings(max_examples=60, deadline=None)
    @given(geom=geometry, keys=streams)
    def test_tlb_matches_reference_property(geom, keys):
        entries, assoc = geom
        tlb, ref, real_stream, ref_stream = _drive_tlb(
            entries, assoc, keys
        )
        note(f"geometry entries={entries} assoc={assoc}")
        note(f"keys={keys}")
        _assert_streams_agree(keys, real_stream, ref_stream, tlb, ref)

    @settings(max_examples=60, deadline=None)
    @given(
        geom=st.sampled_from([(8, 4), (16, 2), (4, 1)]),
        keys=streams,
    )
    def test_cache_matches_reference_property(geom, keys):
        num_sets, assoc = geom
        cache, ref, real_stream, ref_stream = _drive_cache(
            num_sets, assoc, keys
        )
        note(f"geometry sets={num_sets} assoc={assoc}")
        note(f"keys={keys}")
        _assert_streams_agree(keys, real_stream, ref_stream, cache, ref)


# --------------------------------------------------------------------- #
# ASID-tagged TLB differential: Tlb vs a dict-based reference model
# --------------------------------------------------------------------- #
class DictAsidTlb:
    """Independent reference for the multi-tenant TLB semantics.

    Implements the same architectural contract as :class:`Tlb` — combined
    (asid, vpn) tags, ASID-blind global pages, 2 MB huge entries covering
    512 VPNs, per-set LRU, INVLPG / per-ASID / broadcast shootdowns —
    with plain dicts and an explicit stamp-based LRU instead of the real
    structure's way arrays, count-gated probes, and fused policy updates.
    Any divergence is a bug in one of the two implementations.
    """

    def __init__(self, entries, assoc):
        self.num_sets = entries // assoc
        self.assoc = assoc
        self._mask = self.num_sets - 1
        # set_idx -> {key: [stamp, pfn, asid, global, huge]}
        self.sets = [dict() for _ in range(self.num_sets)]
        self.clock = 0

    def _touch(self, set_idx, key):
        self.clock += 1
        self.sets[set_idx][key][0] = self.clock

    def lookup(self, vpn, asid):
        key = tlb_key(vpn, asid)
        set_idx = key & self._mask
        row = self.sets[set_idx].get(key)
        if row is not None:
            self._touch(set_idx, key)
            return row[1]
        hkey = HUGE_KEY_BASE | tlb_key(vpn >> HUGE_SPAN_BITS, asid)
        hset = hkey & self._mask
        row = self.sets[hset].get(hkey)
        if row is not None:
            self._touch(hset, hkey)
            return row[1] + (vpn & ((1 << HUGE_SPAN_BITS) - 1))
        gkey = GLOBAL_KEY_BASE | vpn
        gset = gkey & self._mask
        row = self.sets[gset].get(gkey)
        if row is not None:
            self._touch(gset, gkey)
            return row[1]
        return None

    def fill(self, vpn, pfn, asid, global_page=False, huge=False):
        if huge:
            key = HUGE_KEY_BASE | tlb_key(vpn >> HUGE_SPAN_BITS, asid)
        elif global_page:
            key = GLOBAL_KEY_BASE | vpn
        else:
            key = tlb_key(vpn, asid)
        set_idx = key & self._mask
        entries = self.sets[set_idx]
        if key in entries:
            return
        if len(entries) >= self.assoc:
            victim = min(entries, key=lambda k: entries[k][0])
            del entries[victim]
        self.clock += 1
        entries[key] = [self.clock, pfn, asid, global_page, huge]

    def invalidate(self, vpn, asid):
        for key in (
            tlb_key(vpn, asid),
            HUGE_KEY_BASE | tlb_key(vpn >> HUGE_SPAN_BITS, asid),
            GLOBAL_KEY_BASE | vpn,
        ):
            self.sets[key & self._mask].pop(key, None)

    def invalidate_asid(self, asid):
        for entries in self.sets:
            doomed = [
                k for k, row in entries.items()
                if row[2] == asid and not row[3]
            ]
            for k in doomed:
                del entries[k]

    def invalidate_all(self, keep_global=True):
        for entries in self.sets:
            doomed = [
                k for k, row in entries.items()
                if not (keep_global and row[3])
            ]
            for k in doomed:
                del entries[k]


def _pfn_for(vpn, asid, huge=False):
    """Deterministic fill PFN; huge bases are 512-aligned by construction."""
    if huge:
        return (tlb_key(vpn >> HUGE_SPAN_BITS, asid) + 1) << HUGE_SPAN_BITS
    return 2 * tlb_key(vpn, asid) + 1


def _drive_asid_tlb(entries, assoc, ops):
    """Replay ``ops`` through a real Tlb and the dict reference.

    Ops are tuples: ``("access", asid, vpn, kind)`` with kind in
    {"4k", "huge", "global"} (the kind used for the fill on a miss), or
    ``("invlpg", asid, vpn)`` / ``("shoot_asid", asid)`` / ``("shoot_all",
    keep_global)``. Returns the two per-access PFN streams.
    """
    tlb = Tlb("llt", entries, assoc)
    ref = DictAsidTlb(entries, assoc)
    real_stream, ref_stream = [], []
    for now, op in enumerate(ops):
        if op[0] == "access":
            _, asid, vpn, kind = op
            real = tlb.lookup(vpn, now, asid)
            model = ref.lookup(vpn, asid)
            real_stream.append(real)
            ref_stream.append(model)
            if real is None:
                huge = kind == "huge"
                glob = kind == "global"
                pfn = _pfn_for(vpn, asid, huge)
                tlb.fill(vpn, pfn, 0, now, asid, glob, huge)
                ref.fill(vpn, pfn, asid, glob, huge)
        elif op[0] == "invlpg":
            _, asid, vpn = op
            tlb.invalidate(vpn, now, asid)
            ref.invalidate(vpn, asid)
        elif op[0] == "shoot_asid":
            tlb.invalidate_asid(op[1], now)
            ref.invalidate_asid(op[1])
        else:
            tlb.invalidate_all(now, keep_global=op[1])
            ref.invalidate_all(keep_global=op[1])
    return tlb, ref, real_stream, ref_stream


def _assert_pfn_streams_agree(ops, real_stream, ref_stream):
    accesses = [op for op in ops if op[0] == "access"]
    for i, (a, b) in enumerate(zip(real_stream, ref_stream)):
        if a != b:
            pytest.fail(
                f"divergence at access {i} {accesses[i]}: real={a} ref={b}"
            )


def _op_stream(seed, length, asids=(0, 1, 2), vpn_universe=96):
    """Skewed mixed-op stream: mostly accesses (reuse-heavy, all three
    page kinds), with occasional shootdowns of each scope."""
    rng = random.Random(seed)
    hot = [rng.randrange(vpn_universe) for _ in range(12)]
    ops = []
    for _ in range(length):
        roll = rng.random()
        asid = rng.choice(asids)
        vpn = rng.choice(hot) if rng.random() < 0.7 else rng.randrange(
            vpn_universe
        )
        if roll < 0.88:
            kind = rng.choices(
                ("4k", "huge", "global"), weights=(8, 2, 1)
            )[0]
            ops.append(("access", asid, vpn, kind))
        elif roll < 0.94:
            ops.append(("invlpg", asid, vpn))
        elif roll < 0.98:
            ops.append(("shoot_asid", asid))
        else:
            ops.append(("shoot_all", rng.random() < 0.5))
    return ops


@pytest.mark.parametrize("entries,assoc", [(16, 4), (32, 8), (8, 1)])
@pytest.mark.parametrize("seed", [0, 1, 9])
def test_asid_tlb_matches_dict_reference(entries, assoc, seed):
    ops = _op_stream(seed, 3000)
    tlb, ref, real_stream, ref_stream = _drive_asid_tlb(
        entries, assoc, ops
    )
    _assert_pfn_streams_agree(ops, real_stream, ref_stream)
    # Occupancies agree too (no leaked huge/global count bookkeeping).
    assert tlb.occupancy() == sum(len(s) for s in ref.sets)


def test_asid_zero_keys_are_raw_vpns():
    """The bit-identity keystone: at ASID 0, 4 KB tags are the raw VPN."""
    tlb = Tlb("llt", 16, 4)
    tlb.fill(0x123, 0x456, 0, now=0)
    entry = tlb.probe(0x123)
    assert entry is not None and entry.vpn == 0x123
    assert tlb.lookup(0x123, 1) == 0x456
    assert tlb_key(0x123, 0) == 0x123


def test_global_pages_hit_under_any_asid():
    tlb = Tlb("llt", 16, 4)
    tlb.fill(0x40, 0x900, 0, now=0, asid=1, global_page=True)
    for asid in (0, 1, 2, 7):
        assert tlb.lookup(0x40, 1, asid) == 0x900


def test_huge_entry_covers_whole_region():
    tlb = Tlb("llt", 16, 4)
    base_vpn = 3 << HUGE_SPAN_BITS
    tlb.fill(base_vpn, 0x1000, 0, now=0, asid=2, huge=True)
    assert tlb.lookup(base_vpn + 17, 1, asid=2) == 0x1000 + 17
    assert tlb.lookup(base_vpn + 511, 2, asid=2) == 0x1000 + 511
    # Other tenants (and ASID 0) never see it.
    assert tlb.lookup(base_vpn + 17, 3, asid=1) is None


# --------------------------------------------------------------------- #
# Huge-page walk differential: Walker vs address-arithmetic oracle
# --------------------------------------------------------------------- #
class _FlatWalkMemory:
    """Hierarchy stub: constant-latency PTE loads keep the oracle test
    about translation correctness, not cache state."""

    def walk_access(self, block, now):
        return 2


def _walk_harness(huge_fraction, seed=5):
    from repro.vm.pagetable import RadixPageTable, huge_region_policy
    from repro.vm.physmem import FrameAllocator
    from repro.vm.pwc import PageWalkCaches
    from repro.vm.walker import PageTableWalker

    policy = (
        huge_region_policy(huge_fraction, seed) if huge_fraction else None
    )
    allocator = FrameAllocator(1 << 16, seed=seed)
    table = RadixPageTable(allocator, huge_policy=policy)
    pwc = PageWalkCaches()
    walker = PageTableWalker(
        table, pwc, _FlatWalkMemory(),
        table_factory=lambda asid: RadixPageTable(
            allocator, huge_policy=policy
        ),
    )
    return walker, policy


@pytest.mark.parametrize("huge_fraction", [0.0, 0.5, 1.0])
def test_walker_against_walk_oracle(huge_fraction):
    """Walk invariants the paper's machine depends on, oracle-checked:
    stable translations, huge-region contiguity, cross-ASID and
    cross-region PFN uniqueness, and huge_base arithmetic."""
    walker, policy = _walk_harness(huge_fraction)
    rng = random.Random(11)
    oracle = {}  # (asid, vpn) -> (pfn, huge_base)
    for now in range(1500):
        asid = rng.choice((0, 1, 2))
        region = rng.randrange(12)
        vpn = (region << HUGE_SPAN_BITS) | rng.randrange(512)
        pfn, latency, huge_base = walker.walk(vpn, now, asid)
        assert latency > 0
        expect_huge = policy is not None and policy(vpn >> HUGE_SPAN_BITS)
        assert (huge_base is not None) == expect_huge
        if huge_base is not None:
            assert huge_base == pfn - (vpn & ((1 << HUGE_SPAN_BITS) - 1))
            assert huge_base % (1 << HUGE_SPAN_BITS) == 0
        seen = oracle.get((asid, vpn))
        if seen is not None:
            assert seen == (pfn, huge_base), "translation not stable"
        oracle[(asid, vpn)] = (pfn, huge_base)
    # Distinct (asid, vpn) pairs never share a PFN: tenants get disjoint
    # frames (shared allocator), huge regions disjoint 512-frame spans.
    pfns = [pfn for pfn, _ in oracle.values()]
    assert len(set(pfns)) == len(pfns)


def test_huge_region_contiguity():
    """Within one huge region every VPN's PFN is base + offset."""
    walker, policy = _walk_harness(1.0)
    base_pfn = None
    region = 4
    for off in (0, 1, 100, 511):
        vpn = (region << HUGE_SPAN_BITS) | off
        pfn, _, huge_base = walker.walk(vpn, off, asid=1)
        assert huge_base is not None
        if base_pfn is None:
            base_pfn = huge_base
        assert huge_base == base_pfn
        assert pfn == base_pfn + off


if HAVE_HYPOTHESIS:
    _asid_ops = st.lists(
        st.one_of(
            st.tuples(
                st.just("access"),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=127),
                st.sampled_from(("4k", "huge", "global")),
            ),
            st.tuples(
                st.just("invlpg"),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=127),
            ),
            st.tuples(
                st.just("shoot_asid"),
                st.integers(min_value=0, max_value=3),
            ),
            st.tuples(st.just("shoot_all"), st.booleans()),
        ),
        min_size=1,
        max_size=300,
    )

    @settings(max_examples=60, deadline=None)
    @given(geom=st.sampled_from([(16, 4), (8, 2), (4, 1)]), ops=_asid_ops)
    def test_asid_tlb_matches_dict_reference_property(geom, ops):
        entries, assoc = geom
        tlb, ref, real_stream, ref_stream = _drive_asid_tlb(
            entries, assoc, ops
        )
        note(f"geometry entries={entries} assoc={assoc}")
        note(f"ops={ops}")
        _assert_pfn_streams_agree(ops, real_stream, ref_stream)
        assert tlb.occupancy() == sum(len(s) for s in ref.sets)


# --------------------------------------------------------------------- #
# Machine-level differential: the live LLT vs its tracked reference
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workload,seed", [("mcf", 42), ("cg.B", 7)])
def test_machine_llt_matches_reference(workload, seed):
    """With no predictor attached, the real L2 TLB and the reference copy
    see the identical L1-miss stream and must produce identical hit/miss
    totals end to end (the reference never bypasses — and neither does a
    predictor-less LLT)."""
    config = fast_config(track_reference=True)
    trace = get_trace(workload, 4000, seed)
    machine = Machine(config, seed=1)
    machine.run(trace)
    llt = machine.l2_tlb.stats
    ref = machine.ref_llt.stats
    assert llt.get("victim_buffer_hits") == 0
    assert llt.get("hits") == ref.get("hits")
    assert llt.get("misses") == ref.get("misses")
