"""Differential tests: real structures vs the tag-only reference model.

:mod:`repro.sim.reference` re-simulates LLT/LLC residency to score DOA
predictions, which only works if its LRU set-associative model is
*exactly* equivalent to the real never-bypassing structures. These tests
feed randomized seeded access streams through both sides and require the
per-access hit/miss decision streams — and the final hit/miss stats — to
agree, first at the model level (:class:`~repro.vm.tlb.Tlb` and
:class:`~repro.mem.cache.SetAssocCache` against
:class:`~repro.sim.reference.ReferenceStructure`), then at the machine
level (the live L2 TLB against the ``track_reference`` shadow copy fed
the same miss stream).

Property-based cases use hypothesis when available (shrinking a failing
stream to a minimal counterexample); fixed-seed streams cover the same
properties everywhere else.
"""

import random

import pytest

from repro.mem.cache import SetAssocCache
from repro.sim.config import fast_config
from repro.sim.machine import Machine
from repro.sim.reference import ReferenceStructure
from repro.vm.tlb import Tlb
from repro.workloads.suite import get_trace

try:
    from hypothesis import given, note, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


# --------------------------------------------------------------------- #
# Drivers: one access on each side, returning (real_hit, ref_hit)
# --------------------------------------------------------------------- #
def _drive_tlb(entries, assoc, keys):
    """Feed ``keys`` through a real predictor-less Tlb and a reference of
    the same geometry; returns the two hit/miss decision streams."""
    tlb = Tlb("llt", entries, assoc)
    ref = ReferenceStructure("ref", entries, assoc)
    real_stream, ref_stream = [], []
    for now, key in enumerate(keys):
        hit = tlb.lookup(key, now) is not None
        if not hit:
            tlb.fill(key, key + 1, 0, now)
        real_stream.append(hit)
        ref_stream.append(ref.access(key, now))
    return tlb, ref, real_stream, ref_stream


def _drive_cache(num_sets, assoc, keys):
    cache = SetAssocCache("llc", num_sets, assoc)
    ref = ReferenceStructure("ref", num_sets * assoc, assoc)
    real_stream, ref_stream = [], []
    for now, key in enumerate(keys):
        hit = cache.lookup(key, now)
        if not hit:
            cache.fill(key, now)
        real_stream.append(hit)
        ref_stream.append(ref.access(key, now))
    return cache, ref, real_stream, ref_stream


def _assert_streams_agree(keys, real_stream, ref_stream, real, ref):
    """Shrink-friendly comparison: name the first diverging access."""
    for i, (a, b) in enumerate(zip(real_stream, ref_stream)):
        if a != b:
            window = keys[max(0, i - 8): i + 1]
            pytest.fail(
                f"divergence at access {i} (key {keys[i]:#x}): real="
                f"{'hit' if a else 'miss'} ref={'hit' if b else 'miss'}; "
                f"trailing keys {[hex(k) for k in window]}"
            )
    assert real.stats.get("hits") == ref.stats.get("hits")
    assert real.stats.get("misses") == ref.stats.get("misses")


def _key_stream(seed, length, universe):
    """A skewed random stream: reuse-heavy with a random working set,
    the regime where LRU order and victim choice actually matter."""
    rng = random.Random(seed)
    hot = [rng.randrange(universe) for _ in range(max(2, universe // 8))]
    return [
        rng.choice(hot) if rng.random() < 0.7 else rng.randrange(universe)
        for _ in range(length)
    ]


GEOMETRIES = [(16, 4), (32, 8), (8, 1), (64, 4)]


# --------------------------------------------------------------------- #
# Fixed-seed differential (runs everywhere)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("entries,assoc", GEOMETRIES)
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_tlb_matches_reference_fixed_streams(entries, assoc, seed):
    keys = _key_stream(seed, 2000, entries * 4)
    tlb, ref, real_stream, ref_stream = _drive_tlb(entries, assoc, keys)
    _assert_streams_agree(keys, real_stream, ref_stream, tlb, ref)


@pytest.mark.parametrize("num_sets,assoc", [(8, 4), (16, 8), (4, 1)])
@pytest.mark.parametrize("seed", [0, 3])
def test_cache_matches_reference_fixed_streams(num_sets, assoc, seed):
    keys = _key_stream(seed, 2000, num_sets * assoc * 4)
    cache, ref, real_stream, ref_stream = _drive_cache(
        num_sets, assoc, keys
    )
    _assert_streams_agree(keys, real_stream, ref_stream, cache, ref)


def test_reference_counts_hits_and_misses():
    ref = ReferenceStructure("ref", 4, 2)
    assert ref.access(0, 0) is False
    assert ref.access(0, 1) is True
    assert ref.stats.get("hits") == 1
    assert ref.stats.get("misses") == 1


# --------------------------------------------------------------------- #
# Property-based differential (hypothesis)
# --------------------------------------------------------------------- #
if HAVE_HYPOTHESIS:
    geometry = st.sampled_from(GEOMETRIES)
    streams = st.lists(
        st.integers(min_value=0, max_value=255), min_size=1, max_size=400
    )

    @settings(max_examples=60, deadline=None)
    @given(geom=geometry, keys=streams)
    def test_tlb_matches_reference_property(geom, keys):
        entries, assoc = geom
        tlb, ref, real_stream, ref_stream = _drive_tlb(
            entries, assoc, keys
        )
        note(f"geometry entries={entries} assoc={assoc}")
        note(f"keys={keys}")
        _assert_streams_agree(keys, real_stream, ref_stream, tlb, ref)

    @settings(max_examples=60, deadline=None)
    @given(
        geom=st.sampled_from([(8, 4), (16, 2), (4, 1)]),
        keys=streams,
    )
    def test_cache_matches_reference_property(geom, keys):
        num_sets, assoc = geom
        cache, ref, real_stream, ref_stream = _drive_cache(
            num_sets, assoc, keys
        )
        note(f"geometry sets={num_sets} assoc={assoc}")
        note(f"keys={keys}")
        _assert_streams_agree(keys, real_stream, ref_stream, cache, ref)


# --------------------------------------------------------------------- #
# Machine-level differential: the live LLT vs its tracked reference
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workload,seed", [("mcf", 42), ("cg.B", 7)])
def test_machine_llt_matches_reference(workload, seed):
    """With no predictor attached, the real L2 TLB and the reference copy
    see the identical L1-miss stream and must produce identical hit/miss
    totals end to end (the reference never bypasses — and neither does a
    predictor-less LLT)."""
    config = fast_config(track_reference=True)
    trace = get_trace(workload, 4000, seed)
    machine = Machine(config, seed=1)
    machine.run(trace)
    llt = machine.l2_tlb.stats
    ref = machine.ref_llt.stats
    assert llt.get("victim_buffer_hits") == 0
    assert llt.get("hits") == ref.get("hits")
    assert llt.get("misses") == ref.get("misses")
