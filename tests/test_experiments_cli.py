"""Tests for the experiment CLI (python -m repro.experiments)."""

import pytest

import repro.sim.diskcache as diskcache
import repro.sim.parallel as parallel
from repro.experiments.__main__ import main


class TestPerformanceFlags:
    def test_jobs_flag_pins_default(self, capsys):
        assert main(["table3", "--budget", "2000", "--jobs", "2"]) == 0
        assert parallel.resolve_jobs() == 2

    def test_cache_enabled_by_default(self, tmp_path, capsys):
        from repro.sim.runner import clear_run_cache

        clear_run_cache()  # force misses so results hit the disk store
        cache = tmp_path / "cli_cache"
        args = ["table3", "--budget", "2000", "--cache-dir", str(cache)]
        assert main(args) == 0
        assert diskcache.is_enabled()
        assert diskcache.stats()["results"] > 0

    def test_no_cache_flag(self, tmp_path, capsys):
        cache = tmp_path / "cli_cache"
        args = [
            "table3", "--budget", "2000",
            "--cache-dir", str(cache), "--no-cache",
        ]
        assert main(args) == 0
        assert not diskcache.is_enabled()
        assert not cache.exists()

    def test_cached_rerun_matches(self, tmp_path, capsys):
        from repro.sim.runner import clear_run_cache

        args = [
            "table3", "--budget", "2000",
            "--cache-dir", str(tmp_path / "cli_cache"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        clear_run_cache()
        assert main(args) == 0
        second = capsys.readouterr().out
        # Identical report body; only the timing footer may differ.
        strip = lambda out: [
            line for line in out.splitlines() if "completed in" not in line
        ]
        assert strip(first) == strip(second)


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table4" in out and "storage" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_storage_experiment(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "10.81" in out
        assert "[storage completed" in out

    def test_budget_flag(self, capsys):
        assert main(["table3", "--budget", "2000"]) == 0
        out = capsys.readouterr().out
        assert "DOA" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["fig99"])
