"""Tests for the experiment CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table4" in out and "storage" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_storage_experiment(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "10.81" in out
        assert "[storage completed" in out

    def test_budget_flag(self, capsys):
        assert main(["table3", "--budget", "2000"]) == 0
        out = capsys.readouterr().out
        assert "DOA" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["fig99"])
