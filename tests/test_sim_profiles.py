"""Profile-level tests: the Table I (paper) machine and SRRIP machines run
end to end, and the scaled profile preserves relative behaviour."""

import numpy as np
import pytest

from repro.sim.config import fast_config, paper_config
from repro.sim.runner import run_trace
from repro.workloads.trace import Trace


def make_trace(n, pages, seed=9):
    rng = np.random.RandomState(seed)
    vaddrs = (
        0x10000000 + rng.randint(0, pages, n).astype(np.uint64) * 4096
    )
    return Trace(
        "t",
        np.full(n, 0x400000, dtype=np.uint64),
        vaddrs,
        np.zeros(n, dtype=bool),
        np.full(n, 3, dtype=np.uint16),
    )


class TestPaperProfile:
    def test_paper_machine_runs(self):
        trace = make_trace(3000, pages=4000)
        result = run_trace(trace, paper_config())
        assert result.ipc > 0
        assert result.llt_misses > 0

    def test_paper_machine_with_predictors(self):
        trace = make_trace(3000, pages=4000)
        result = run_trace(
            trace,
            paper_config(tlb_predictor="dppred", llc_predictor="cbpred"),
        )
        assert result.ipc > 0

    def test_bigger_llt_misses_less(self):
        trace = make_trace(4000, pages=800)
        fast = run_trace(trace, fast_config())      # 128-entry LLT
        paper = run_trace(trace, paper_config())    # 1024-entry LLT
        assert paper.llt_misses < fast.llt_misses


class TestSrripMachines:
    def test_srrip_llt_runs(self):
        trace = make_trace(3000, pages=500)
        result = run_trace(trace, fast_config(tlb_policy="srrip"))
        assert result.ipc > 0

    def test_srrip_llc_runs_with_predictors(self):
        trace = make_trace(3000, pages=500)
        cfg = fast_config(
            tlb_policy="srrip",
            llc_policy="srrip",
            tlb_predictor="dppred",
            llc_predictor="cbpred",
        )
        result = run_trace(trace, cfg)
        assert result.ipc > 0

    def test_srrip_tracks_lru_on_mixed_pattern(self):
        """On cyclic/scan mixes SRRIP degenerates towards FIFO, so it must
        land in LRU's neighbourhood — the paper likewise found 'little
        value in using SRRIP in LLT only' (Section VI-E)."""
        n = 8000
        hot = (np.arange(n, dtype=np.uint64) % 96) * 4096
        scan = (np.arange(n, dtype=np.uint64) + 4096) * 4096
        vaddrs = 0x10000000 + np.where(np.arange(n) % 2 == 0, hot, scan)
        trace = Trace(
            "scan+reuse",
            np.full(n, 0x400000, dtype=np.uint64),
            vaddrs.astype(np.uint64),
            np.zeros(n, dtype=bool),
            np.full(n, 3, dtype=np.uint16),
        )
        lru = run_trace(trace, fast_config())
        srrip = run_trace(trace, fast_config(tlb_policy="srrip"))
        assert srrip.llt_misses <= lru.llt_misses * 1.2
