"""Tests for the generic set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import (
    FILL_BYPASS,
    FILL_DISTANT,
    CacheListener,
    SetAssocCache,
)


def make_cache(**kw):
    defaults = dict(name="test", num_sets=4, assoc=2)
    defaults.update(kw)
    return SetAssocCache(**defaults)


class TestBasics:
    def test_miss_then_fill_then_hit(self):
        c = make_cache()
        assert not c.lookup(0x10, now=0)
        c.fill(0x10, now=1)
        assert c.lookup(0x10, now=2)
        assert c.stats.get("hits") == 1
        assert c.stats.get("misses") == 1

    def test_probe_has_no_side_effects(self):
        c = make_cache()
        c.fill(0x10, now=0)
        line = c.probe(0x10)
        assert line is not None and line.tag == 0x10
        assert c.probe(0x20) is None
        assert c.stats.get("hits") == 0

    def test_set_mapping(self):
        c = make_cache(num_sets=4)
        assert c.set_index(0x13) == 3
        assert c.set_index(0x10) == 0

    def test_capacity(self):
        assert make_cache(num_sets=4, assoc=2).capacity_blocks == 8

    def test_fill_present_block_is_noop(self):
        c = make_cache()
        c.fill(0x10, now=0)
        assert c.fill(0x10, now=1) is None
        assert c.occupancy() == 1

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            make_cache(num_sets=3)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ValueError):
            make_cache(assoc=0)


class TestEviction:
    def test_lru_eviction_within_set(self):
        c = make_cache(num_sets=1, assoc=2)
        c.fill(1, now=0)
        c.fill(2, now=1)
        c.lookup(1, now=2)  # promote 1
        victim = c.fill(3, now=3)
        assert victim is not None and victim.tag == 2
        assert c.lookup(1, now=4)
        assert not c.lookup(2, now=5)

    def test_eviction_only_when_set_full(self):
        c = make_cache(num_sets=1, assoc=4)
        for b in range(4):
            assert c.fill(b, now=b) is None
        assert c.fill(4, now=5) is not None

    def test_dirty_victim_reported(self):
        c = make_cache(num_sets=1, assoc=1)
        c.fill(1, now=0, is_write=True)
        victim = c.fill(2, now=1)
        assert victim.dirty
        assert c.stats.get("writebacks") == 1

    def test_write_hit_sets_dirty(self):
        c = make_cache(num_sets=1, assoc=1)
        c.fill(1, now=0)
        c.lookup(1, now=1, is_write=True)
        assert c.probe(1).dirty


class TestInvalidate:
    def test_invalidate_removes(self):
        c = make_cache()
        c.fill(0x10, now=0)
        line = c.invalidate(0x10, now=1)
        assert line.tag == 0x10
        assert not c.lookup(0x10, now=2)

    def test_invalidate_absent_returns_none(self):
        assert make_cache().invalidate(0x99, now=0) is None


class RecordingListener(CacheListener):
    def __init__(self, decision="allocate"):
        self.decision = decision
        self.hits = []
        self.fills = []
        self.evicts = []

    def on_hit(self, cache, line, now):
        self.hits.append(line.tag)

    def on_fill(self, cache, block, now):
        self.fills.append(block)
        return self.decision

    def on_evict(self, cache, line, now):
        self.evicts.append(line.tag)


class TestListener:
    def test_bypass_prevents_allocation(self):
        listener = RecordingListener(decision=FILL_BYPASS)
        c = make_cache(listener=listener)
        assert c.fill(0x10, now=0) is None
        assert c.occupancy() == 0
        assert c.stats.get("bypasses") == 1
        assert listener.fills == [0x10]

    def test_distant_insertion_is_next_victim(self):
        listener = RecordingListener()
        c = make_cache(num_sets=1, assoc=2, listener=listener)
        c.fill(1, now=0)
        listener.decision = FILL_DISTANT
        c.fill(2, now=1)
        listener.decision = "allocate"
        victim = c.fill(3, now=2)
        assert victim.tag == 2

    def test_evict_hook_sees_accessed_bit(self):
        listener = RecordingListener()
        c = make_cache(num_sets=1, assoc=1, listener=listener)
        c.fill(1, now=0)
        c.lookup(1, now=1)
        c.fill(2, now=2)
        assert listener.evicts == [1]
        assert listener.hits == [1]

    def test_accessed_bit_lifecycle(self):
        c = make_cache(num_sets=1, assoc=1)
        c.fill(1, now=0)
        assert not c.probe(1).accessed
        c.lookup(1, now=1)
        assert c.probe(1).accessed


class TestResidencyIntegration:
    def test_doa_block_counted(self):
        c = make_cache(num_sets=1, assoc=1, track_residency=True)
        c.fill(1, now=0)
        c.fill(2, now=10)  # evicts 1 untouched -> DOA
        c.lookup(2, now=15)
        c.flush_residency(now=20)
        s = c.residency.summary
        assert s.residencies == 2
        assert s.doa_evictions == 1


@settings(max_examples=50)
@given(
    blocks=st.lists(st.integers(0, 63), min_size=1, max_size=300),
)
def test_occupancy_never_exceeds_capacity(blocks):
    """Property: occupancy <= capacity; resident blocks are unique."""
    c = SetAssocCache("prop", num_sets=4, assoc=2)
    now = 0
    for b in blocks:
        now += 1
        if not c.lookup(b, now):
            c.fill(b, now)
        assert c.occupancy() <= c.capacity_blocks
    resident = c.resident_blocks()
    assert len(resident) == len(set(resident))


@settings(max_examples=50)
@given(blocks=st.lists(st.integers(0, 63), min_size=1, max_size=300))
def test_hit_follows_fill_until_capacity_pressure(blocks):
    """A just-filled block always hits immediately afterwards."""
    c = SetAssocCache("prop", num_sets=2, assoc=4)
    now = 0
    for b in blocks:
        now += 1
        if not c.lookup(b, now):
            c.fill(b, now)
            assert c.probe(b) is not None
