"""Behavioural tests for dpPred attached to an LLT."""

import pytest

from repro.core.dppred import DeadPagePredictor, DpPredConfig
from repro.core.hashing import vpn_hash
from repro.vm.tlb import Tlb


def make_llt(pred, entries=8, assoc=2):
    tlb = Tlb("LLT", num_entries=entries, assoc=assoc, listener=pred)
    return tlb


def train_doa(tlb, pred, vpn, pc_hash, times):
    """Fill+evict ``vpn`` untouched ``times`` times to raise its counter."""
    for i in range(times):
        tlb.fill(vpn, vpn + 1000, pc_hash, now=i)
        tlb.invalidate(vpn, now=i)  # eviction trains the predictor


class TestTraining:
    def test_doa_eviction_increments(self):
        pred = DeadPagePredictor()
        tlb = make_llt(pred)
        tlb.fill(0x10, 1, 5, now=0)
        tlb.invalidate(0x10, now=1)
        assert pred.phist.value(5, vpn_hash(0x10)) == 1

    def test_hit_then_eviction_clears(self):
        pred = DeadPagePredictor()
        tlb = make_llt(pred)
        train_doa(tlb, pred, 0x10, 5, 3)
        tlb.fill(0x10, 1, 5, now=10)
        tlb.lookup(0x10, now=11)  # sets Accessed
        tlb.invalidate(0x10, now=12)
        assert pred.phist.value(5, vpn_hash(0x10)) == 0


class TestPrediction:
    def test_bypass_after_threshold(self):
        pred = DeadPagePredictor()
        tlb = make_llt(pred)
        train_doa(tlb, pred, 0x10, 5, 7)  # counter = 7 > 6
        tlb.fill(0x10, 1, 5, now=100)
        assert tlb.probe(0x10) is None  # bypassed
        assert tlb.stats.get("bypasses") == 1
        assert pred.stats.get("doa_predictions") == 1

    def test_no_bypass_below_threshold(self):
        pred = DeadPagePredictor()
        tlb = make_llt(pred)
        train_doa(tlb, pred, 0x10, 5, 6)  # counter = 6, not > 6
        tlb.fill(0x10, 1, 5, now=100)
        assert tlb.probe(0x10) is not None

    def test_bypassed_translation_lands_in_shadow(self):
        pred = DeadPagePredictor()
        tlb = make_llt(pred)
        train_doa(tlb, pred, 0x10, 5, 7)
        tlb.fill(0x10, 0x77, 5, now=100)
        assert 0x10 in pred.shadow

    def test_pfn_sink_notified_on_bypass(self):
        sunk = []
        pred = DeadPagePredictor(pfn_sink=sunk.append)
        tlb = make_llt(pred)
        train_doa(tlb, pred, 0x10, 5, 7)
        tlb.fill(0x10, 0x77, 5, now=100)
        assert sunk == [0x77]

    def test_prediction_observer_sees_every_fill(self):
        seen = []
        pred = DeadPagePredictor(
            prediction_observer=lambda vpn, doa: seen.append((vpn, doa))
        )
        tlb = make_llt(pred)
        tlb.fill(0x20, 1, 3, now=0)
        assert seen == [(0x20, False)]


class TestShadowFeedback:
    def test_shadow_hit_serves_miss_and_refills(self):
        pred = DeadPagePredictor()
        tlb = make_llt(pred)
        train_doa(tlb, pred, 0x10, 5, 7)
        tlb.fill(0x10, 0x77, 5, now=100)  # bypassed into shadow
        # The mispredicted page is referenced again: served from shadow,
        # refilled into the LLT, and the pHIST column is flushed.
        assert tlb.lookup(0x10, now=101) == 0x77
        assert tlb.stats.get("victim_buffer_hits") == 1
        assert tlb.probe(0x10) is not None  # back in the LLT
        assert 0x10 not in pred.shadow  # consumed
        assert pred.phist.value(5, vpn_hash(0x10)) == 0  # column flushed

    def test_column_flush_hits_sharing_vpns(self):
        pred = DeadPagePredictor()
        tlb = make_llt(pred)
        other_vpn = 0x10 + 16  # same 4-bit vpn hash? construct by hash
        # find a vpn with same hash but different value
        target_h = vpn_hash(0x10)
        other_vpn = next(
            v for v in range(0x11, 0x2000) if vpn_hash(v) == target_h
        )
        train_doa(tlb, pred, other_vpn, 9, 7)
        train_doa(tlb, pred, 0x10, 5, 7)
        tlb.fill(0x10, 0x77, 5, now=100)
        tlb.lookup(0x10, now=101)  # shadow hit -> column flush
        assert pred.phist.value(9, target_h) == 0

    def test_refill_does_not_repredict(self):
        pred = DeadPagePredictor()
        tlb = make_llt(pred)
        train_doa(tlb, pred, 0x10, 5, 7)
        tlb.fill(0x10, 0x77, 5, now=100)
        before = pred.stats.get("doa_predictions")
        tlb.lookup(0x10, now=101)
        assert pred.stats.get("doa_predictions") == before


class TestShadowDisabled:
    def test_dppred_sh_still_bypasses(self):
        pred = DeadPagePredictor(DpPredConfig(shadow_entries=0))
        tlb = make_llt(pred)
        train_doa(tlb, pred, 0x10, 5, 7)
        tlb.fill(0x10, 0x77, 5, now=100)
        assert tlb.probe(0x10) is None
        assert pred.shadow is None

    def test_dppred_sh_miss_goes_to_walk(self):
        pred = DeadPagePredictor(DpPredConfig(shadow_entries=0))
        tlb = make_llt(pred)
        train_doa(tlb, pred, 0x10, 5, 7)
        tlb.fill(0x10, 0x77, 5, now=100)
        assert tlb.lookup(0x10, now=101) is None  # no victim buffer


class TestConfigValidation:
    def test_threshold_must_fit_counter(self):
        with pytest.raises(ValueError):
            DeadPagePredictor(DpPredConfig(counter_bits=3, threshold=8))

    def test_negative_shadow_rejected(self):
        with pytest.raises(ValueError):
            DeadPagePredictor(DpPredConfig(shadow_entries=-1))


class TestStorage:
    def test_paper_storage_budget(self):
        """Section V-D: 1306 bytes total for a 1024-entry LLT."""
        pred = DeadPagePredictor()
        bits = pred.storage_bits(llt_entries=1024)
        assert bits == 7 * 1024 + 3 * 1024 + 26 * 8
        assert bits / 8 == 1306
