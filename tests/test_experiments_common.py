"""Tests for the shared experiment machinery."""

import pytest

from repro.experiments import common
from repro.experiments.common import SuiteResults, run_suite
from repro.sim.results import SimResult

BUDGET = 3000


class TestNamedConfigs:
    def test_baseline_has_no_predictors(self):
        cfg = common.baseline()
        assert cfg.tlb_predictor == "none"
        assert cfg.llc_predictor == "none"

    def test_characterization_tracks(self):
        cfg = common.characterization()
        assert cfg.track_residency and cfg.track_correlation

    def test_combined_couples_predictors(self):
        cfg = common.combined()
        assert cfg.tlb_predictor == "dppred"
        assert cfg.llc_predictor == "cbpred"
        cfg.validate()

    def test_every_named_config_validates(self):
        for factory in (
            common.baseline, common.characterization, common.dppred,
            common.dppred_no_shadow, common.ship_tlb, common.aip_tlb,
            common.oracle_tlb, common.iso_storage, common.combined,
            common.combined_no_pfq, common.ship_llc, common.aip_llc,
            common.ship_both, common.aip_both,
        ):
            factory().validate()


class TestRunSuite:
    def test_runs_selected_workloads(self):
        suite = run_suite(
            {"base": common.baseline()}, BUDGET, workloads=["mcf", "pr"]
        )
        assert set(suite.results) == {"mcf", "pr"}
        assert isinstance(suite.result("mcf", "base"), SimResult)

    def test_progress_callback(self):
        seen = []
        run_suite(
            {"base": common.baseline()},
            BUDGET,
            workloads=["mcf"],
            progress=seen.append,
        )
        assert seen == ["mcf / base"]

    def test_reduction_helpers(self):
        suite = run_suite(
            {"base": common.baseline(), "dp": common.dppred(track=False)},
            BUDGET,
            workloads=["cactusADM"],
        )
        red = suite.llt_mpki_reduction("cactusADM", "dp", "base")
        assert isinstance(red, float)
        assert suite.llc_mpki_reduction("cactusADM", "base", "base") == 0.0
        assert suite.ipc_vs("cactusADM", "base", "base") == 1.0


class TestSuiteResults:
    def test_zero_baseline_mpki(self):
        suite = SuiteResults(configs=["a", "b"])
        a = SimResult("w", "a", instructions=1000, cycles=100.0)
        b = SimResult("w", "b", instructions=1000, cycles=100.0,
                      llt_misses=5)
        suite.results["w"] = {"a": a, "b": b}
        assert suite.llt_mpki_reduction("w", "b", "a") == 0.0
