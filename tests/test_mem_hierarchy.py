"""Tests for the three-level inclusive cache hierarchy."""

import pytest

from repro.mem.cache import SetAssocCache
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.mainmem import MainMemory


def make_hierarchy(l1_sets=2, l2_sets=4, llc_sets=8, assoc=2, mem_latency=191):
    l1 = SetAssocCache("L1D", l1_sets, assoc)
    l2 = SetAssocCache("L2", l2_sets, assoc)
    llc = SetAssocCache("LLC", llc_sets, assoc, track_residency=True)
    return CacheHierarchy(l1, l2, llc, MainMemory(mem_latency))


class TestLatencies:
    def test_cold_miss_pays_memory(self):
        h = make_hierarchy()
        assert h.access(0x100, now=0) == (h.llc_latency + h.memory.latency, "mem")

    def test_l1_hit_after_fill(self):
        h = make_hierarchy()
        h.access(0x100, now=0)
        assert h.access(0x100, now=1) == (h.l1_latency, "l1")

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy(l1_sets=1, assoc=1, l2_sets=4, llc_sets=8)
        h.access(0x100, now=0)
        h.access(0x101, now=1)  # evicts 0x100 from the 1-entry L1
        assert h.access(0x100, now=2) == (h.l2_latency, "l2")

    def test_llc_hit_latency(self):
        h = make_hierarchy(l1_sets=1, assoc=1, l2_sets=1, llc_sets=8)
        h.access(0x100, now=0)
        h.access(0x101, now=1)
        h.access(0x102, now=2)  # pushes 0x100 out of L1 and L2
        assert h.access(0x100, now=3) == (h.llc_latency, "llc")


class TestInclusion:
    def test_llc_eviction_back_invalidates(self):
        # LLC with a single set of 2 ways; L1/L2 big enough to retain.
        l1 = SetAssocCache("L1D", 8, 4)
        l2 = SetAssocCache("L2", 8, 4)
        llc = SetAssocCache("LLC", 1, 2)
        h = CacheHierarchy(l1, l2, llc, MainMemory())
        h.access(1, now=0)
        h.access(2, now=1)
        h.access(3, now=2)  # LLC evicts block 1 -> must vanish everywhere
        assert llc.probe(1) is None
        assert l1.probe(1) is None
        assert l2.probe(1) is None
        assert h.stats.get("inclusion_victims") >= 1

    def test_inclusion_holds_after_many_accesses(self):
        h = make_hierarchy(l1_sets=2, l2_sets=2, llc_sets=4, assoc=2)
        for i in range(100):
            h.access(i % 23, now=i)
        for block in h.l1.resident_blocks() + h.l2.resident_blocks():
            assert h.llc.probe(block) is not None, f"{block} violates inclusion"


class TestWriteback:
    def test_dirty_llc_victim_writes_to_memory(self):
        llc = SetAssocCache("LLC", 1, 1)
        h = CacheHierarchy(
            SetAssocCache("L1D", 4, 2), SetAssocCache("L2", 4, 2), llc, MainMemory()
        )
        h.access(1, now=0, is_write=True)
        writes_before = h.memory.stats.get("writes")
        h.access(2, now=1)  # evicts dirty block 1 from LLC
        assert h.memory.stats.get("writes") == writes_before + 1

    def test_dirty_l1_victim_marks_l2_dirty(self):
        l1 = SetAssocCache("L1D", 1, 1)
        l2 = SetAssocCache("L2", 8, 2)
        h = CacheHierarchy(l1, l2, SetAssocCache("LLC", 8, 2), MainMemory())
        h.access(1, now=0, is_write=True)
        h.access(2, now=1)  # evicts dirty 1 from L1; L2 copy must be dirty
        assert l2.probe(1).dirty


class TestWalkPath:
    def test_walk_access_skips_l1(self):
        h = make_hierarchy()
        h.walk_access(0x200, now=0)
        assert h.l1.probe(0x200) is None
        assert h.l2.probe(0x200) is not None
        assert h.llc.probe(0x200) is not None

    def test_walk_access_latencies(self):
        h = make_hierarchy()
        cold = h.walk_access(0x200, now=0)
        warm = h.walk_access(0x200, now=1)
        assert cold == h.llc_latency + h.memory.latency
        assert warm == h.l2_latency

    def test_walk_llc_hit(self):
        h = make_hierarchy(l2_sets=1, assoc=1)
        h.walk_access(0x200, now=0)
        h.walk_access(0x201, now=1)  # evicts 0x200 from the tiny L2
        assert h.walk_access(0x200, now=2) == h.llc_latency


class TestCounters:
    def test_demand_misses_counted(self):
        h = make_hierarchy()
        h.access(1, now=0)
        h.access(1, now=1)
        assert h.stats.get("llc_demand_misses") == 1
        assert h.stats.get("accesses") == 2

    def test_mpki_counters_exposed(self):
        h = make_hierarchy()
        h.access(1, now=0)
        counters = h.llc_mpki_counters()
        assert counters["llc_misses"] == 1
        assert counters["llc_hits"] == 0

    def test_finalize_flushes_residency(self):
        h = make_hierarchy()
        h.access(1, now=0)
        h.finalize(now=10)
        assert h.llc.residency.summary.residencies >= 1
