"""Tests for the 14-workload suite and its generators."""

import numpy as np
import pytest

from repro.workloads.graphs import CsrGraph, GraphWorkload
from repro.workloads.suite import (
    WORKLOAD_CLASSES,
    clear_trace_cache,
    get_trace,
    make_workload,
    workload_names,
)
from repro.workloads.synthetic import (
    AddressSpace,
    RandomWorkload,
    StreamWorkload,
    mix_pcs,
)

BUDGET = 4000


class TestSuiteRegistry:
    def test_fourteen_workloads(self):
        assert len(workload_names()) == 14

    def test_table2_names(self):
        expected = {
            "cactusADM", "cc", "cg.B", "sssp", "lbm", "Triangle", "KCore",
            "canneal", "pr", "graph500", "bfs", "bc", "mis", "mcf",
        }
        assert set(workload_names()) == expected

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            make_workload("gcc")

    def test_trace_cache(self):
        clear_trace_cache()
        a = get_trace("mcf", BUDGET)
        b = get_trace("mcf", BUDGET)
        assert a is b
        assert get_trace("mcf", BUDGET + 1) is not a


@pytest.mark.parametrize("name", workload_names())
class TestEveryWorkload:
    def test_generates_within_budget(self, name):
        trace = get_trace(name, BUDGET)
        assert 0 < len(trace) <= BUDGET

    def test_deterministic(self, name):
        t1 = make_workload(name).generate(BUDGET)
        t2 = make_workload(name).generate(BUDGET)
        assert np.array_equal(t1.vaddrs, t2.vaddrs)
        assert np.array_equal(t1.pcs, t2.pcs)

    def test_seed_changes_trace(self, name):
        if name in ("cactusADM", "lbm"):
            pytest.skip("stencil sweeps differ only in offsets, not layout")
        t1 = make_workload(name, seed=1).generate(BUDGET)
        t2 = make_workload(name, seed=2).generate(BUDGET)
        assert not (
            len(t1) == len(t2) and np.array_equal(t1.vaddrs, t2.vaddrs)
        )

    def test_addresses_are_canonical(self, name):
        trace = get_trace(name, BUDGET)
        assert int(trace.vaddrs.max()) < (1 << 48)
        assert int(trace.vaddrs.min()) >= 0x1000_0000

    def test_touches_many_pages(self, name):
        """Every workload must pressure the 128-entry LLT meaningfully."""
        trace = get_trace(name, BUDGET)
        assert trace.footprint_pages > 16

    def test_has_multiple_pcs(self, name):
        trace = get_trace(name, BUDGET)
        assert len(np.unique(trace.pcs)) >= 3

    def test_has_reads_and_gap(self, name):
        trace = get_trace(name, BUDGET)
        assert (~trace.writes).any()
        assert trace.num_instructions > trace.num_accesses


class TestCsrGraph:
    def test_geometry(self):
        g = CsrGraph.random(100, 5, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges == 500

    def test_offsets_monotone(self):
        g = CsrGraph.random(200, 4, seed=2)
        assert (np.diff(g.offsets) >= 0).all()

    def test_neighbors_in_range(self):
        g = CsrGraph.random(50, 6, seed=3)
        for u in range(50):
            nbrs = g.neighbors(u)
            assert ((0 <= nbrs) & (nbrs < 50)).all()

    def test_skew_creates_hubs(self):
        g = CsrGraph.random(2000, 10, seed=4, skew=1.2)
        indeg = np.bincount(g.targets, minlength=2000)
        # Top 1% of vertices get far more than 1% of edges.
        top = np.sort(indeg)[-20:].sum()
        assert top > 0.05 * g.num_edges

    def test_malformed_offsets_rejected(self):
        with pytest.raises(ValueError):
            CsrGraph(np.asarray([1, 2]), np.asarray([0, 0]))

    def test_degree(self):
        g = CsrGraph.random(10, 3, seed=5)
        assert sum(g.degree(u) for u in range(10)) == g.num_edges


class TestAddressSpace:
    def test_regions_disjoint_pages(self):
        space = AddressSpace()
        a = space.region("a", 5000)
        b = space.region("b", 5000)
        assert (a >> 12) != (b >> 12)
        assert b > a + 5000

    def test_duplicate_rejected(self):
        space = AddressSpace()
        space.region("a", 100)
        with pytest.raises(ValueError):
            space.region("a", 100)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().region("z", 0)

    def test_footprint(self):
        space = AddressSpace()
        space.region("a", 1000)
        space.region("b", 2000)
        assert space.footprint_bytes == 3000


class TestSyntheticHelpers:
    def test_stream_workload(self):
        trace = StreamWorkload(array_bytes=1 << 16).generate(500)
        assert len(trace) == 500
        deltas = np.diff(trace.vaddrs.astype(np.int64))
        assert (deltas[deltas > 0] == 64).all()

    def test_random_workload(self):
        trace = RandomWorkload(array_bytes=1 << 16).generate(500)
        assert len(trace) == 500
        assert trace.footprint_pages > 4

    def test_mix_pcs_fraction(self):
        rng = np.random.RandomState(0)
        pcs = mix_pcs(rng, 1, 2, 10_000, 0.3)
        shared = (pcs == 2).mean()
        assert 0.25 < shared < 0.35

    def test_mix_pcs_zero_fraction(self):
        rng = np.random.RandomState(0)
        assert (mix_pcs(rng, 1, 2, 100, 0.0) == 1).all()
