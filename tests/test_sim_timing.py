"""Tests for the mechanistic timing model's qualitative properties.

The substitution argument (DESIGN.md §3) only needs IPC to be a monotone
function of the miss events the predictors change; these tests pin that.
"""

import numpy as np

from repro.sim.config import TimingConfig, fast_config
from repro.sim.machine import Machine
from repro.sim.runner import run_trace
from repro.workloads.trace import Trace


def make_trace(vaddrs, gap=3):
    n = len(vaddrs)
    return Trace(
        "t",
        np.full(n, 0x400000, dtype=np.uint64),
        np.asarray(vaddrs, dtype=np.uint64),
        np.zeros(n, dtype=bool),
        np.full(n, gap, dtype=np.uint16),
    )


def hot_trace(n=400):
    """All accesses hit one page/block after warm-up."""
    return make_trace([0x10000000] * n)


def thrash_trace(n=400, pages=4096):
    rng = np.random.RandomState(5)
    return make_trace(
        0x10000000 + rng.randint(0, pages, n).astype(np.uint64) * 4096
    )


class TestMonotonicity:
    def test_hits_faster_than_misses(self):
        hot = run_trace(hot_trace(), fast_config())
        cold = run_trace(thrash_trace(), fast_config())
        assert hot.ipc > cold.ipc

    def test_ipc_bounded_by_ideal(self):
        cfg = fast_config()
        hot = run_trace(hot_trace(), cfg)
        assert hot.ipc <= 1.0 / cfg.timing.base_cpi + 1e-9

    def test_walks_cost_more_than_tlb_hits(self):
        cfg = fast_config()
        m1 = Machine(cfg)
        m2 = Machine(cfg)
        # Same number of accesses; m2 touches fresh pages (walks).
        for i in range(64):
            m1.access(0x400000, 0x10000000, False, 3)
            m2.access(0x400000, 0x10000000 + i * 4096 * 17, False, 3)
        assert m2.cycles > m1.cycles

    def test_higher_gap_raises_ipc(self):
        """More non-memory instructions amortise memory penalties."""
        cfg = fast_config()
        low = run_trace(make_trace([0x10000000] * 200, gap=1), cfg)
        high = run_trace(make_trace([0x10000000] * 200, gap=9), cfg)
        assert high.ipc > low.ipc


class TestTimingConfig:
    def test_mem_divisor_models_mlp(self):
        fast_mlp = fast_config(
            timing=TimingConfig(mem_divisor=8.0)
        )
        slow_mlp = fast_config(
            timing=TimingConfig(mem_divisor=1.0)
        )
        trace = thrash_trace()
        assert run_trace(trace, fast_mlp).ipc > run_trace(trace, slow_mlp).ipc

    def test_walk_exposure_scales_walk_cost(self):
        exposed = fast_config(timing=TimingConfig(walk_exposure=1.0))
        hidden = fast_config(timing=TimingConfig(walk_exposure=0.0))
        trace = thrash_trace()
        assert run_trace(trace, hidden).ipc > run_trace(trace, exposed).ipc

    def test_defaults(self):
        t = TimingConfig()
        assert t.base_cpi == 0.4
        assert t.walk_exposure == 1.0
        assert t.mem_divisor == 8.0


class TestMissAccounting:
    def test_avg_walk_latency_in_plausible_range(self):
        result = run_trace(thrash_trace(800), fast_config())
        # A walk costs at least the PWC probes + one L2 hit, at most
        # 4 memory accesses.
        assert 2 <= result.avg_walk_latency <= 4 * (40 + 191) + 10

    def test_mpki_scales_with_instructions(self):
        r = run_trace(make_trace([0x10000000] * 100, gap=0), fast_config())
        assert r.instructions == 100
        assert r.llt_mpki == 1000.0 * r.llt_misses / 100
