"""Tests for replacement policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    SrripPolicy,
    make_policy,
)


class TestLru:
    def test_victim_is_least_recent_fill(self):
        p = LruPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        assert p.victim(0) == 0

    def test_hit_promotes(self):
        p = LruPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        p.on_hit(0, 0)
        assert p.victim(0) == 1

    def test_distant_fill_becomes_next_victim(self):
        p = LruPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        p.on_fill(0, 2, distant=True)
        assert p.victim(0) == 2

    def test_sets_are_independent(self):
        p = LruPolicy(2, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_fill(1, 1)
        p.on_fill(1, 0)
        assert p.victim(0) == 0
        assert p.victim(1) == 1


class TestFifo:
    def test_hit_does_not_promote(self):
        p = FifoPolicy(1, 3)
        for way in range(3):
            p.on_fill(0, way)
        p.on_hit(0, 0)
        assert p.victim(0) == 0

    def test_fill_order_respected(self):
        p = FifoPolicy(1, 3)
        p.on_fill(0, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        assert p.victim(0) == 2

    def test_distant_jumps_queue(self):
        p = FifoPolicy(1, 3)
        for way in range(3):
            p.on_fill(0, way)
        p.on_fill(0, 1, distant=True)
        assert p.victim(0) == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(1, 8, seed=7)
        b = RandomPolicy(1, 8, seed=7)
        seq_a = [a.victim(0) for _ in range(20)]
        seq_b = [b.victim(0) for _ in range(20)]
        assert seq_a == seq_b

    def test_victims_in_range(self):
        p = RandomPolicy(1, 4)
        assert all(0 <= p.victim(0) < 4 for _ in range(100))

    def test_distant_preferred(self):
        p = RandomPolicy(1, 4)
        p.on_fill(0, 3, distant=True)
        assert p.victim(0) == 3

    def test_hit_clears_distant(self):
        p = RandomPolicy(1, 4)
        p.on_fill(0, 3, distant=True)
        p.on_hit(0, 3)
        # No distant entry left; the victim is pseudo-random but valid.
        assert 0 <= p.victim(0) < 4


class TestSrrip:
    def test_fill_long_hit_promotes(self):
        p = SrripPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 0)
        # way1 still at rrpv max-1; aging reaches it before way0.
        assert p.victim(0) == 1

    def test_distant_fill_is_immediate_victim(self):
        p = SrripPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        p.on_fill(0, 2, distant=True)
        assert p.victim(0) == 2

    def test_aging_terminates(self):
        p = SrripPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
            p.on_hit(0, way)
        assert 0 <= p.victim(0) < 4

    def test_rejects_zero_rrpv_bits(self):
        with pytest.raises(ValueError):
            SrripPolicy(1, 4, rrpv_bits=0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LruPolicy), ("fifo", FifoPolicy), ("random", RandomPolicy), ("srrip", SrripPolicy)],
    )
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 4, 2), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 4, 2), LruPolicy)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_policy("belady", 4, 2)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            LruPolicy(0, 4)


@pytest.mark.parametrize("name", ["lru", "fifo", "random", "srrip"])
@given(ops=st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=100))
def test_policy_victims_always_valid(name, ops):
    """Any policy, any schedule: victim() returns a legal way."""
    p = make_policy(name, 2, 4)
    for way, hit in ops:
        if hit:
            p.on_hit(0, way)
        else:
            p.on_fill(0, way)
    assert 0 <= p.victim(0) < 4
    assert 0 <= p.victim(1) < 4
