"""Tests for the physical frame allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.physmem import PAGE_SIZE, FrameAllocator, OutOfPhysicalMemory


class TestAllocation:
    def test_sequential_mode(self):
        a = FrameAllocator(num_frames=16, scramble=False)
        assert [a.allocate() for _ in range(4)] == [0, 1, 2, 3]

    def test_scrambled_frames_unique(self):
        a = FrameAllocator(num_frames=256, scramble=True)
        frames = [a.allocate() for _ in range(256)]
        assert len(set(frames)) == 256
        assert all(0 <= f < 256 for f in frames)

    def test_scramble_not_sequential(self):
        a = FrameAllocator(num_frames=1 << 16, scramble=True)
        frames = [a.allocate() for _ in range(8)]
        deltas = {frames[i + 1] - frames[i] for i in range(7)}
        assert deltas != {1}

    def test_deterministic_per_seed(self):
        a = FrameAllocator(num_frames=64, seed=3)
        b = FrameAllocator(num_frames=64, seed=3)
        assert [a.allocate() for _ in range(10)] == [
            b.allocate() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = FrameAllocator(num_frames=1 << 12, seed=1)
        b = FrameAllocator(num_frames=1 << 12, seed=2)
        assert [a.allocate() for _ in range(4)] != [
            b.allocate() for _ in range(4)
        ]

    def test_exhaustion_raises(self):
        a = FrameAllocator(num_frames=2)
        a.allocate()
        a.allocate()
        with pytest.raises(OutOfPhysicalMemory):
            a.allocate()

    def test_rejects_non_power_of_two_pool(self):
        with pytest.raises(ValueError):
            FrameAllocator(num_frames=100)

    def test_allocated_counter(self):
        a = FrameAllocator(num_frames=8)
        a.allocate()
        a.allocate()
        assert a.allocated == 2
        assert a.stats.get("frames_allocated") == 2


def test_page_size_constant():
    assert PAGE_SIZE == 4096


@settings(max_examples=20)
@given(seed=st.integers(0, 2**16), n=st.integers(1, 512))
def test_scramble_is_bijective_prefix(seed, n):
    """Any allocation prefix yields distinct in-range frames."""
    a = FrameAllocator(num_frames=512, scramble=True, seed=seed)
    frames = [a.allocate() for _ in range(n)]
    assert len(set(frames)) == n
    assert all(0 <= f < 512 for f in frames)
