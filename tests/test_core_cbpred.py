"""Behavioural tests for cbPred attached to an LLC."""

import pytest

from repro.core.cbpred import (
    BLOCKS_PER_PAGE_SHIFT,
    CbPredConfig,
    CorrelatingDeadBlockPredictor,
)
from repro.mem.cache import SetAssocCache


def make_llc(pred, num_sets=16, assoc=2):
    return SetAssocCache("LLC", num_sets, assoc, listener=pred)


def block_of(pfn, block_in_page=0):
    return (pfn << BLOCKS_PER_PAGE_SHIFT) | block_in_page


class TestPfqFilter:
    def test_block_off_doa_page_is_untouched(self):
        pred = CorrelatingDeadBlockPredictor()
        llc = make_llc(pred)
        llc.fill(block_of(5), now=0)
        line = llc.probe(block_of(5))
        assert line is not None and not line.dp
        assert pred.stats.get("pfq_matches") == 0

    def test_block_on_doa_page_gets_dp_bit(self):
        pred = CorrelatingDeadBlockPredictor()
        llc = make_llc(pred)
        pred.notify_doa_page(5)
        llc.fill(block_of(5), now=0)
        assert llc.probe(block_of(5)).dp
        assert pred.stats.get("pfq_matches") == 1

    def test_pfq_disabled_marks_everything(self):
        pred = CorrelatingDeadBlockPredictor(CbPredConfig(use_pfq=False))
        llc = make_llc(pred)
        llc.fill(block_of(5), now=0)
        assert llc.probe(block_of(5)).dp


class TestTraining:
    def test_dp_doa_eviction_trains(self):
        pred = CorrelatingDeadBlockPredictor()
        llc = make_llc(pred)
        pred.notify_doa_page(5)
        b = block_of(5)
        llc.fill(b, now=0)
        llc.invalidate(b, now=1)  # evicted untouched
        assert pred.bhist.value(b) == 1

    def test_dp_hit_eviction_clears(self):
        pred = CorrelatingDeadBlockPredictor()
        llc = make_llc(pred)
        pred.notify_doa_page(5)
        b = block_of(5)
        for _ in range(3):
            llc.fill(b, now=0)
            llc.invalidate(b, now=1)
        llc.fill(b, now=2)
        llc.lookup(b, now=3)
        llc.invalidate(b, now=4)
        assert pred.bhist.value(b) == 0

    def test_non_dp_eviction_ignored(self):
        pred = CorrelatingDeadBlockPredictor()
        llc = make_llc(pred)
        b = block_of(5)
        llc.fill(b, now=0)
        llc.invalidate(b, now=1)
        assert pred.bhist.value(b) == 0


class TestPrediction:
    def train(self, pred, llc, b, times):
        pred.notify_doa_page(b >> BLOCKS_PER_PAGE_SHIFT)
        for i in range(times):
            llc.fill(b, now=2 * i)
            llc.invalidate(b, now=2 * i + 1)

    def test_bypass_after_threshold(self):
        pred = CorrelatingDeadBlockPredictor()
        llc = make_llc(pred)
        b = block_of(5)
        self.train(pred, llc, b, 7)
        llc.fill(b, now=100)
        assert llc.probe(b) is None
        assert llc.stats.get("bypasses") == 1
        assert pred.stats.get("doa_predictions") == 1

    def test_no_bypass_below_threshold(self):
        pred = CorrelatingDeadBlockPredictor()
        llc = make_llc(pred)
        b = block_of(5)
        self.train(pred, llc, b, 6)
        llc.fill(b, now=100)
        assert llc.probe(b) is not None

    def test_no_bypass_when_page_left_pfq(self):
        pred = CorrelatingDeadBlockPredictor(CbPredConfig(pfq_entries=1))
        llc = make_llc(pred)
        b = block_of(5)
        self.train(pred, llc, b, 7)
        pred.notify_doa_page(9)  # displaces pfn 5 from the 1-entry PFQ
        llc.fill(b, now=100)
        assert llc.probe(b) is not None  # allocated: filter says non-DOA page
        assert not llc.probe(b).dp

    def test_observer_called_only_on_pfq_match(self):
        seen = []
        pred = CorrelatingDeadBlockPredictor(
            prediction_observer=lambda b, doa: seen.append((b, doa))
        )
        llc = make_llc(pred)
        llc.fill(block_of(3), now=0)
        assert seen == []
        pred.notify_doa_page(5)
        llc.fill(block_of(5), now=1)
        assert seen == [(block_of(5), False)]


class TestDpBitScoping:
    def test_dp_flag_does_not_leak_to_next_fill(self):
        pred = CorrelatingDeadBlockPredictor()
        llc = make_llc(pred)
        pred.notify_doa_page(5)
        llc.fill(block_of(5), now=0)  # DP set
        llc.fill(block_of(3), now=1)  # different page, no PFQ match
        assert not llc.probe(block_of(3)).dp


class TestStorage:
    def test_paper_storage_budget(self):
        """Section V-D: ~9.54 KB for a 2MB LLC (32768 blocks)."""
        pred = CorrelatingDeadBlockPredictor()
        bits = pred.storage_bits(llc_blocks=32768)
        assert bits == 2 * 32768 + 3 * 4096 + 39 * 8
        assert abs(bits / 8 / 1024 - 9.54) < 0.05


class TestConfigValidation:
    def test_threshold_must_fit(self):
        with pytest.raises(ValueError):
            CorrelatingDeadBlockPredictor(
                CbPredConfig(counter_bits=3, threshold=9)
            )

    def test_bhist_entries_power_of_two(self):
        with pytest.raises(ValueError):
            CorrelatingDeadBlockPredictor(CbPredConfig(bhist_entries=1000))
