"""Ablations beyond the paper's own sensitivity study (DESIGN.md §6).

* **Bypass vs demote** — the paper bypasses predicted-DOA pages; its SHiP
  adaptation demotes to LRU instead. Running *dpPred's own prediction*
  with both actions isolates how much of the win is the bypass mechanism
  versus the prediction quality.
* **Threshold sweep** — Section V-A fixes the confidence threshold at 6;
  the sweep shows the accuracy/coverage trade-off that choice sits on
  (canneal/Triangle are called out as cases where 6 is "too conservative").
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.stats import arithmetic_mean, geometric_mean
from repro.experiments.common import baseline, run_suite
from repro.experiments.report import ExperimentReport
from repro.sim.config import fast_config
from repro.workloads.suite import DEFAULT_BUDGET, workload_names


def ablation_bypass_vs_demote(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Does dpPred need to bypass, or is LRU demotion enough?"""
    configs = {
        "base": baseline(),
        "bypass": fast_config(tlb_predictor="dppred"),
        "demote": fast_config(tlb_predictor="dppred_demote"),
    }
    suite = run_suite(configs, budget)
    report = ExperimentReport(
        "ablation_action", "dpPred action ablation: bypass vs LRU demotion"
    )
    rows = []
    gains = {"bypass": [], "demote": []}
    reds = {"bypass": [], "demote": []}
    for wl in workload_names():
        row = [wl]
        for cfg in ("bypass", "demote"):
            gains[cfg].append(suite.ipc_vs(wl, cfg, "base"))
            reds[cfg].append(suite.llt_mpki_reduction(wl, cfg, "base"))
            row.extend([gains[cfg][-1], reds[cfg][-1]])
        rows.append(tuple(row))
    rows.append(
        ("MEAN",
         geometric_mean(gains["bypass"]), arithmetic_mean(reds["bypass"]),
         geometric_mean(gains["demote"]), arithmetic_mean(reds["demote"]))
    )
    report.add_table(
        ["workload", "bypass IPCx", "bypass MPKI red%",
         "demote IPCx", "demote MPKI red%"],
        rows,
    )
    report.add_note(
        "bypass avoids the allocation entirely (no victim at all); "
        "demotion still evicts one entry per predicted-DOA fill and burns "
        "a way until the next fill — the gap quantifies Section V-A's "
        "design choice"
    )
    return report


def ablation_threshold(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Sweep dpPred's confidence threshold (paper default: 6)."""
    thresholds = (1, 3, 5, 6, 7)
    configs = {"base": baseline()}
    for t in thresholds:
        configs[f"t{t}"] = replace(
            fast_config(tlb_predictor="dppred", track_reference=True),
            dppred_threshold=t,
        )
    suite = run_suite(configs, budget)
    report = ExperimentReport(
        "ablation_threshold", "dpPred confidence-threshold sweep"
    )
    rows = []
    for t in thresholds:
        reds, accs, covs = [], [], []
        for wl in workload_names():
            reds.append(suite.llt_mpki_reduction(wl, f"t{t}", "base"))
            result = suite.result(wl, f"t{t}")
            if result.tlb_accuracy is not None:
                accs.append(100 * result.tlb_accuracy)
            if result.tlb_coverage is not None:
                covs.append(100 * result.tlb_coverage)
        rows.append(
            (f"threshold {t}",
             arithmetic_mean(reds),
             arithmetic_mean(accs) if accs else None,
             arithmetic_mean(covs) if covs else None)
        )
    report.add_table(
        ["configuration", "mean LLT MPKI red%", "mean acc%", "mean cov%"],
        rows,
    )
    report.add_note(
        "lower thresholds raise coverage but cost accuracy — the paper "
        "picks 6 to guarantee no application regresses (Section VI-C)"
    )
    return report
