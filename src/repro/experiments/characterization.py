"""Characterisation experiments: Figures 1-4 and Table III (Section IV).

These run the *baseline* machine with residency tracking and report the
deadness structure of the LLT and the LLC, plus the dead-block/dead-page
correlation that motivates cbPred.
"""

from __future__ import annotations

from typing import Dict

from repro.common.stats import arithmetic_mean
from repro.experiments import paperdata
from repro.experiments.common import characterization, run_suite
from repro.experiments.report import ExperimentReport
from repro.workloads.suite import DEFAULT_BUDGET, workload_names


def _characterization_suite(budget: int):
    return run_suite({"char": characterization()}, budget)


def fig1_llt_deadness(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 1: fraction of LLT entries dead / DOA at any time."""
    suite = _characterization_suite(budget)
    report = ExperimentReport(
        "fig1", "Fraction of LLT entries dead or DOA at any time"
    )
    rows = []
    dead_vals, doa_vals = [], []
    for wl in workload_names():
        summary = suite.result(wl, "char").llt_residency
        dead = 100 * summary.dead_fraction
        doa = 100 * summary.doa_fraction
        dead_vals.append(dead)
        doa_vals.append(doa)
        rows.append((wl, dead, doa))
    rows.append(("AVERAGE", arithmetic_mean(dead_vals), arithmetic_mean(doa_vals)))
    report.add_table(["workload", "dead %", "DOA %"], rows)
    report.add_note(
        f"paper: {paperdata.FIG1_AVG_LLT_DEAD:.1f}% of LLT entries dead on "
        f"average; {paperdata.FIG1_AVG_LLT_DOA:.1f}% DOA (Sections IV-A/IV-C)"
    )
    return report


def fig2_llt_eviction_classes(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 2: eviction-time classification of LLT entries."""
    suite = _characterization_suite(budget)
    report = ExperimentReport(
        "fig2", "Classification of dead pages in LLT (at eviction)"
    )
    rows = []
    doa_share_vals = []
    for wl in workload_names():
        summary = suite.result(wl, "char").llt_residency
        doa = 100 * summary.doa_eviction_fraction
        mostly = 100 * summary.mostly_dead_eviction_fraction
        total_dead = doa + mostly
        doa_share = 100 * doa / total_dead if total_dead else 0.0
        doa_share_vals.append(doa_share)
        rows.append((wl, total_dead, mostly, doa, doa_share))
    rows.append(
        ("AVERAGE", None, None, None, arithmetic_mean(doa_share_vals))
    )
    report.add_table(
        ["workload", "dead-evict %", "mostly-dead %", "DOA %",
         "DOA share of dead %"],
        rows,
    )
    report.add_note(
        f"paper: >{paperdata.FIG2_AVG_DOA_SHARE_OF_DEAD:.0f}% of dead LLT "
        "evictions are DOA, on average (Section IV-A)"
    )
    return report


def fig3_llc_deadness(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 3: fraction of LLC blocks dead / DOA at any time."""
    suite = _characterization_suite(budget)
    report = ExperimentReport(
        "fig3", "Fraction of LLC entries dead or DOA at any time"
    )
    rows = []
    dead_vals, doa_vals = [], []
    for wl in workload_names():
        summary = suite.result(wl, "char").llc_residency
        dead = 100 * summary.dead_fraction
        doa = 100 * summary.doa_fraction
        dead_vals.append(dead)
        doa_vals.append(doa)
        rows.append((wl, dead, doa))
    rows.append(("AVERAGE", arithmetic_mean(dead_vals), arithmetic_mean(doa_vals)))
    report.add_table(["workload", "dead %", "DOA %"], rows)
    report.add_note(
        f"paper: ~{paperdata.FIG3_AVG_LLC_DEAD:.0f}% of LLC blocks dead at "
        f"any time; {paperdata.FIG3_AVG_LLC_DOA:.1f}% of blocks DOA"
    )
    return report


def fig4_llc_eviction_classes(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 4: eviction-time classification of LLC blocks."""
    suite = _characterization_suite(budget)
    report = ExperimentReport(
        "fig4", "Classification of dead blocks in LLC (at eviction)"
    )
    rows = []
    for wl in workload_names():
        summary = suite.result(wl, "char").llc_residency
        doa = 100 * summary.doa_eviction_fraction
        mostly = 100 * summary.mostly_dead_eviction_fraction
        rows.append((wl, doa + mostly, mostly, doa))
    report.add_table(
        ["workload", "dead-evict %", "mostly-dead %", "DOA %"], rows
    )
    report.add_note(
        "paper: a significant fraction of dead LLC evictions are DOA, "
        "in line with [Faldu & Grot, WDDD'16]"
    )
    return report


def table3_doa_correlation(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Table III: % of LLC DOA blocks that map onto a DOA page."""
    suite = _characterization_suite(budget)
    report = ExperimentReport(
        "table3", "Percentage of LLC DOA blocks that map onto a DOA page"
    )
    rows = []
    vals = []
    for wl in workload_names():
        result = suite.result(wl, "char")
        measured = 100 * result.doa_block_on_doa_page_fraction
        vals.append(measured)
        rows.append(
            (wl, measured, paperdata.TABLE3_DOA_BLOCKS_ON_DOA_PAGE[wl])
        )
    rows.append(("AVERAGE", arithmetic_mean(vals), paperdata.TABLE3_AVG))
    report.add_table(["workload", "measured %", "paper %"], rows)
    return report


def characterization_summary(budget: int = DEFAULT_BUDGET) -> Dict[str, float]:
    """Headline averages used by tests and EXPERIMENTS.md."""
    suite = _characterization_suite(budget)
    llt_dead, llt_doa_share, llc_dead, corr = [], [], [], []
    for wl in workload_names():
        r = suite.result(wl, "char")
        llt_dead.append(r.llt_residency.dead_fraction)
        dead_ev = r.llt_residency.dead_eviction_fraction
        if dead_ev:
            llt_doa_share.append(
                r.llt_residency.doa_eviction_fraction / dead_ev
            )
        llc_dead.append(r.llc_residency.dead_fraction)
        if r.doa_blocks_classified:
            corr.append(r.doa_block_on_doa_page_fraction)
    return {
        "avg_llt_dead": 100 * arithmetic_mean(llt_dead),
        "avg_llt_doa_share_of_dead": 100 * arithmetic_mean(llt_doa_share),
        "avg_llc_dead": 100 * arithmetic_mean(llc_dead),
        "avg_doa_block_on_doa_page": 100 * arithmetic_mean(corr),
    }
