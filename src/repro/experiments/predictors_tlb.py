"""TLB-predictor experiments: Figure 9, Table IV, Table VI (Section VI-A/C)."""

from __future__ import annotations

from repro.common.stats import arithmetic_mean, geometric_mean
from repro.experiments import paperdata
from repro.experiments.common import (
    aip_tlb,
    baseline,
    dppred,
    dppred_no_shadow,
    iso_storage,
    oracle_tlb,
    run_suite,
    ship_tlb,
)
from repro.experiments.report import ExperimentReport
from repro.workloads.suite import DEFAULT_BUDGET, workload_names

_FIG9_CONFIGS = {
    "base": baseline(),
    "aip_tlb": aip_tlb(),
    "ship_tlb": ship_tlb(),
    "dppred": dppred(),
    "iso": iso_storage(),
}


def fig9_tlb_predictor_ipc(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 9: normalized IPC of TLB dead-page predictors."""
    suite = run_suite(_FIG9_CONFIGS, budget)
    report = ExperimentReport(
        "fig9", "Normalized IPC for TLB dead page predictors"
    )
    rows = []
    gains = {name: [] for name in ("aip_tlb", "ship_tlb", "dppred", "iso")}
    for wl in workload_names():
        row = [wl]
        for cfg in ("aip_tlb", "ship_tlb", "dppred", "iso"):
            speedup = suite.ipc_vs(wl, cfg, "base")
            gains[cfg].append(speedup)
            row.append(speedup)
        rows.append(tuple(row))
    rows.append(
        ("GEOMEAN", *[geometric_mean(gains[c]) for c in
                      ("aip_tlb", "ship_tlb", "dppred", "iso")])
    )
    report.add_table(
        ["workload", "AIP-TLB", "SHiP-TLB", "dpPred", "iso-storage"], rows
    )
    report.add_note(
        f"paper: dpPred improves IPC by {paperdata.FIG9_AVG_DPPRED_IPC_GAIN}% "
        f"on average; cactusADM by ~{paperdata.FIG9_CACTUSADM_DPPRED_IPC}x; "
        "AIP-TLB provides almost no improvement"
    )
    return report


def table4_llt_mpki(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Table IV: LLT MPKI reductions by dead page predictors."""
    configs = dict(_FIG9_CONFIGS)
    configs["oracle"] = oracle_tlb()
    suite = run_suite(configs, budget)
    report = ExperimentReport("table4", "LLT MPKI reductions (%)")
    rows = []
    avgs = {name: [] for name in ("aip_tlb", "ship_tlb", "dppred", "iso", "oracle")}
    for wl in workload_names():
        row = [wl]
        for cfg in ("aip_tlb", "ship_tlb", "dppred", "iso", "oracle"):
            red = suite.llt_mpki_reduction(wl, cfg, "base")
            avgs[cfg].append(red)
            row.append(red)
        row.append(paperdata.TABLE4_LLT_MPKI_REDUCTION[wl][2])  # paper dpPred
        rows.append(tuple(row))
    rows.append(
        ("AVERAGE",
         *[arithmetic_mean(avgs[c]) for c in
           ("aip_tlb", "ship_tlb", "dppred", "iso", "oracle")],
         paperdata.TABLE4_AVG_DPPRED)
    )
    report.add_table(
        ["workload", "AIP-TLB", "SHiP-TLB", "dpPred", "Iso-TLB", "Oracle",
         "paper dpPred"],
        rows,
    )
    report.add_note(
        f"paper averages: dpPred {paperdata.TABLE4_AVG_DPPRED}%, "
        f"oracle {paperdata.TABLE4_AVG_ORACLE}%"
    )
    return report


def table6_dppred_accuracy(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Table VI: accuracy and coverage of dead page predictors."""
    configs = {
        "dppred": dppred(),
        "dppred_sh": dppred_no_shadow(),
        "ship_tlb": ship_tlb(),
    }
    suite = run_suite(configs, budget)
    report = ExperimentReport(
        "table6", "Accuracy / coverage for dead page predictors (%)"
    )
    rows = []
    accs = []
    for wl in workload_names():
        row = [wl]
        for cfg in ("dppred", "dppred_sh", "ship_tlb"):
            result = suite.result(wl, cfg)
            acc = result.tlb_accuracy
            cov = result.tlb_coverage
            row.append(100 * acc if acc is not None else None)
            row.append(100 * cov if cov is not None else None)
            if cfg == "dppred" and acc is not None:
                accs.append(100 * acc)
        paper_acc, paper_cov = paperdata.TABLE6_TLB_ACC_COV[wl][0]
        row.append(f"{paper_acc}/{paper_cov}")
        rows.append(tuple(row))
    report.add_table(
        ["workload", "dp acc", "dp cov", "dp-SH acc", "dp-SH cov",
         "SHiP acc", "SHiP cov", "paper dp acc/cov"],
        rows,
    )
    if accs:
        report.add_note(
            f"measured mean dpPred accuracy: {arithmetic_mean(accs):.1f}% "
            f"(paper: {paperdata.TABLE6_AVG_DPPRED_ACCURACY}%)"
        )
    return report
