"""LLC-predictor experiments: Figure 10, Table V, Table VII (Section VI-B/C)."""

from __future__ import annotations

from repro.common.stats import arithmetic_mean, geometric_mean
from repro.experiments import paperdata
from repro.experiments.common import (
    aip_both,
    aip_llc,
    baseline,
    combined,
    combined_no_pfq,
    run_suite,
    ship_both,
    ship_llc,
)
from repro.experiments.report import ExperimentReport
from repro.workloads.suite import DEFAULT_BUDGET, workload_names

_FIG10_CONFIGS = {
    "base": baseline(),
    "aip_llc": aip_llc(),
    "ship_llc": ship_llc(),
    "aip_both": aip_both(),
    "ship_both": ship_both(),
    "cbpred": combined(),
}

_FIG10_ORDER = ("aip_llc", "ship_llc", "aip_both", "ship_both", "cbpred")


def fig10_llc_predictor_ipc(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 10: normalized IPC for LLC / combined predictors."""
    suite = run_suite(_FIG10_CONFIGS, budget)
    report = ExperimentReport(
        "fig10",
        "Normalized IPC for LLC dead block predictors / combined predictors",
    )
    rows = []
    gains = {name: [] for name in _FIG10_ORDER}
    for wl in workload_names():
        row = [wl]
        for cfg in _FIG10_ORDER:
            speedup = suite.ipc_vs(wl, cfg, "base")
            gains[cfg].append(speedup)
            row.append(speedup)
        rows.append(tuple(row))
    rows.append(
        ("GEOMEAN", *[geometric_mean(gains[c]) for c in _FIG10_ORDER])
    )
    report.add_table(
        ["workload", "AIP-LLC", "SHiP-LLC", "AIP-TLB+LLC", "SHiP-TLB+LLC",
         "dpPred+cbPred"],
        rows,
    )
    report.add_note(
        f"paper: combined dpPred+cbPred improves geomean IPC by "
        f"{paperdata.FIG10_AVG_COMBINED_IPC_GAIN}% and improves performance "
        "for all 14 applications (its peers do not)"
    )
    return report


def table5_llc_mpki(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Table V: LLC MPKI reductions by dead block predictors."""
    configs = {
        "base": baseline(),
        "aip_llc": aip_llc(),
        "ship_llc": ship_llc(),
        "cbpred": combined(),
    }
    suite = run_suite(configs, budget)
    report = ExperimentReport("table5", "LLC MPKI reductions (%)")
    rows = []
    avgs = {name: [] for name in ("aip_llc", "ship_llc", "cbpred")}
    for wl in workload_names():
        row = [wl]
        for cfg in ("aip_llc", "ship_llc", "cbpred"):
            red = suite.llc_mpki_reduction(wl, cfg, "base")
            avgs[cfg].append(red)
            row.append(red)
        row.append(paperdata.TABLE5_LLC_MPKI_REDUCTION[wl][2])  # paper cbPred
        rows.append(tuple(row))
    rows.append(
        ("AVERAGE",
         *[arithmetic_mean(avgs[c]) for c in ("aip_llc", "ship_llc", "cbpred")],
         paperdata.TABLE5_AVG_CBPRED)
    )
    report.add_table(
        ["workload", "AIP-LLC", "SHiP-LLC", "cbPred", "paper cbPred"], rows
    )
    report.add_note(
        "paper: cbPred never increases misses significantly, unlike AIP/SHiP"
    )
    return report


def table7_cbpred_accuracy(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Table VII: accuracy and coverage of dead block predictors."""
    configs = {
        "cbpred": combined(),
        "cbpred_nopfq": combined_no_pfq(),
        "ship_llc": ship_llc(),
    }
    suite = run_suite(configs, budget)
    report = ExperimentReport(
        "table7", "Accuracy / coverage for dead block predictors (%)"
    )
    rows = []
    cb_accs = []
    for wl in workload_names():
        row = [wl]
        for cfg in ("cbpred", "cbpred_nopfq", "ship_llc"):
            result = suite.result(wl, cfg)
            acc = result.llc_accuracy
            cov = result.llc_coverage
            row.append(100 * acc if acc is not None else None)
            row.append(100 * cov if cov is not None else None)
            if cfg == "cbpred" and acc is not None:
                cb_accs.append(100 * acc)
        paper_acc, paper_cov = paperdata.TABLE7_LLC_ACC_COV[wl][0]
        row.append(f"{paper_acc}/{paper_cov}")
        rows.append(tuple(row))
    report.add_table(
        ["workload", "cb acc", "cb cov", "cb-PFQ acc", "cb-PFQ cov",
         "SHiP acc", "SHiP cov", "paper cb acc/cov"],
        rows,
    )
    if cb_accs:
        report.add_note(
            f"measured mean cbPred accuracy: {arithmetic_mean(cb_accs):.1f}% "
            "(paper: >=98% everywhere, thanks to PFQ pre-filtering)"
        )
    return report
