"""Sensitivity studies: Figure 11a-f (Section VI-E).

Swept parameters are scaled by the fast profile's factor of 8 (DESIGN.md
§5): the paper's 512/1024/1536-entry LLTs become 64/128/192 entries, the
2/3 MB LLCs become 256/384 KB, and the predictor-table knobs (pHIST
indexing, shadow entries, PFQ entries) are swept at the paper's values.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.stats import geometric_mean
from repro.experiments import paperdata
from repro.experiments.common import run_suite
from repro.experiments.report import ExperimentReport
from repro.sim.config import fast_config, scale_llc, scale_llt
from repro.workloads.suite import DEFAULT_BUDGET, workload_names


def _normalized_ipc_report(
    report_id, title, variants, budget, note=None
):
    """Each variant is (label, baseline_config, predictor_config); the bar
    is predictor IPC / its own baseline IPC, per the paper's figures."""
    configs = {}
    for label, base_cfg, pred_cfg in variants:
        configs[f"{label}/base"] = base_cfg
        configs[f"{label}/pred"] = pred_cfg
    suite = run_suite(configs, budget)
    report = ExperimentReport(report_id, title)
    rows = []
    gains = {label: [] for label, _, _ in variants}
    for wl in workload_names():
        row = [wl]
        for label, _, _ in variants:
            speedup = suite.ipc_vs(wl, f"{label}/pred", f"{label}/base")
            gains[label].append(speedup)
            row.append(speedup)
        rows.append(tuple(row))
    rows.append(
        ("GEOMEAN", *[geometric_mean(gains[label]) for label, _, _ in variants])
    )
    report.add_table(
        ["workload"] + [label for label, _, _ in variants], rows
    )
    if note:
        report.add_note(note)
    return report


def fig11a_llt_size(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 11a: dpPred across LLT sizes (paper 512/1024/1536 -> /8)."""
    variants = []
    for entries, label in ((64, "64 entries"), (128, "128 entries"),
                           (192, "192 entries")):
        base = scale_llt(fast_config(), entries)
        variants.append(
            (label, base, base.with_predictors(tlb="dppred"))
        )
    return _normalized_ipc_report(
        "fig11a",
        "dpPred IPC across LLT sizes (scaled from 512/1024/1536)",
        variants,
        budget,
        note="paper: gains are muted at 1536 entries except cactusADM/lbm, "
             "which thrash smaller LLTs; dpPred remains useful at all sizes",
    )


def fig11b_phist_indexing(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 11b: pHIST indexing functions (6+5 / 6+4 / 10-bit PC)."""
    base = fast_config()
    variants = []
    for label, pc_bits, vpn_bits in (
        ("6b PC + 5b VPN", 6, 5),
        ("6b PC + 4b VPN", 6, 4),
        ("10b PC only", 10, 0),
    ):
        pred = replace(
            base,
            tlb_predictor="dppred",
            dppred_pc_bits=pc_bits,
            dppred_vpn_bits=vpn_bits,
        )
        variants.append((label, base, pred))
    return _normalized_ipc_report(
        "fig11b",
        "dpPred IPC across pHIST indexing configurations",
        variants,
        budget,
        note="paper: mixed 6-bit PC + 4-bit VPN performs on par with a "
             "10-bit pure-PC index at lower per-entry storage; doubling the "
             "table (6+5) helps slightly",
    )


def fig11c_shadow_size(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 11c: shadow-table size (2 vs 4 entries)."""
    base = fast_config()
    variants = []
    for entries in (2, 4):
        pred = replace(
            base, tlb_predictor="dppred", dppred_shadow_entries=entries
        )
        variants.append((f"{entries}-entry shadow", base, pred))
    return _normalized_ipc_report(
        "fig11c",
        "dpPred IPC across shadow table sizes",
        variants,
        budget,
        note="paper: growing the shadow table from 2 to 4 entries slightly "
             "degrades performance (coverage loss), so 2 is the default",
    )


def fig11d_pfq_size(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 11d: PFQ size (8 vs 64 entries)."""
    base = fast_config()
    variants = []
    for entries in (8, 64):
        pred = replace(
            base,
            tlb_predictor="dppred",
            llc_predictor="cbpred",
            cbpred_pfq_entries=entries,
        )
        variants.append((f"{entries}-entry PFQ", base, pred))
    return _normalized_ipc_report(
        "fig11d",
        "cbPred IPC across PFQ sizes",
        variants,
        budget,
        note="paper: growing the PFQ from 8 to 64 entries has no noticeable "
             "effect, so 8 is the default",
    )


def fig11e_llc_size(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 11e: combined predictors across LLC sizes (2 vs 3 MB, /8)."""
    variants = []
    for factor, label in ((1.0, "256KB (2MB/8)"), (1.5, "384KB (3MB/8)")):
        base = scale_llc(fast_config(), factor)
        variants.append(
            (label, base,
             base.with_predictors(tlb="dppred", llc="cbpred"))
        )
    return _normalized_ipc_report(
        "fig11e",
        "dpPred+cbPred IPC across LLC sizes",
        variants,
        budget,
        note=f"paper: benefits reduce slightly at 3MB/core but remain "
             f"substantial ({paperdata.FIG11E_AVG_3MB}% on average)",
    )


def fig11f_srrip(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Figure 11f: predictors under SRRIP replacement.

    Four bars per workload, all normalized to the all-LRU baseline:
    SRRIP in the LLT; dpPred on an SRRIP LLT; SRRIP in LLT+LLC; and
    dpPred+cbPred on SRRIP LLT+LLC.
    """
    lru = fast_config()
    srrip_llt = replace(lru, tlb_policy="srrip")
    srrip_both = replace(lru, tlb_policy="srrip", cache_policy="lru",
                         llc_policy="srrip")
    variants = [
        ("SRRIP LLT", lru, srrip_llt),
        ("SRRIP+dpPred", lru, srrip_llt.with_predictors(tlb="dppred")),
        ("SRRIP LLT+LLC", lru, srrip_both),
        ("SRRIP+dp+cb", lru,
         srrip_both.with_predictors(tlb="dppred", llc="cbpred")),
    ]
    return _normalized_ipc_report(
        "fig11f",
        "Predictors under SRRIP replacement (normalized to LRU baseline)",
        variants,
        budget,
        note=f"paper: dpPred adds ~{paperdata.FIG11F_AVG_DPPRED_OVER_SRRIP_LLT}"
             f"% on top of an SRRIP LLT; dpPred+cbPred add "
             f"{paperdata.FIG11F_AVG_COMBINED_OVER_SRRIP}% over SRRIP LLT+LLC",
    )
