"""Storage-overhead accounting: Sections V-D and VI-D.

Purely analytic — it instantiates the predictors and sums their state
bits, at both the paper scale (1024-entry LLT, 2 MB LLC) and the fast
profile's scale, and compares against AIP and SHiP budgets.
"""

from __future__ import annotations

from repro.core.cbpred import CbPredConfig, CorrelatingDeadBlockPredictor
from repro.core.dppred import DeadPagePredictor, DpPredConfig
from repro.experiments import paperdata
from repro.experiments.report import ExperimentReport
from repro.predictors.aip import AipCachePredictor, AipTlbPredictor
from repro.predictors.base import AccessContext
from repro.predictors.ship import ShipCachePredictor, ShipConfig, ShipTlbPredictor
from repro.sim.config import fast_config, paper_config


def storage_breakdown(llt_entries: int, llc_blocks: int, bhist_entries: int):
    """Per-predictor storage in bytes for a given machine scale."""
    dp = DeadPagePredictor(DpPredConfig())
    cb = CorrelatingDeadBlockPredictor(
        CbPredConfig(bhist_entries=bhist_entries)
    )
    ctx = AccessContext()
    ship_t = ShipTlbPredictor(ShipConfig(signature_bits=8))
    ship_c = ShipCachePredictor(ctx, ShipConfig(signature_bits=14))
    aip_t = AipTlbPredictor()
    aip_c = AipCachePredictor(ctx)
    return {
        "dpPred": dp.storage_bits(llt_entries) / 8,
        "cbPred": cb.storage_bits(llc_blocks) / 8,
        "dpPred+cbPred": (
            dp.storage_bits(llt_entries) + cb.storage_bits(llc_blocks)
        ) / 8,
        "SHiP (TLB+LLC)": (
            ship_t.storage_bits(llt_entries) + ship_c.storage_bits(llc_blocks)
        ) / 8,
        "AIP (TLB+LLC)": (
            aip_t.storage_bits(llt_entries) + aip_c.storage_bits(llc_blocks)
        ) / 8,
    }


def storage_overhead() -> ExperimentReport:
    """The storage comparison of Section VI-D."""
    report = ExperimentReport(
        "storage", "Predictor storage overhead (Sections V-D / VI-D)"
    )
    paper = paper_config()
    fast = fast_config()

    paper_scale = storage_breakdown(
        paper.l2_tlb.entries, paper.llc.blocks, paper.cbpred_bhist_entries
    )
    rows = [
        (name, bytes_ / 1024.0) for name, bytes_ in paper_scale.items()
    ]
    report.add_table(
        ["predictor", "storage (KB), paper scale"],
        rows,
        title="Paper scale: 1024-entry LLT, 2 MB LLC",
    )

    fast_scale = storage_breakdown(
        fast.l2_tlb.entries, fast.llc.blocks, fast.cbpred_bhist_entries
    )
    rows = [(name, bytes_ / 1024.0) for name, bytes_ in fast_scale.items()]
    report.add_table(
        ["predictor", "storage (KB), fast profile"],
        rows,
        title="Fast profile: 128-entry LLT, 256 KB LLC",
    )

    report.add_note(
        f"paper: dpPred {paperdata.STORAGE_DPPRED_BYTES} B, cbPred "
        f"{paperdata.STORAGE_CBPRED_KB} KB, total "
        f"{paperdata.STORAGE_TOTAL_KB} KB vs AIP {paperdata.STORAGE_AIP_KB} "
        f"KB and SHiP {paperdata.STORAGE_SHIP_KB} KB — 1/6th to 1/11th of "
        "the alternatives"
    )
    return report
