"""Experiment registry: one entry per paper table/figure (DESIGN.md §4)."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments.ablations import (
    ablation_bypass_vs_demote,
    ablation_threshold,
)
from repro.experiments.extensions import extension_prefetch
from repro.experiments.frontier import predictor_frontier
from repro.experiments.characterization import (
    fig1_llt_deadness,
    fig2_llt_eviction_classes,
    fig3_llc_deadness,
    fig4_llc_eviction_classes,
    table3_doa_correlation,
)
from repro.experiments.predictors_llc import (
    fig10_llc_predictor_ipc,
    table5_llc_mpki,
    table7_cbpred_accuracy,
)
from repro.experiments.predictors_tlb import (
    fig9_tlb_predictor_ipc,
    table4_llt_mpki,
    table6_dppred_accuracy,
)
from repro.experiments.sensitivity import (
    fig11a_llt_size,
    fig11b_phist_indexing,
    fig11c_shadow_size,
    fig11d_pfq_size,
    fig11e_llc_size,
    fig11f_srrip,
)
from repro.experiments.storage import storage_overhead
from repro.experiments.tenancy import tenancy_mix

#: id -> callable producing an ExperimentReport. Callables accept an
#: optional ``budget`` keyword except ``storage`` (analytic).
EXPERIMENTS: Dict[str, Callable] = {
    "fig1": fig1_llt_deadness,
    "fig2": fig2_llt_eviction_classes,
    "fig3": fig3_llc_deadness,
    "fig4": fig4_llc_eviction_classes,
    "table3": table3_doa_correlation,
    "fig9": fig9_tlb_predictor_ipc,
    "table4": table4_llt_mpki,
    "table6": table6_dppred_accuracy,
    "fig10": fig10_llc_predictor_ipc,
    "table5": table5_llc_mpki,
    "table7": table7_cbpred_accuracy,
    "fig11a": fig11a_llt_size,
    "fig11b": fig11b_phist_indexing,
    "fig11c": fig11c_shadow_size,
    "fig11d": fig11d_pfq_size,
    "fig11e": fig11e_llc_size,
    "fig11f": fig11f_srrip,
    "storage": storage_overhead,
    # Ablations beyond the paper (DESIGN.md §6).
    "ablation_action": ablation_bypass_vs_demote,
    "ablation_threshold": ablation_threshold,
    "extension_prefetch": extension_prefetch,
    "tenancy": tenancy_mix,
    "predictor_frontier": predictor_frontier,
}


def run_experiment(experiment_id: str, **kwargs):
    """Run one experiment by id; returns its ExperimentReport."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        ) from None
    if experiment_id == "storage":
        return fn()
    return fn(**kwargs)
