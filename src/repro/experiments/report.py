"""ASCII report rendering for experiment output."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned fixed-width text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(
            " | ".join(
                cell.rjust(w) if _numeric(cell) else cell.ljust(w)
                for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def render_bar(value: float, scale: float = 1.0, width: int = 30) -> str:
    """A crude horizontal bar for figure-style output."""
    n = max(0, min(width, int(round(value / scale))))
    return "#" * n


#: Density ramp for :func:`render_sparkline`, lightest to darkest.
_SPARK_LEVELS = " .:-=+*#%@"


def render_sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line ASCII sparkline of a time series.

    Values are min-max normalised onto a ten-level density ramp; longer
    series are bucket-averaged down to ``width`` characters. Used to eyeball
    telemetry timelines (per-interval MPKI, IPC) in terminal reports.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        bucket = len(values) / width
        values = [
            arithmetic_mean_slice(values, int(i * bucket), int((i + 1) * bucket))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int(round((v - lo) / span * top))] for v in values
    )


def arithmetic_mean_slice(values: Sequence[float], lo: int, hi: int) -> float:
    """Mean of ``values[lo:hi]`` (``hi`` clamped, empty slices fall back
    to the single element at ``lo``)."""
    chunk = values[lo:max(hi, lo + 1)]
    return sum(chunk) / len(chunk)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _numeric(cell: str) -> bool:
    if cell in ("-", ""):
        return True
    try:
        float(cell.rstrip("%x"))
        return True
    except ValueError:
        return False


class ExperimentReport:
    """Collects a titled set of tables/notes and renders them together."""

    def __init__(self, experiment_id: str, title: str):
        self.experiment_id = experiment_id
        self.title = title
        self._sections: List[str] = []

    def add_table(self, headers, rows, title=None) -> None:
        self._sections.append(render_table(headers, rows, title))

    def add_note(self, text: str) -> None:
        self._sections.append(text)

    def render(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        return "\n\n".join([header] + self._sections)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
