"""Multi-tenant consolidation experiment (beyond the paper, DESIGN.md §6).

The paper evaluates dpPred/cbPred on one address space at a time. This
experiment asks whether the predictors survive consolidation: the ``mix2``
/ ``mix4`` workloads interleave suite traces in separate ASID-tagged
address spaces (context switches shoot down the outgoing tenant's TLB and
PWC entries, per :func:`~repro.sim.config.mix2_config`), and each mix is
compared against its own components run standalone at the same per-tenant
budget — the components are byte-identical traces, so every delta is the
consolidation itself. A final section runs the combined predictor with
half the address space on 2 MB huge pages (``hugepage`` profile), where
splintered LLT fills and shortened walks shift the dead-page signal.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import baseline, run_suite
from repro.experiments.report import ExperimentReport
from repro.sim.config import hugepage_config, mix2_config, mix4_config
from repro.workloads.suite import DEFAULT_BUDGET
from repro.workloads.tenants import MIX_COMPONENTS

_MIX_FACTORIES = {"mix2": mix2_config, "mix4": mix4_config}

#: Workloads for the huge-page section: one streaming-heavy and one
#: pointer-chasing component, so both deadness regimes are represented.
_HUGE_WORKLOADS = ("bfs", "mcf")


def _predicted(cfg):
    """The paper's headline dpPred + cbPred pairing on ``cfg``."""
    return replace(
        cfg,
        tlb_predictor="dppred",
        llc_predictor="cbpred",
        track_reference=True,
    )


def _characterized(cfg):
    """Predictor-free ``cfg`` with Table III DOA-correlation tracking
    (the correlation tracker measures the baseline machine only)."""
    return replace(cfg, track_correlation=True)


def _rows_for(suite, workload, rows, label):
    base = suite.result(workload, "base")
    pred = suite.result(workload, "pred")
    acc = pred.tlb_accuracy
    cov = pred.tlb_coverage
    lacc = pred.llc_accuracy
    lcov = pred.llc_coverage
    rows.append((
        label,
        suite.llt_mpki_reduction(workload, "pred", "base"),
        100 * acc if acc is not None else None,
        100 * cov if cov is not None else None,
        100 * lacc if lacc is not None else None,
        100 * lcov if lcov is not None else None,
        100 * base.doa_block_on_doa_page_fraction,
        pred.speedup_over(base),
    ))


def tenancy_mix(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Predictor quality under consolidation: mixes vs their components."""
    report = ExperimentReport(
        "tenancy",
        "dpPred + cbPred under multi-tenant mixes and huge pages",
    )
    headers = [
        "run", "LLT MPKI red %", "dp acc", "dp cov", "cb acc", "cb cov",
        "DOA-on-DOA %", "speedup",
    ]
    rows = []
    for mix, components in MIX_COMPONENTS.items():
        factory = _MIX_FACTORIES[mix]
        mix_suite = run_suite(
            {"base": _characterized(factory()), "pred": _predicted(factory())},
            budget,
            workloads=[mix],
        )
        _rows_for(mix_suite, mix, rows, mix)
        per_tenant = budget // len(components)
        solo = run_suite(
            {"base": _characterized(baseline()), "pred": _predicted(baseline())},
            per_tenant,
            workloads=list(components),
        )
        for comp in components:
            _rows_for(solo, comp, rows, f"  {comp} (solo)")
    huge_suite = run_suite(
        {
            "base": _characterized(hugepage_config()),
            "pred": _predicted(hugepage_config()),
        },
        budget,
        workloads=list(_HUGE_WORKLOADS),
    )
    for wl in _HUGE_WORKLOADS:
        _rows_for(huge_suite, wl, rows, f"{wl} (2M huge)")
    report.add_table(headers, rows)
    report.add_note(
        "mix rows interleave their components in separate address spaces "
        "(shootdown on context switch); each '(solo)' row is the identical "
        "component trace run alone at the same per-tenant budget, so the "
        "delta is consolidation, not workload drift"
    )
    report.add_note(
        "huge-page rows back half the address space with 2 MB mappings: "
        "LLT fills stay 4 KB (splintered), so dpPred sees the same page "
        "granularity while walks shorten"
    )
    return report
