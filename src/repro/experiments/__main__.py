"""CLI: ``python -m repro.experiments <id> [...]`` reproduces paper artifacts.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig9
    python -m repro.experiments table4 table5 --budget 60000
    python -m repro.experiments all --jobs 4
    python -m repro.experiments fig10 --no-cache

Performance knobs: ``--jobs N`` (or ``REPRO_JOBS``) fans the declared
run matrix of each experiment out over a process pool; results are
persisted under ``.repro_cache/`` (``REPRO_CACHE_DIR`` overrides the
location, ``--no-cache`` disables persistence) so repeated invocations
skip simulation entirely.
"""

from __future__ import annotations

import argparse
import sys
import time

import repro.sim.diskcache as diskcache
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.sim.parallel import set_default_jobs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig9 table4), or 'all'",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="per-run access budget (default: REPRO_BUDGET or 120000)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for the run matrix "
        "(default: REPRO_JOBS or 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent on-disk run/trace cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--obs",
        metavar="DIR",
        default=None,
        help="observe every simulated run: write per-run telemetry "
        "artifacts (manifest, timeline CSV, events JSONL) into DIR. "
        "Cached runs carry no dynamics, so combine with --no-cache to "
        "observe a full experiment",
    )
    parser.add_argument(
        "--obs-interval",
        type=int,
        default=None,
        help="timeline sampling interval in instructions (default 10000)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:8s} {doc}")
        return 0

    if args.no_cache:
        diskcache.disable()
    else:
        diskcache.enable(args.cache_dir)
    set_default_jobs(args.jobs)
    if args.obs is not None or args.obs_interval is not None:
        from repro.obs import TelemetrySpec, enable_auto

        spec = TelemetrySpec(
            interval=args.obs_interval
            if args.obs_interval is not None
            else TelemetrySpec().interval
        )
        enable_auto(args.obs, spec)

    ids = (
        list(EXPERIMENTS)
        if args.experiments == ["all"]
        else args.experiments
    )
    for exp_id in ids:
        start = time.time()
        kwargs = {}
        if args.budget is not None and exp_id != "storage":
            kwargs["budget"] = args.budget
        report = run_experiment(exp_id, **kwargs)
        print(report.render())
        print(f"\n[{exp_id} completed in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
