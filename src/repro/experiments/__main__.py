"""CLI: ``python -m repro.experiments <id> [...]`` reproduces paper artifacts.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig9
    python -m repro.experiments table4 table5 --budget 60000
    python -m repro.experiments all --jobs 4
    python -m repro.experiments fig10 --no-cache

Performance knobs: ``--jobs N`` (or ``REPRO_JOBS``) fans the declared
run matrix of each experiment out over a process pool; results are
persisted under ``.repro_cache/`` (``REPRO_CACHE_DIR`` overrides the
location, ``--no-cache`` disables persistence) so repeated invocations
skip simulation entirely.

Resilience knobs: ``--retries`` / ``--run-timeout`` / ``--backoff``
(env ``REPRO_RETRIES`` / ``REPRO_RUN_TIMEOUT`` / ``REPRO_BACKOFF``)
bound how the executor supervises failing workers; ``--resume`` (env
``REPRO_RESUME=1``) replays the checkpoint journal of an interrupted
sweep so only unfinished cells re-execute. See EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

import repro.sim.diskcache as diskcache
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.sim.checkpoint import set_default_resume
from repro.sim.parallel import (
    RetryPolicy,
    resolve_retry,
    set_default_jobs,
    set_default_retry,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig9 table4), or 'all'",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="per-run access budget (default: REPRO_BUDGET or 120000)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for the run matrix "
        "(default: REPRO_JOBS or 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent on-disk run/trace cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay the checkpoint journal of an interrupted sweep and "
        "only execute cells it is missing (also: REPRO_RESUME=1)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="max attempts per matrix cell before the sweep fails "
        "(default: REPRO_RETRIES or 3)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock limit for pooled runs; a hung worker "
        "is killed and the cell retried (default: REPRO_RUN_TIMEOUT or "
        "unlimited)",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base delay between attempts of a failing cell, doubled per "
        "retry (default: REPRO_BACKOFF or 0.25)",
    )
    parser.add_argument(
        "--verify-cache",
        action="store_true",
        help="integrity-scan the on-disk cache (quarantining corrupt "
        "entries) and exit",
    )
    parser.add_argument(
        "--obs",
        metavar="DIR",
        default=None,
        help="observe every simulated run: write per-run telemetry "
        "artifacts (manifest, timeline CSV, events JSONL) into DIR. "
        "Cached runs carry no dynamics, so combine with --no-cache to "
        "observe a full experiment",
    )
    parser.add_argument(
        "--obs-interval",
        type=int,
        default=None,
        help="timeline sampling interval in instructions (default 10000)",
    )
    parser.add_argument(
        "--engine",
        choices=("batched", "scalar"),
        default=None,
        help="simulation engine for every run (default: REPRO_ENGINE or "
        "batched; both are bit-identical, see README 'Engines')",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        type=int,
        const=30,
        default=None,
        metavar="TOP_N",
        help="wrap each experiment in cProfile and write its top-N "
        "cumulative stats to profile-<id>.json (into --obs DIR when "
        "given, else the working directory); implies serial in-process "
        "runs, since pool workers escape the profiler",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.verify_cache:
        if args.no_cache:
            parser.error("--verify-cache needs the cache enabled")
        diskcache.enable(args.cache_dir)
        report = diskcache.verify()
        bad = report["results_bad"] + report["traces_bad"]
        print(
            f"cache {diskcache.cache_dir()}: "
            f"{report['results_ok']} results ok, "
            f"{report['results_bad']} quarantined; "
            f"{report['traces_ok']} traces ok, "
            f"{report['traces_bad']} quarantined"
        )
        return 1 if bad else 0

    if args.list or not args.experiments:
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:8s} {doc}")
        return 0

    if args.no_cache:
        diskcache.disable()
    else:
        diskcache.enable(args.cache_dir)
    if args.engine is not None:
        from repro.sim.engine import set_default_engine

        set_default_engine(args.engine)
    if args.profile is not None and args.jobs is not None and args.jobs > 1:
        parser.error("--profile requires serial runs; drop --jobs")
    set_default_jobs(1 if args.profile is not None else args.jobs)
    if args.resume:
        set_default_resume(True)
    if (
        args.retries is not None
        or args.run_timeout is not None
        or args.backoff is not None
    ):
        base = resolve_retry()  # env-derived knobs still apply underneath
        set_default_retry(
            RetryPolicy(
                max_attempts=(
                    args.retries if args.retries is not None
                    else base.max_attempts
                ),
                backoff=(
                    args.backoff if args.backoff is not None else base.backoff
                ),
                timeout=(
                    args.run_timeout if args.run_timeout is not None
                    else base.timeout
                ),
            )
        )
    if args.obs is not None or args.obs_interval is not None:
        from repro.obs import TelemetrySpec, enable_auto

        spec = TelemetrySpec(
            interval=args.obs_interval
            if args.obs_interval is not None
            else TelemetrySpec().interval
        )
        enable_auto(args.obs, spec)

    ids = (
        list(EXPERIMENTS)
        if args.experiments == ["all"]
        else args.experiments
    )
    for exp_id in ids:
        start = time.time()
        kwargs = {}
        if args.budget is not None and exp_id != "storage":
            kwargs["budget"] = args.budget
        if args.profile is not None:
            import cProfile

            from repro.obs.export import profile_stats_top, write_profile_report
            from repro.sim.engine import engine_totals, reset_engine_totals

            reset_engine_totals()
            profiler = cProfile.Profile()
            profiler.enable()
            try:
                report = run_experiment(exp_id, **kwargs)
            finally:
                profiler.disable()
            wall = time.time() - start
            rows = profile_stats_top(profiler, args.profile)
            totals = engine_totals()
            path = write_profile_report(
                args.obs if args.obs is not None else ".",
                experiment=exp_id,
                rows=rows,
                wall_time_s=wall,
                params={
                    "top_n": args.profile,
                    "budget": args.budget,
                    "engine": totals,
                },
            )
            print(report.render())
            print(f"\n[profile -> {path}]")
            for row in rows[:10]:
                print(
                    f"  {row['cumtime_s']:9.3f}s cum  "
                    f"{row['tottime_s']:9.3f}s tot  "
                    f"{row['ncalls']:>10} calls  {row['function']}"
                )
            reasons = totals["fallback_reasons"]
            declines = totals.get("flat_declines", {})
            print(
                f"  engine: {totals['batched']}/{totals['runs']} runs "
                f"batched, {totals['fallbacks']} scalar fallbacks"
                + (
                    " ("
                    + ", ".join(
                        f"{why}: {n}" for why, n in sorted(reasons.items())
                    )
                    + ")"
                    if reasons
                    else ""
                )
                + (
                    "; flat declines ("
                    + ", ".join(
                        f"{why}: {n}" for why, n in sorted(declines.items())
                    )
                    + ")"
                    if declines
                    else ""
                )
            )
        else:
            report = run_experiment(exp_id, **kwargs)
            print(report.render())
        print(f"\n[{exp_id} completed in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
