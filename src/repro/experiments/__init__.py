"""Experiment harness: one function per paper table/figure, plus a CLI."""

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import ExperimentReport, render_table

__all__ = ["EXPERIMENTS", "run_experiment", "ExperimentReport", "render_table"]
