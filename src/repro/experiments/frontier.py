"""The predictor frontier: all five predictor families head-to-head.

Beyond the paper's own comparison (dpPred/cbPred vs SHiP/AIP), this runs
the two frontier families the ROADMAP points at — Leeway-style
variability-aware reuse prediction and a hashed-perceptron bypass
predictor (see :mod:`repro.predictors.leeway` /
:mod:`repro.predictors.perceptron`) — on the six-workload engine suite,
each family cleaning *both* structures (LLT + LLC) per the paper's
"together" framing. The report carries:

* per-workload IPC speedups over the LRU baseline (+ geomean);
* LLT / LLC MPKI reductions and the walk-cycle reduction (the
  translation-side win dpPred targets);
* accuracy / coverage of the two new families against the ground-truth
  reference structures (the Tables VI/VII machinery);
* the Table III DOA-correlation anchor next to each new family's
  realised bypass rates — how much of the page↔block correlation the
  paper measures each predictor actually converts into cleaning.
"""

from __future__ import annotations

from typing import Dict

from repro.common.stats import arithmetic_mean, geometric_mean
from repro.experiments.common import (
    aip_both,
    baseline,
    characterization,
    combined,
    leeway_both,
    perceptron_both,
    run_suite,
    ship_both,
)
from repro.experiments.report import ExperimentReport
from repro.workloads.suite import DEFAULT_BUDGET, workload_names

#: The five families, each at both levels (dpPred couples cbPred).
_FAMILIES = ("dppred", "ship", "aip", "leeway", "perceptron")

#: The engine suite: the six workloads the perf gate and benchmarks use.
SUITE_WORKLOADS = 6


def _frontier_configs() -> Dict[str, object]:
    return {
        "base": baseline(),
        "dppred": combined(),
        "ship": ship_both(),
        "aip": aip_both(),
        "leeway": leeway_both(),
        "perceptron": perceptron_both(),
        "char": characterization(),
    }


def predictor_frontier(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """dpPred+cbPred vs SHiP vs AIP vs Leeway vs perceptron, both levels."""
    workloads = workload_names()[:SUITE_WORKLOADS]
    suite = run_suite(_frontier_configs(), budget, workloads=workloads)
    report = ExperimentReport(
        "predictor_frontier",
        "Predictor families head-to-head at both levels (six-workload suite)",
    )

    # IPC speedups over the LRU baseline.
    rows = []
    gains = {name: [] for name in _FAMILIES}
    for wl in workloads:
        row = [wl]
        for fam in _FAMILIES:
            speedup = suite.ipc_vs(wl, fam, "base")
            gains[fam].append(speedup)
            row.append(speedup)
        rows.append(tuple(row))
    rows.append(
        ("GEOMEAN", *[geometric_mean(gains[f]) for f in _FAMILIES])
    )
    report.add_table(
        ["workload", "dpPred+cbPred", "SHiP", "AIP", "Leeway", "perceptron"],
        rows,
    )

    # MPKI and walk-cycle deltas vs the baseline.
    rows = []
    for wl in workloads:
        base_result = suite.result(wl, "base")
        for fam in _FAMILIES:
            result = suite.result(wl, fam)
            walk_red = (
                100.0
                * (base_result.walk_cycles - result.walk_cycles)
                / base_result.walk_cycles
                if base_result.walk_cycles
                else 0.0
            )
            rows.append(
                (
                    wl,
                    fam,
                    suite.llt_mpki_reduction(wl, fam, "base"),
                    suite.llc_mpki_reduction(wl, fam, "base"),
                    walk_red,
                )
            )
    report.add_table(
        ["workload", "family", "LLT MPKI red %", "LLC MPKI red %",
         "walk-cycle red %"],
        rows,
    )

    # Accuracy / coverage of the new families (ground-truth references).
    rows = []
    for wl in workloads:
        row = [wl]
        for fam in ("leeway", "perceptron"):
            result = suite.result(wl, fam)
            for value in (
                result.tlb_accuracy, result.tlb_coverage,
                result.llc_accuracy, result.llc_coverage,
            ):
                row.append(100 * value if value is not None else None)
        rows.append(tuple(row))
    report.add_table(
        ["workload",
         "Leeway TLB acc", "Leeway TLB cov",
         "Leeway LLC acc", "Leeway LLC cov",
         "perc TLB acc", "perc TLB cov",
         "perc LLC acc", "perc LLC cov"],
        rows,
    )

    # Table III anchor: the measured DOA-block-on-DOA-page correlation
    # next to each new family's realised bypasses per kilo-instruction.
    rows = []
    corr_vals = []
    for wl in workloads:
        char = suite.result(wl, "char")
        corr = 100 * char.doa_block_on_doa_page_fraction
        corr_vals.append(corr)
        row = [wl, corr]
        for fam in ("leeway", "perceptron"):
            result = suite.result(wl, fam)
            kilo = result.instructions / 1000.0
            row.append(result.llt_bypasses / kilo if kilo else 0.0)
            row.append(result.llc_bypasses / kilo if kilo else 0.0)
        rows.append(tuple(row))
    report.add_table(
        ["workload", "DOA blk on DOA page %",
         "Leeway LLT byp/KI", "Leeway LLC byp/KI",
         "perc LLT byp/KI", "perc LLC byp/KI"],
        rows,
    )
    report.add_note(
        f"avg DOA-block-on-DOA-page correlation: "
        f"{arithmetic_mean(corr_vals):.1f}% (Table III anchor)"
    )
    report.add_note(
        "engine: Leeway/perceptron configs run the batched bulk+scalar "
        "hybrid (flat interpreter declines with the counted 'predictor' "
        "reason); dpPred+cbPred keeps the full bulk+flat hybrid"
    )
    return report
