"""Extension experiment: TLB prefetching vs dead-page bypassing.

Section VII positions dpPred against TLB prefetching (Kandiraju &
Sivasubramaniam's distance scheme) and notes that "prefetching does not
perform well across all applications". This experiment runs the classic
distance prefetcher on the same suite, next to dpPred and their
combination-by-budget rival (the iso-storage LLT).
"""

from __future__ import annotations

from repro.common.stats import arithmetic_mean, geometric_mean
from repro.experiments.common import baseline, dppred, iso_storage, run_suite
from repro.experiments.report import ExperimentReport
from repro.sim.config import fast_config
from repro.workloads.suite import DEFAULT_BUDGET, workload_names


def extension_prefetch(budget: int = DEFAULT_BUDGET) -> ExperimentReport:
    """Distance TLB prefetching vs dpPred on the full suite."""
    configs = {
        "base": baseline(),
        "prefetch": fast_config(tlb_predictor="distance_prefetch"),
        "dppred": dppred(track=False),
        "iso": iso_storage(),
    }
    suite = run_suite(configs, budget)
    report = ExperimentReport(
        "extension_prefetch",
        "Distance TLB prefetching vs dead-page bypassing (Section VII)",
    )
    rows = []
    reds = {c: [] for c in ("prefetch", "dppred", "iso")}
    gains = {c: [] for c in ("prefetch", "dppred", "iso")}
    for wl in workload_names():
        row = [wl]
        for cfg in ("prefetch", "dppred", "iso"):
            reds[cfg].append(suite.llt_mpki_reduction(wl, cfg, "base"))
            gains[cfg].append(suite.ipc_vs(wl, cfg, "base"))
            row.extend([reds[cfg][-1], gains[cfg][-1]])
        rows.append(tuple(row))
    rows.append(
        ("MEAN",
         arithmetic_mean(reds["prefetch"]), geometric_mean(gains["prefetch"]),
         arithmetic_mean(reds["dppred"]), geometric_mean(gains["dppred"]),
         arithmetic_mean(reds["iso"]), geometric_mean(gains["iso"]))
    )
    report.add_table(
        ["workload",
         "prefetch MPKI red%", "prefetch IPCx",
         "dpPred MPKI red%", "dpPred IPCx",
         "iso-TLB MPKI red%", "iso-TLB IPCx"],
        rows,
    )
    report.add_note(
        "the classic distance prefetcher struggles here for the reasons "
        "the paper cites [43,44]: interleaved regions break the distance "
        "stream, and first-touch pages cannot be prefetched without "
        "faulting — bypassing dead pages is the more robust way to spend "
        "a small hardware budget on these workloads"
    )
    return report
