"""Shared experiment machinery: named configurations and suite sweeps.

Every experiment is a matrix of (workload, configuration) runs normalised
against the LRU baseline. The named configurations here are built once so
that the process-wide run cache in :mod:`repro.sim.runner` is shared across
experiments (the baseline run, for instance, feeds every figure).

:func:`run_suite` declares its whole (workload x config) matrix up front
and hands it to :func:`repro.sim.parallel.run_matrix`, so with
``--jobs``/``REPRO_JOBS`` > 1 the independent runs fan out over a process
pool; results land in the run cache and report assembly is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.config import (
    SystemConfig,
    fast_config,
    iso_storage_config,
)
from repro.sim.parallel import MatrixPlan, run_matrix
from repro.sim.results import SimResult
from repro.sim.runner import run_cached
from repro.workloads.suite import DEFAULT_BUDGET, workload_names


def baseline() -> SystemConfig:
    return fast_config()


def characterization() -> SystemConfig:
    """Baseline with residency + Table III correlation tracking."""
    return fast_config(track_residency=True, track_correlation=True)


def dppred(track: bool = True) -> SystemConfig:
    return fast_config(tlb_predictor="dppred", track_reference=track)


def dppred_no_shadow() -> SystemConfig:
    return fast_config(tlb_predictor="dppred_sh", track_reference=True)


def ship_tlb() -> SystemConfig:
    return fast_config(tlb_predictor="ship", track_reference=True)


def aip_tlb() -> SystemConfig:
    return fast_config(tlb_predictor="aip")


def oracle_tlb() -> SystemConfig:
    return fast_config(tlb_predictor="oracle")


def iso_storage() -> SystemConfig:
    return iso_storage_config(fast_config())


def combined() -> SystemConfig:
    """dpPred + cbPred: the paper's headline configuration."""
    return fast_config(
        tlb_predictor="dppred", llc_predictor="cbpred", track_reference=True
    )


def combined_no_pfq() -> SystemConfig:
    return fast_config(
        tlb_predictor="dppred",
        llc_predictor="cbpred_nopfq",
        track_reference=True,
    )


def ship_llc() -> SystemConfig:
    return fast_config(llc_predictor="ship", track_reference=True)


def aip_llc() -> SystemConfig:
    return fast_config(llc_predictor="aip")


def ship_both() -> SystemConfig:
    return fast_config(tlb_predictor="ship", llc_predictor="ship")


def aip_both() -> SystemConfig:
    return fast_config(tlb_predictor="aip", llc_predictor="aip")


def leeway_both(track: bool = True) -> SystemConfig:
    """Leeway-style variability-aware bypass at both levels."""
    return fast_config(
        tlb_predictor="leeway",
        llc_predictor="leeway",
        track_reference=track,
    )


def perceptron_both(track: bool = True) -> SystemConfig:
    """Hashed-perceptron bypass at both levels."""
    return fast_config(
        tlb_predictor="perceptron",
        llc_predictor="perceptron",
        track_reference=track,
    )


@dataclass
class SuiteResults:
    """Per-workload results for a set of named configurations."""

    configs: List[str]
    results: Dict[str, Dict[str, SimResult]] = field(default_factory=dict)

    def result(self, workload: str, config: str) -> SimResult:
        return self.results[workload][config]

    def ipc_vs(self, workload: str, config: str, baseline_name: str) -> float:
        base = self.results[workload][baseline_name]
        return self.results[workload][config].speedup_over(base)

    def llt_mpki_reduction(
        self, workload: str, config: str, baseline_name: str
    ) -> float:
        base = self.results[workload][baseline_name].llt_mpki
        new = self.results[workload][config].llt_mpki
        return 100.0 * (base - new) / base if base else 0.0

    def llc_mpki_reduction(
        self, workload: str, config: str, baseline_name: str
    ) -> float:
        base = self.results[workload][baseline_name].llc_mpki
        new = self.results[workload][config].llc_mpki
        return 100.0 * (base - new) / base if base else 0.0


def suite_matrix(
    configs: Dict[str, SystemConfig],
    budget: int = DEFAULT_BUDGET,
    workloads: List[str] = None,
) -> MatrixPlan:
    """The declared (workload x config) run matrix behind an experiment."""
    names = workloads if workloads is not None else workload_names()
    return MatrixPlan().add_suite(names, list(configs.values()), budget)


def run_suite(
    configs: Dict[str, SystemConfig],
    budget: int = DEFAULT_BUDGET,
    workloads: List[str] = None,
    progress: Callable[[str], None] = None,
    jobs: Optional[int] = None,
    telemetry_spec=None,
    telemetry_out: Optional[Dict] = None,
) -> SuiteResults:
    """Run every workload under every named configuration (cached).

    The full matrix is declared first and executed via
    :func:`repro.sim.parallel.run_matrix` (serial unless ``jobs`` / the
    ``--jobs`` CLI flag / ``REPRO_JOBS`` says otherwise), then assembled
    from the warmed run cache.

    ``telemetry_spec`` opts the whole suite into observability: every
    cell simulates live with its own telemetry bundle, and the payloads
    land in ``telemetry_out`` keyed by
    :class:`~repro.sim.parallel.RunRequest` (see
    :func:`repro.sim.parallel.run_matrix`). Experiments running through
    the CLI get the same effect from the ``--obs`` flag without any
    per-experiment plumbing.
    """
    names = workloads if workloads is not None else workload_names()
    run_matrix(
        suite_matrix(configs, budget, names).requests,
        jobs=jobs,
        telemetry_spec=telemetry_spec,
        telemetry_out=telemetry_out,
    )
    suite = SuiteResults(configs=list(configs))
    for wl in names:
        suite.results[wl] = {}
        for cfg_name, cfg in configs.items():
            if progress is not None:
                progress(f"{wl} / {cfg_name}")
            suite.results[wl][cfg_name] = run_cached(wl, cfg, budget)
    return suite
