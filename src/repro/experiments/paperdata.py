"""The paper's reported numbers, for paper-vs-measured reporting.

Tables III-VII are transcribed exactly; figures are bar charts, so only
the averages the text quotes (and notable per-workload callouts) are
recorded. ``None`` marks values the paper does not report numerically.
"""

from __future__ import annotations

#: Table II order (also the order of every figure's x-axis).
WORKLOADS = [
    "cactusADM", "cc", "cg.B", "sssp", "lbm", "Triangle", "KCore",
    "canneal", "pr", "graph500", "bfs", "bc", "mis", "mcf",
]

#: Figure 1 / Section IV-A: fraction of LLT entries dead at any time (avg).
FIG1_AVG_LLT_DEAD = 81.66
#: Section IV-C: fraction of LLT entries that are DOA, on average.
FIG1_AVG_LLT_DOA = 78.9

#: Figure 2 / Section IV-A: share of dead evictions that are DOA (avg).
FIG2_AVG_DOA_SHARE_OF_DEAD = 85.0

#: Figure 3 / Section IV-B: fraction of LLC blocks dead at any time (avg).
FIG3_AVG_LLC_DEAD = 83.0
#: Section IV-C: fraction of all LLC blocks that are DOA, on average.
FIG3_AVG_LLC_DOA = 50.4

#: Table III: % of LLC DOA blocks that map onto a DOA page in the LLT.
TABLE3_DOA_BLOCKS_ON_DOA_PAGE = {
    "cactusADM": 72.22, "cc": 67.76, "cg.B": 92.14, "sssp": 93.25,
    "lbm": 99.98, "Triangle": 73.33, "KCore": 68.18, "canneal": 64.15,
    "pr": 33.33, "graph500": 81.40, "bfs": 81.00, "bc": 62.38,
    "mis": 62.23, "mcf": 66.18,
}
TABLE3_AVG = 72.7

#: Figure 9 (text): average IPC improvement of dpPred alone; best case.
FIG9_AVG_DPPRED_IPC_GAIN = 5.2
FIG9_CACTUSADM_DPPRED_IPC = 1.45

#: Table IV: LLT MPKI reduction (%) per predictor.
TABLE4_LLT_MPKI_REDUCTION = {
    #            AIP-TLB SHiP-TLB dpPred Iso-TLB Oracle
    "cactusADM": (0.6,  7.3, 37.8, 2.8, 55.2),
    "cc":        (0.0,  6.4,  7.8, 6.0, 12.8),
    "cg.B":      (0.0,  8.0, 16.0, 0.0, 18.3),
    "sssp":      (0.0,  6.8,  9.4, 6.0, 32.1),
    "lbm":       (1.0,  0.0, 30.2, 0.0, 46.5),
    "Triangle":  (0.0,  5.5,  8.1, 3.6, 14.1),
    "KCore":     (0.0,  4.1,  4.6, 2.8, 13.3),
    "canneal":   (0.0,  2.9,  3.4, 5.0, 15.4),
    "pr":        (0.0,  4.3,  4.4, 0.0, 15.2),
    "graph500":  (0.2,  1.3,  3.8, 3.5, 18.5),
    "bfs":       (0.0,  0.0,  0.0, 0.0, 10.0),
    "bc":        (0.0,  4.2,  8.6, 9.7, 33.6),
    "mis":       (0.0,  0.0,  0.0, 0.0, 16.7),
    "mcf":       (0.0,  0.0,  1.0, 0.0,  9.0),
}
TABLE4_AVG_DPPRED = 9.65
TABLE4_AVG_ORACLE = 22.19

#: Figure 10 (text): combined dpPred+cbPred IPC improvement (geomean).
FIG10_AVG_COMBINED_IPC_GAIN = 8.3

#: Table V: LLC MPKI reduction (%) per predictor.
TABLE5_LLC_MPKI_REDUCTION = {
    #            AIP-LLC SHiP-LLC cbPred
    "cactusADM": (12.46, 13.84, 1.84),
    "cc":        (-6.56, -6.56, -1.60),
    "cg.B":      (-4.49, -2.63, 5.90),
    "sssp":      (0.19, 14.29, 17.82),
    "lbm":       (-2.76, 13.99, 17.74),
    "Triangle":  (7.15, -7.74, 0.65),
    "KCore":     (1.74, -8.82, -0.45),
    "canneal":   (-15.54, -4.46, 0.00),
    "pr":        (-5.00, -21.45, -0.39),
    "graph500":  (38.79, 22.87, 4.25),
    "bfs":       (-22.35, -5.54, 4.45),
    "bc":        (-11.49, -11.38, -0.17),
    "mis":       (-12.76, -10.67, 7.45),
    "mcf":       (23.59, 16.00, 1.81),
}
TABLE5_AVG_CBPRED = 4.24

#: Table VI: (accuracy %, coverage %) for dpPred / dpPred-SH / SHiP-TLB.
TABLE6_TLB_ACC_COV = {
    "cactusADM": ((100, 98), (99, 98), (70, 99)),
    "cc":        ((72, 70), (70, 74), (67, 68)),
    "cg.B":      ((83, 80), (82, 80), (75, 82)),
    "sssp":      ((86, 78), (92, 83), (88, 86)),
    "lbm":       ((100, 100), (100, 100), (100, 65)),
    "Triangle":  ((84, 23), (78, 36), (55, 42)),
    "KCore":     ((90, 71), (88, 75), (69, 81)),
    "canneal":   ((72, 13), (72, 13), (62, 25)),
    "pr":        ((82, 49), (80, 50), (79, 52)),
    "graph500":  ((87, 21), (87, 61), (70, 27)),
    "bfs":       ((87, 41), (74, 50), (66, 59)),
    "bc":        ((74, 49), (49, 56), (54, 47)),
    "mis":       ((81, 25), (68, 37), (45, 22)),
    "mcf":       ((67, 10), (40, 21), (41, 11)),
}
TABLE6_AVG_DPPRED_ACCURACY = 83.6

#: Table VII: (accuracy %, coverage %) for cbPred / cbPred-PFQ / SHiP-LLC.
TABLE7_LLC_ACC_COV = {
    "cactusADM": ((100, 66), (94, 71), (94, 73)),
    "cc":        ((99, 40), (86, 61), (89, 66)),
    "cg.B":      ((100, 90), (92, 92), (99, 98)),
    "sssp":      ((99, 24), (93, 72), (96, 70)),
    "lbm":       ((100, 44), (90, 98), (95, 99)),
    "Triangle":  ((100, 43), (84, 46), (93, 83)),
    "KCore":     ((100, 34), (95, 80), (92, 96)),
    "canneal":   ((100, 14), (87, 67), (87, 74)),
    "pr":        ((99, 10), (89, 35), (86, 62)),
    "graph500":  ((100, 28), (91, 46), (96, 78)),
    "bfs":       ((100, 46), (93, 50), (88, 64)),
    "bc":        ((98, 27), (90, 32), (89, 71)),
    "mis":       ((100, 47), (86, 21), (85, 50)),
    "mcf":       ((100, 11), (93, 54), (97, 70)),
}

#: Section V-D / VI-D storage accounting (bytes / KB).
STORAGE_DPPRED_BYTES = 1306
STORAGE_CBPRED_KB = 9.54
STORAGE_TOTAL_KB = 10.81
STORAGE_AIP_KB = 124.0
STORAGE_SHIP_KB = 66.0

#: Figure 11e (text): combined gain at 3 MB/core LLC.
FIG11E_AVG_3MB = 7.03
#: Figure 11f (text): combined gain on top of SRRIP LLT+LLC; dpPred on
#: SRRIP-LLT alone.
FIG11F_AVG_COMBINED_OVER_SRRIP = 6.29
FIG11F_AVG_DPPRED_OVER_SRRIP_LLT = 5.0
