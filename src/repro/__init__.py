"""repro — reproduction of "Dead Page and Dead Block Predictors: Cleaning
TLBs and Caches Together" (Mazumdar, Mitra & Basu, HPCA 2021).

Public API tour:

* :mod:`repro.core` — the paper's contribution: :class:`DeadPagePredictor`
  (dpPred) for the last-level TLB and
  :class:`CorrelatingDeadBlockPredictor` (cbPred) for the LLC.
* :mod:`repro.sim` — the machine model: :func:`fast_config` /
  :func:`paper_config`, :class:`Machine`, and :func:`run_cached`.
* :mod:`repro.workloads` — the 14-workload Table II suite.
* :mod:`repro.experiments` — one function per paper table/figure, also
  runnable as ``python -m repro.experiments <id>``.

Quickstart::

    from repro.sim import fast_config, run_trace
    from repro.workloads import get_trace

    trace = get_trace("cactusADM")
    baseline = run_trace(trace, fast_config())
    improved = run_trace(
        trace, fast_config(tlb_predictor="dppred", llc_predictor="cbpred")
    )
    print(improved.speedup_over(baseline))
"""

from repro.core import (
    CbPredConfig,
    CorrelatingDeadBlockPredictor,
    DeadPagePredictor,
    DpPredConfig,
)
from repro.sim import (
    Machine,
    SimResult,
    SystemConfig,
    fast_config,
    paper_config,
    run_cached,
    run_trace,
)
from repro.workloads import Trace, get_trace, make_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "CbPredConfig",
    "CorrelatingDeadBlockPredictor",
    "DeadPagePredictor",
    "DpPredConfig",
    "Machine",
    "SimResult",
    "SystemConfig",
    "fast_config",
    "paper_config",
    "run_cached",
    "run_trace",
    "Trace",
    "get_trace",
    "make_workload",
    "workload_names",
    "__version__",
]
