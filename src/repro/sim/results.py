"""Simulation results: the metrics every experiment consumes."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Optional

from repro.common.residency import ResidencySummary


@dataclass
class SimResult:
    """Outcome of one workload x configuration simulation run."""

    workload: str
    config_name: str
    instructions: int = 0
    cycles: float = 0.0
    # LLT (L2 TLB)
    llt_hits: int = 0
    llt_misses: int = 0          # misses that triggered a page walk
    llt_shadow_hits: int = 0     # misses served by dpPred's victim buffer
    llt_bypasses: int = 0
    # LLC
    llc_hits: int = 0
    llc_misses: int = 0
    llc_bypasses: int = 0
    mem_accesses: int = 0
    walk_cycles: int = 0
    walks: int = 0
    # Ground-truth prediction quality (None when not tracked / no events)
    tlb_accuracy: Optional[float] = None
    tlb_coverage: Optional[float] = None
    llc_accuracy: Optional[float] = None
    llc_coverage: Optional[float] = None
    # Deadness characterisation (None when not tracked)
    llt_residency: Optional[ResidencySummary] = None
    llc_residency: Optional[ResidencySummary] = None
    # Table III correlation (None when not tracked)
    doa_blocks_on_doa_page: int = 0
    doa_blocks_classified: int = 0
    # Raw per-structure counters for debugging / extra analyses
    raw: Dict[str, Dict[str, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def llt_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.llt_misses / self.instructions

    @property
    def llc_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    @property
    def avg_walk_latency(self) -> float:
        return self.walk_cycles / self.walks if self.walks else 0.0

    @property
    def doa_block_on_doa_page_fraction(self) -> float:
        """Table III: share of DOA LLC blocks that fell on a DOA page."""
        if not self.doa_blocks_classified:
            return 0.0
        return self.doa_blocks_on_doa_page / self.doa_blocks_classified

    def speedup_over(self, baseline: "SimResult") -> float:
        """Normalized IPC relative to ``baseline`` (Figures 9-11)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    # ------------------------------------------------------------------ #
    # Serialisation (disk cache, cross-process transfer checks)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A JSON-safe dict losslessly round-trippable via :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Rebuild a result produced by :meth:`to_dict`."""
        data = dict(data)
        for key in ("llt_residency", "llc_residency"):
            if data.get(key) is not None:
                data[key] = ResidencySummary(**data[key])
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimResult fields: {sorted(unknown)}")
        return cls(**data)

    def summary_line(self) -> str:
        return (
            f"{self.workload:12s} {self.config_name:22s} "
            f"IPC={self.ipc:6.3f} LLT-MPKI={self.llt_mpki:7.3f} "
            f"LLC-MPKI={self.llc_mpki:7.3f}"
        )
