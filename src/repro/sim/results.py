"""Simulation results: the metrics every experiment consumes."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Optional

from repro.common.residency import ResidencySummary


def wire_bytes(data: dict) -> bytes:
    """Canonical byte encoding of a JSON-safe payload dict.

    Sorted keys and fixed separators make the encoding a pure function of
    the data: two equal payloads always serialise to identical bytes.
    This is the transport form the serve subsystem puts on the wire, and
    the form the byte-identity contract (served result == CLI result) is
    asserted over.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":")
    ).encode()


@dataclass
class SimResult:
    """Outcome of one workload x configuration simulation run."""

    workload: str
    config_name: str
    instructions: int = 0
    cycles: float = 0.0
    # LLT (L2 TLB)
    llt_hits: int = 0
    llt_misses: int = 0          # misses that triggered a page walk
    llt_shadow_hits: int = 0     # misses served by dpPred's victim buffer
    llt_bypasses: int = 0
    # LLC
    llc_hits: int = 0
    llc_misses: int = 0
    llc_bypasses: int = 0
    mem_accesses: int = 0
    walk_cycles: int = 0
    walks: int = 0
    # Ground-truth prediction quality (None when not tracked / no events)
    tlb_accuracy: Optional[float] = None
    tlb_coverage: Optional[float] = None
    llc_accuracy: Optional[float] = None
    llc_coverage: Optional[float] = None
    # Deadness characterisation (None when not tracked)
    llt_residency: Optional[ResidencySummary] = None
    llc_residency: Optional[ResidencySummary] = None
    # Table III correlation (None when not tracked)
    doa_blocks_on_doa_page: int = 0
    doa_blocks_classified: int = 0
    # Raw per-structure counters for debugging / extra analyses
    raw: Dict[str, Dict[str, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def llt_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.llt_misses / self.instructions

    @property
    def llc_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    @property
    def avg_walk_latency(self) -> float:
        return self.walk_cycles / self.walks if self.walks else 0.0

    @property
    def doa_block_on_doa_page_fraction(self) -> float:
        """Table III: share of DOA LLC blocks that fell on a DOA page."""
        if not self.doa_blocks_classified:
            return 0.0
        return self.doa_blocks_on_doa_page / self.doa_blocks_classified

    def speedup_over(self, baseline: "SimResult") -> float:
        """Normalized IPC relative to ``baseline`` (Figures 9-11)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def metrics(self) -> Dict[str, Optional[float]]:
        """The headline scalar metrics, by name.

        This is the flat view the observability subsystem consumes
        (baseline gate, run manifests); ``None`` marks metrics the run did
        not track (accuracy/coverage without ``track_reference``).
        """
        return {
            "ipc": self.ipc,
            "llt_mpki": self.llt_mpki,
            "llc_mpki": self.llc_mpki,
            "avg_walk_latency": self.avg_walk_latency,
            "tlb_accuracy": self.tlb_accuracy,
            "tlb_coverage": self.tlb_coverage,
            "llc_accuracy": self.llc_accuracy,
            "llc_coverage": self.llc_coverage,
        }

    def merge(self, other: "SimResult") -> "SimResult":
        """Combine two runs' aggregates into a new :class:`SimResult`.

        Counts and cycles add; ratio metrics (accuracy/coverage) are
        weighted by each side's instruction count, staying ``None`` only
        when neither side tracked them; residency summaries add field-wise
        when both sides tracked residency. Used for multi-seed and
        sharded-trace aggregation, where per-run weighting by instructions
        is the right convention.
        """
        def label(a: str, b: str) -> str:
            return a if a == b else f"{a}+{b}"

        def weighted(a: Optional[float], b: Optional[float]) -> Optional[float]:
            if a is None:
                return b
            if b is None:
                return a
            total = self.instructions + other.instructions
            if not total:
                # Two empty intervals carry no weights; fall back to the
                # unweighted mean rather than inventing a 0.0 ratio.
                return (a + b) / 2
            return (
                a * self.instructions + b * other.instructions
            ) / total

        residency = {}
        for side in ("llt_residency", "llc_residency"):
            mine, theirs = getattr(self, side), getattr(other, side)
            if mine is None or theirs is None:
                # Copy the surviving summary: the merged result must not
                # alias (and later mutate) either input's residency.
                kept = mine if theirs is None else theirs
                residency[side] = replace(kept) if kept is not None else None
            else:
                residency[side] = ResidencySummary(**{
                    f.name: getattr(mine, f.name) + getattr(theirs, f.name)
                    for f in fields(ResidencySummary)
                })

        raw: Dict[str, Dict[str, int]] = {}
        for source in (self.raw, other.raw):
            for structure, counters in source.items():
                bag = raw.setdefault(structure, {})
                for name, value in counters.items():
                    bag[name] = bag.get(name, 0) + value

        return SimResult(
            workload=label(self.workload, other.workload),
            config_name=label(self.config_name, other.config_name),
            instructions=self.instructions + other.instructions,
            cycles=self.cycles + other.cycles,
            llt_hits=self.llt_hits + other.llt_hits,
            llt_misses=self.llt_misses + other.llt_misses,
            llt_shadow_hits=self.llt_shadow_hits + other.llt_shadow_hits,
            llt_bypasses=self.llt_bypasses + other.llt_bypasses,
            llc_hits=self.llc_hits + other.llc_hits,
            llc_misses=self.llc_misses + other.llc_misses,
            llc_bypasses=self.llc_bypasses + other.llc_bypasses,
            mem_accesses=self.mem_accesses + other.mem_accesses,
            walk_cycles=self.walk_cycles + other.walk_cycles,
            walks=self.walks + other.walks,
            tlb_accuracy=weighted(self.tlb_accuracy, other.tlb_accuracy),
            tlb_coverage=weighted(self.tlb_coverage, other.tlb_coverage),
            llc_accuracy=weighted(self.llc_accuracy, other.llc_accuracy),
            llc_coverage=weighted(self.llc_coverage, other.llc_coverage),
            llt_residency=residency["llt_residency"],
            llc_residency=residency["llc_residency"],
            doa_blocks_on_doa_page=(
                self.doa_blocks_on_doa_page + other.doa_blocks_on_doa_page
            ),
            doa_blocks_classified=(
                self.doa_blocks_classified + other.doa_blocks_classified
            ),
            raw=raw,
        )

    # ------------------------------------------------------------------ #
    # Serialisation (disk cache, cross-process transfer checks)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A JSON-safe dict losslessly round-trippable via :meth:`from_dict`.

        The ``raw`` counter dicts are emitted with sorted keys so the
        serialised form is byte-stable regardless of counter creation
        order (two equal results always serialise identically).
        """
        data = asdict(self)
        data["raw"] = {
            structure: dict(sorted(counters.items()))
            for structure, counters in sorted(self.raw.items())
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Rebuild a result produced by :meth:`to_dict`."""
        data = dict(data)
        for key in ("llt_residency", "llc_residency"):
            if data.get(key) is not None:
                data[key] = ResidencySummary(**data[key])
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimResult fields: {sorted(unknown)}")
        return cls(**data)

    def to_wire(self) -> bytes:
        """Byte-stable wire encoding (see :func:`wire_bytes`)."""
        return wire_bytes(self.to_dict())

    @classmethod
    def from_wire(cls, blob: bytes) -> "SimResult":
        """Rebuild a result from its :meth:`to_wire` bytes."""
        return cls.from_dict(json.loads(blob.decode()))

    def summary_line(self) -> str:
        return (
            f"{self.workload:12s} {self.config_name:22s} "
            f"IPC={self.ipc:6.3f} LLT-MPKI={self.llt_mpki:7.3f} "
            f"LLC-MPKI={self.llc_mpki:7.3f}"
        )
