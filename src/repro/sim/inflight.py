"""Keyed in-flight computation registry: coalesce duplicate concurrent work.

Both the matrix executor (:mod:`repro.sim.parallel`) and the simulation
server (:mod:`repro.serve`) face the same shape of problem: several
concurrent callers want the result of one content-addressed simulation
key, and exactly one of them should pay for the compute. This module
generalises the executor's duplicate-request dedup into a reusable,
thread-safe registry: the first caller to ask for a key becomes its
*leader* and computes; everyone else becomes a *follower* and waits on
the same :class:`concurrent.futures.Future`.

The registry is deliberately dumb about *what* is computed — the leader
is responsible for eventually calling :meth:`KeyedInflight.resolve` or
:meth:`KeyedInflight.fail` (typically in a ``finally``), after which the
key leaves the registry and later callers lead a fresh computation
(which, for cached simulations, will hit the run cache instead of
re-simulating).

Futures are :class:`concurrent.futures.Future`, so synchronous callers
block on ``future.result()`` while asyncio callers await
``asyncio.wrap_future(future)`` — one registry serves both worlds, which
is what lets ``POST /run`` on the server coalesce with an in-flight
``run_matrix`` cell for the same config hash.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, List, Tuple


class KeyedInflight:
    """Thread-safe leader/follower coalescing of keyed computations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        #: Lifetime counters (read by ``GET /status`` and tests).
        self.led = 0
        self.coalesced = 0

    def lead_or_follow(self, key: str) -> Tuple[bool, Future]:
        """Claim ``key`` or join its in-flight computation.

        Returns ``(True, future)`` when the caller is the leader — it MUST
        later resolve or fail the key, or followers hang — and
        ``(False, future)`` when another caller is already computing it.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self.coalesced += 1
                return False, future
            future = Future()
            self._inflight[key] = future
            self.led += 1
            return True, future

    def resolve(self, key: str, value) -> None:
        """Publish the leader's result and retire the key."""
        with self._lock:
            future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(value)

    def fail(self, key: str, exc: BaseException) -> None:
        """Propagate the leader's failure to every follower."""
        with self._lock:
            future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(exc)

    def abandon(self, key: str, reason: str = "leader abandoned") -> None:
        """Fail a key the leader can no longer compute (cleanup paths).

        No-op when the key was already resolved — safe to call
        unconditionally from a leader's ``finally``.
        """
        self.fail(key, RuntimeError(f"in-flight key {key[:16]}…: {reason}"))

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._inflight)

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight)

    def snapshot(self) -> Dict[str, int]:
        """Counters for status endpoints and manifests."""
        with self._lock:
            return {
                "inflight": len(self._inflight),
                "led": self.led,
                "coalesced": self.coalesced,
            }


#: Process-wide registry shared by the matrix executor and the server,
#: keyed by disk-cache result keys (plus a telemetry marker for observed
#: runs, which never coalesce with plain ones).
_global = KeyedInflight()


def global_inflight() -> KeyedInflight:
    """The process-wide registry (server + matrix executor share it)."""
    return _global


def reset_global_inflight() -> None:
    """Replace the process-wide registry (test isolation only)."""
    global _global
    _global = KeyedInflight()
