"""Batched (vectorized) trace-execution engine and engine selection.

The paper's premise is that the L1 structures absorb the bulk of
references — only L1-TLB / L1-D misses ever reach the LLT and LLC where
dpPred and cbPred live. This engine exploits that with two tiers:

* a **bulk** tier: a vectorized pre-pass over a numpy window of trace
  records computes VPN / PFN / block indices and tests them against
  array *mirrors* of the L1 I-TLB, L1 D-TLB, and L1D contents. The
  longest prefix of records that is guaranteed to hit in all three is
  retired array-at-a-time — hit counters, fused-LRU stamp updates,
  Accessed/dirty bits, the same-page filter state, and the
  ``(gap + 1) * base_cpi`` cycle fold are all applied in bulk with
  exactly the state transitions of the scalar loop;
* a **flat** tier (:class:`_FlatStepper`): residual (miss) records run
  through a fully inlined per-record interpreter over the canonical
  structures — L2 TLB (LLT), radix walker + PWCs, L2/LLC, writeback
  cascades, SRRIP and residency tracking, and the paper's predictors.
  dpPred's fill-time decision (pHIST probe, shadow-FIFO promote/evict,
  PFQ push, bypass, eviction-time training) and cbPred's fill decision
  (PFQ match, bHIST probe, LLC bypass, DP-marking) are inlined with
  their stats and decision events byte-for-byte; rare paths (shadow
  hits, the demote ablation) delegate to the real predictor methods.

Configs the bulk tier can mirror (order-based L1 replacement, no L1
listeners) run *hybrid* — bulk prefixes, flat residuals. Configs it
cannot (SRRIP anywhere) run the flat tier for the whole trace. Configs
the flat tier cannot model either (``ship``/``fifo``/``random``
policies, reference tracking, odd dtypes) fall back to scalar with a
per-reason counter (:func:`flat_reason`, :func:`engine_totals`).

Bit-identity with the scalar engine is a hard guarantee, not a goal
(``tests/test_engine_equivalence.py`` enforces it property-wise):

* membership mirrors are revalidated against each structure's
  ``content_version``, which only moves on install/evict — an all-hit
  prefix cannot change membership, so the mirror stays valid for exactly
  the records the engine retires in bulk;
* the same-page TLB filter is replicated via a page-*change* mask, so
  filtered records touch neither the LRU clock nor the stamps — and the
  carried ``_last_*`` entry objects are the same ones the scalar filter
  would touch, stale or not;
* per-record LRU stamps are reconstructed from the change ordinals
  (``clock0 + ordinal + 1`` at each entry's last touch), leaving the
  victim ordering bit-equal;
* cycles are accumulated with ``np.add.accumulate`` — a strict left
  fold, unlike pairwise ``np.sum`` — so the non-dyadic ``base_cpi``
  (0.4) rounds exactly as the scalar ``+=`` chain does;
* timeline sampling splits bulk segments at the same "first record at or
  past the boundary" points the scalar telemetry loop uses.

Low-locality workloads (the suite's TLB-thrashing kernels) produce short
all-hit prefixes where vectorization cannot pay; the engine detects this
and adaptively degrades to scalar bursts with geometric escalation, so
its worst case is the scalar engine plus a vanishing probe overhead.

Engine selection: ``resolve_engine`` — explicit argument, then
:func:`set_default_engine` (the CLI's ``--engine``), then the
``REPRO_ENGINE`` environment variable, then the batched default.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.common.bitops import fold_xor
from repro.core.cbpred import CorrelatingDeadBlockPredictor
from repro.core.dppred import ACTION_BYPASS, DeadPagePredictor
from repro.mem.cache import (
    _LINE_POOL,
    CacheLine,
    acquire_line,
    release_line,
)
from repro.mem.replacement import LruPolicy, SrripPolicy
from repro.obs.events import (
    EV_LLC_BYPASS,
    EV_LLC_MARK_DP,
    EV_LLC_VERDICT,
    EV_LLT_BYPASS,
    EV_LLT_VERDICT,
    EV_PFQ_HIT,
    EV_PFQ_PUSH,
    EV_SHADOW_EVICT,
    EV_SHADOW_PROMOTE,
    EV_WALK,
)
from repro.vm.pagetable import LEVEL_BITS, NUM_LEVELS, VPN_BITS, _Node
from repro.vm.physmem import PAGE_SHIFT
from repro.vm.tlb import (
    _ENTRY_POOL,
    ASID_SHIFT,
    TlbEntry,
)
from repro.vm.walker import BLOCK_SHIFT

ENGINE_BATCHED = "batched"
ENGINE_SCALAR = "scalar"
ENGINES = (ENGINE_BATCHED, ENGINE_SCALAR)

_default_engine: Optional[str] = None

_PAGE_SHIFT_U = np.uint64(PAGE_SHIFT)
_ASID_SHIFT_U = np.uint64(ASID_SHIFT)
_BLOCK_SHIFT_U = np.uint64(BLOCK_SHIFT)
_BLOCK_OFFSET_U = np.uint64(PAGE_SHIFT - BLOCK_SHIFT)
_BLOCK_IN_PAGE_U = np.uint64((1 << (PAGE_SHIFT - BLOCK_SHIFT)) - 1)
#: Empty-way sentinel in the tag mirrors; no reachable VPN or block
#: address comes near 2**64.
_EMPTY = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

#: Adaptive window/burst tuning. Windows double while prefixes run full
#: (amortising the probe); repeated short prefixes escalate scalar bursts
#: geometrically so miss-dominated phases pay almost no probe cost.
_WINDOW_MIN = 512
_WINDOW_MAX = 65536
_GOOD_PREFIX = 64
_BURST_MIN = 256
_BURST_MAX = 32768


def set_default_engine(engine: Optional[str]) -> None:
    """Pin the process-wide default engine (the CLI's ``--engine``)."""
    if engine is not None and engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    global _default_engine
    _default_engine = engine


def resolve_engine(engine: Optional[str] = None) -> str:
    """Effective engine: argument > set_default_engine > REPRO_ENGINE >
    batched."""
    if engine is not None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        return engine
    if _default_engine is not None:
        return _default_engine
    env = os.environ.get("REPRO_ENGINE")
    if env:
        if env not in ENGINES:
            raise ValueError(
                f"REPRO_ENGINE must be one of {ENGINES}, got {env!r}"
            )
        return env
    return ENGINE_BATCHED


# --------------------------------------------------------------------- #
# Eligibility
# --------------------------------------------------------------------- #
def batchable(machine) -> bool:
    """Whether the batched fast path is sound for this machine.

    The bulk path retires records whose only side effects are hit
    counters, fused-LRU stamps, and Accessed/dirty bits. That requires
    the same-page filter's preconditions (order-based replacement) plus
    listener-free, residency-free L1 structures — the L1 I-TLB, L1
    D-TLB, and L1D never carry predictors or residency tracking in any
    shipped configuration, but custom wiring falls back to scalar.
    """
    if not machine._page_filter:
        return False
    for struct in (machine.l1_itlb, machine.l1_dtlb, machine.l1d):
        if (
            struct._lru is None
            or struct.listener is not None
            or struct.residency is not None
        ):
            return False
    return True


#: Fallback / flat-ineligibility reasons (``engine_stats["fallback_reasons"]``
#: and the per-process :func:`engine_totals` accumulator).
REASON_POLICY = "policy"        # fifo/random replacement: no flat model
REASON_PREDICTOR = "predictor"  # non-dpPred/cbPred listener, or L1 wiring
REASON_REFERENCE = "reference"  # ground-truth reference structures attached
REASON_DTYPE = "dtype"          # unexpected trace array dtypes
REASON_EMPTY = "empty"          # zero-record trace
REASON_TENANT = "tenant"        # ASID-carrying trace: flat declines,
#                                 bulk+scalar hybrid handles it
REASON_HUGEPAGE = "hugepage"    # huge-page mappings: flat declines
#                                 (its inlined walk is 4 KB-only)


def flat_reason(machine) -> Optional[str]:
    """Why the flat interpreter cannot run this machine (None = it can).

    The flat path inlines the whole scalar access chain — L1 TLBs, LLT,
    walker, L1D/L2/LLC, dpPred/cbPred — so it is restricted to the
    structures and hooks it models exactly:

    * every replacement policy must be LRU or SRRIP (fused stamp updates
      / RRPV aging are inlined; FIFO and random are not modelled);
    * the L1 TLBs, L1D and L2 must be bare (no listener, no residency) —
      true for every shipped configuration;
    * the LLT may carry dpPred (its ``on_miss``/``fill`` slow paths are
      invoked as real calls), the LLC may carry cbPred (PFQ-filtered
      fills are inlined, PFQ matches call the real fill) — any other
      listener (SHiP, AIP, Leeway, perceptron, oracle, prefetch,
      correlation — including anything registered through
      :mod:`repro.predictors.registry`) declines via the exact ``type()``
      checks below, so a new predictor is bit-exact with zero engine
      work: it keeps the bulk+scalar hybrid, and the decline is counted
      (``engine_stats["flat_reason"]``, ``engine_totals()``'s
      ``flat_declines``) — never silent;
    * ground-truth reference structures hook the residual scalar path
      only, so they keep the bulk+scalar hybrid instead.
    """
    if machine.ref_llt is not None or machine.ref_llc is not None:
        return REASON_REFERENCE
    for struct in (
        machine.l1_itlb, machine.l1_dtlb, machine.l1d, machine.l2
    ):
        if struct.listener is not None or struct.residency is not None:
            return REASON_PREDICTOR
    for struct in (
        machine.l1_itlb, machine.l1_dtlb, machine.l2_tlb,
        machine.l1d, machine.l2, machine.llc,
    ):
        if type(struct.policy) not in (LruPolicy, SrripPolicy):
            return REASON_POLICY
    lt_listener = machine.l2_tlb.listener
    if lt_listener is not None and type(lt_listener) is not DeadPagePredictor:
        return REASON_PREDICTOR
    llc_listener = machine.llc.listener
    if llc_listener is not None and (
        type(llc_listener) is not CorrelatingDeadBlockPredictor
    ):
        return REASON_PREDICTOR
    return None


def _trace_ok(trace) -> bool:
    return (
        len(trace) > 0
        and trace.pcs.dtype == np.uint64
        and trace.vaddrs.dtype == np.uint64
        and trace.writes.dtype == np.bool_
        and trace.gaps.dtype.kind in "iu"
    )


# --------------------------------------------------------------------- #
# Process-wide dispatch accounting (surfaced by the CLI's --profile)
# --------------------------------------------------------------------- #
_totals = {
    "runs": 0,
    "batched": 0,
    "fallbacks": 0,
    "bulk_records": 0,
    "flat_records": 0,
    "scalar_records": 0,
    "fallback_reasons": {},
    "flat_declines": {},
}


def engine_totals() -> dict:
    """Snapshot of batched-engine dispatch since the last reset: runs,
    fallbacks with per-reason counts, the bulk/flat/scalar record split,
    and per-reason counts of hybrid runs where the flat interpreter
    declined (``flat_declines`` — e.g. every Leeway/perceptron/SHiP run
    counts one ``predictor``). Diagnostics only — never part of
    simulation results."""
    out = dict(_totals)
    out["fallback_reasons"] = dict(_totals["fallback_reasons"])
    out["flat_declines"] = dict(_totals["flat_declines"])
    return out


def reset_engine_totals() -> None:
    for key, value in _totals.items():
        if isinstance(value, dict):
            value.clear()
        else:
            _totals[key] = 0


def run_batched(machine, trace):
    """Run ``trace`` on ``machine`` with the batched engine.

    Dispatch is three-tier, bit-identical to :meth:`Machine.run_scalar`
    in every tier:

    1. machines the flat interpreter models run hybrid (bulk numpy
       prefixes + flat residual spans), or pure flat when the bulk
       pre-pass is ineligible (e.g. SRRIP, which defeats the same-page
       filter the bulk prefix test relies on);
    2. machines with listeners the flat path excludes (SHiP/AIP/oracle/
       correlation, reference tracking) keep the bulk + per-record
       scalar hybrid;
    3. everything else — FIFO/random policies, custom L1 wiring, odd
       trace dtypes — falls back to the scalar loop, recording why in
       ``engine_stats["fallback_reasons"]``.
    """
    _totals["runs"] += 1
    asids = getattr(trace, "asids", None)
    if not _trace_ok(trace) or (
        asids is not None and asids.dtype.kind not in "iu"
    ):
        reason = REASON_EMPTY if len(trace) == 0 else REASON_DTYPE
        return _fall_back(machine, trace, reason)
    why = flat_reason(machine)
    if why is None:
        # ASID-carrying traces and huge-mapped tables run the bulk +
        # scalar hybrid: the bulk tier probes combined (asid, vpn) keys
        # (and is untouched by huge mappings — only the LLT holds 2 MB
        # entries, the L1 TLBs get splintered 4 KB granules), while the
        # flat interpreter declines — its inlined walk models neither
        # per-ASID tables nor huge leaves.
        if asids is not None:
            why = REASON_TENANT
        elif machine.config.huge_fraction > 0:
            why = REASON_HUGEPAGE
    bulk_ok = batchable(machine)
    if why is None:
        run = _BatchedRun(machine, _FlatStepper(machine))
        return run.run(trace) if bulk_ok else run.run_flat(trace)
    if bulk_ok:
        declines = _totals["flat_declines"]
        declines[why] = declines.get(why, 0) + 1
        return _BatchedRun(machine, None, why).run(trace)
    return _fall_back(machine, trace, why)


def _fall_back(machine, trace, reason: str):
    _totals["fallbacks"] += 1
    reasons = _totals["fallback_reasons"]
    reasons[reason] = reasons.get(reason, 0) + 1
    machine.engine_stats = {
        "engine": ENGINE_SCALAR,
        "fallback": True,
        "fallback_reasons": {reason: 1},
    }
    return machine.run_scalar(trace)


# --------------------------------------------------------------------- #
# Mirrors
# --------------------------------------------------------------------- #
class _Mirror:
    """Numpy mirror of one set-associative structure's contents."""

    __slots__ = ("struct", "tags", "pfns", "set_mask", "assoc", "version")

    def __init__(self, struct, with_pfns: bool):
        self.struct = struct
        self.assoc = struct.assoc
        self.set_mask = np.uint64(struct.num_sets - 1)
        self.tags = np.full(
            (struct.num_sets, struct.assoc), _EMPTY, dtype=np.uint64
        )
        self.pfns = (
            np.zeros((struct.num_sets, struct.assoc), dtype=np.uint64)
            if with_pfns
            else None
        )
        self.version = -1

    def refresh(self) -> None:
        if self.version == self.struct.content_version:
            return
        self.tags.fill(_EMPTY)
        if self.pfns is None:
            self.struct.mirror_into(self.tags)
        else:
            self.struct.mirror_into(self.tags, self.pfns)
        self.version = self.struct.content_version


class _Window:
    """Precomputed per-record vectors for one probe window."""

    __slots__ = (
        "pc", "gap1", "ok",
        "ivpn", "iset", "iway",
        "dvpn", "dset", "dway",
        "cset", "cway",
    )


# --------------------------------------------------------------------- #
# The batched run
# --------------------------------------------------------------------- #
class _BatchedRun:
    """One trace execution under the batched engine."""

    def __init__(self, machine, flat=None, flat_why: Optional[str] = None):
        self.m = machine
        self.flat = flat
        self.flat_why = flat_why
        self.im = _Mirror(machine.l1_itlb, with_pfns=True)
        self.dm = _Mirror(machine.l1_dtlb, with_pfns=True)
        self.cm = _Mirror(machine.l1d, with_pfns=False)
        self.sampler = machine._timeline
        self.interval = (
            self.sampler.interval if self.sampler is not None else 0
        )
        self.next_at = self.interval
        # Multi-tenant bookkeeping (mirrors _run_scalar_tenants): the
        # running ASID, and the set of tenants already counted. The bulk
        # prefix is truncated at the first record of a different ASID,
        # which then runs scalar with full context-switch bookkeeping.
        self.asids = None
        self.cur_asid = -1
        self.seen_asids = set()

    def run(self, trace):
        m = self.m
        pcs, vaddrs = trace.pcs, trace.vaddrs
        writes, gaps = trace.writes, trace.gaps
        self.asids = getattr(trace, "asids", None)
        n = len(pcs)
        i = 0
        window = _WINDOW_MIN
        burst = 0
        bulk_records = flat_records = scalar_records = windows = 0
        while i < n:
            b = min(i + window, n)
            win = self._precompute(pcs, vaddrs, gaps, i, b)
            windows += 1
            full = bool(win.ok.all())
            prefix = (b - i) if full else int(np.argmin(win.ok))
            if prefix:
                self._apply(win, prefix, writes[i:i + prefix])
                bulk_records += prefix
                i += prefix
            if full:
                window = min(window * 2, _WINDOW_MAX)
                burst = 0
                continue
            # First non-guaranteed record: the ordinary per-access path.
            self._scalar_one(pcs, vaddrs, writes, gaps, i)
            i += 1
            scalar_records += 1
            if prefix >= _GOOD_PREFIX:
                burst = 0
            else:
                burst = min(burst * 2 if burst else _BURST_MIN, _BURST_MAX)
                span_end = min(i + burst, n)
                self._scalar_span(pcs, vaddrs, writes, gaps, i, span_end)
                if self.flat is not None:
                    flat_records += span_end - i
                else:
                    scalar_records += span_end - i
                i = span_end
                window = _WINDOW_MIN
        sampler = self.sampler
        if sampler is not None and (
            not sampler.marks or sampler.marks[-1] != m.instructions
        ):
            sampler.sample(m.instructions, m.cycles)
        stats = {
            "engine": ENGINE_BATCHED,
            "mode": "hybrid",
            "bulk_records": bulk_records,
            "flat_records": flat_records,
            "scalar_records": scalar_records,
            "windows": windows,
        }
        if self.flat is None:
            stats["flat_reason"] = self.flat_why
        m.engine_stats = stats
        _totals["batched"] += 1
        _totals["bulk_records"] += bulk_records
        _totals["flat_records"] += flat_records
        _totals["scalar_records"] += scalar_records
        return m.finalize(trace.name)

    def run_flat(self, trace):
        """Whole-trace flat execution. Used when the bulk pre-pass is
        ineligible (SRRIP defeats the same-page filter and the fused-LRU
        mirrors) but the flat interpreter models the machine exactly."""
        m = self.m
        n = len(trace)
        self.next_at = self.flat.run_span(
            trace.pcs, trace.vaddrs, trace.writes, trace.gaps, 0, n,
            self.sampler, self.next_at,
        )
        sampler = self.sampler
        if sampler is not None and (
            not sampler.marks or sampler.marks[-1] != m.instructions
        ):
            sampler.sample(m.instructions, m.cycles)
        m.engine_stats = {
            "engine": ENGINE_BATCHED,
            "mode": "flat",
            "bulk_records": 0,
            "flat_records": n,
            "scalar_records": 0,
            "windows": 0,
        }
        _totals["batched"] += 1
        _totals["flat_records"] += n
        return m.finalize(trace.name)

    # -- window probe --------------------------------------------------- #
    def _precompute(self, pcs, vaddrs, gaps, a, b) -> _Window:
        im, dm, cm = self.im, self.dm, self.cm
        im.refresh()
        dm.refresh()
        cm.refresh()
        win = _Window()
        pc = pcs[a:b]
        va = vaddrs[a:b]
        win.pc = pc
        win.gap1 = gaps[a:b].astype(np.int64) + 1

        # TLB probes use the combined (asid, vpn) key — identical to the
        # raw VPN at ASID 0, so single-tenant traces skip the OR. The
        # mirrors export ``entry.vpn``, which already stores the full
        # combined key, and the set index is ``key & set_mask`` exactly
        # as in ``Tlb.lookup``.
        ivpn = pc >> _PAGE_SHIFT_U
        dvpn = va >> _PAGE_SHIFT_U
        asids = self.asids
        if asids is not None:
            akey = asids[a:b].astype(np.uint64) << _ASID_SHIFT_U
            ivpn = ivpn | akey
            dvpn = dvpn | akey
        iset = (ivpn & im.set_mask).astype(np.intp)
        imatch = im.tags[iset] == ivpn[:, None]
        ihit = imatch.any(axis=1)
        win.ivpn, win.iset, win.iway = ivpn, iset, imatch.argmax(axis=1)

        dset = (dvpn & dm.set_mask).astype(np.intp)
        dmatch = dm.tags[dset] == dvpn[:, None]
        dhit = dmatch.any(axis=1)
        dway = dmatch.argmax(axis=1)
        win.dvpn, win.dset, win.dway = dvpn, dset, dway

        # PFN (and hence block) is garbage on D-miss rows, but those rows
        # are already excluded by ``ok``; the set index stays in range.
        pfn = dm.pfns[dset, dway]
        block = (pfn << _BLOCK_OFFSET_U) | (
            (va >> _BLOCK_SHIFT_U) & _BLOCK_IN_PAGE_U
        )
        cset = (block & cm.set_mask).astype(np.intp)
        cmatch = cm.tags[cset] == block[:, None]
        win.cset, win.cway = cset, cmatch.argmax(axis=1)

        win.ok = ihit & dhit & cmatch.any(axis=1)
        if asids is not None:
            # A record of a different ASID than the running one carries
            # context-switch side effects; it must run scalar.
            cur = self.cur_asid
            if cur < 0:
                win.ok[:] = False
            else:
                win.ok &= asids[a:b] == cur
        return win

    # -- bulk retirement ------------------------------------------------ #
    def _apply(self, win, k: int, writes_seg) -> None:
        """Retire the guaranteed-hit prefix ``[0, k)`` of ``win`` in bulk,
        splitting at timeline boundaries exactly like the scalar loop."""
        m = self.m
        gap1 = win.gap1[:k]
        icsum = np.add.accumulate(gap1) + m.instructions
        inc = gap1.astype(np.float64) * m._base_cpi
        # Seed the fold with the running total: addition is commutative
        # bit-for-bit, so inc[0] + cycles == cycles + inc[0].
        inc[0] += m.cycles
        ccsum = np.add.accumulate(inc)
        sampler = self.sampler
        if sampler is None:
            self._apply_span(win, 0, k, icsum, ccsum, writes_seg)
            return
        cur = 0
        while True:
            pos = int(np.searchsorted(icsum, self.next_at, side="left"))
            if pos >= k:
                if cur < k:
                    self._apply_span(win, cur, k, icsum, ccsum, writes_seg)
                return
            self._apply_span(win, cur, pos + 1, icsum, ccsum, writes_seg)
            sampler.sample(int(icsum[pos]), float(ccsum[pos]))
            self.next_at = int(icsum[pos]) + self.interval
            cur = pos + 1

    def _apply_span(self, win, s, e, icsum, ccsum, writes_seg) -> None:
        m = self.m
        k = e - s
        m.now += k
        m.instructions = int(icsum[e - 1])
        m.cycles = float(ccsum[e - 1])
        m.context.pc = int(win.pc[e - 1])

        last_iv, last_ie = self._touch_tlb(
            m.l1_itlb, m._itlb_stat,
            win.ivpn, win.iset, win.iway, s, e,
            m._last_ivpn, m._last_ientry,
        )
        m._last_ivpn, m._last_ientry = last_iv, last_ie
        last_dv, last_de = self._touch_tlb(
            m.l1_dtlb, m._dtlb_stat,
            win.dvpn, win.dset, win.dway, s, e,
            m._last_dvpn, m._last_dentry,
        )
        m._last_dvpn, m._last_dentry = last_dv, last_de
        self._touch_l1d(win, s, e, writes_seg)

    @staticmethod
    def _touch_tlb(tlb, stat, vpn, sets, ways, s, e, last_vpn, last_entry):
        """Apply one span's L1-TLB effects: hit counters for every record,
        LRU clock/stamps and Accessed bits only at page-*change* records —
        the same-page filter's exact semantics."""
        k = e - s
        stat["hits"] += k
        v = vpn[s:e]
        change = np.empty(k, dtype=bool)
        change[0] = last_vpn is None or v[0] != last_vpn
        if k > 1:
            np.not_equal(v[1:], v[:-1], out=change[1:])
        if not change[0] and last_entry is not None:
            # Carried filter hit: the scalar path marks the carried entry
            # object (even a stale one) accessed, and nothing else.
            last_entry.accessed = True
        entries = tlb._entries
        nch = int(change.sum())
        if nch:
            idx = np.flatnonzero(change)
            assoc = tlb.assoc
            key = sets[s:e][idx] * assoc + ways[s:e][idx]
            # Last change-ordinal per distinct (set, way): reverse-unique.
            uniq, rev_first = np.unique(key[::-1], return_index=True)
            lru = tlb._lru
            clock0 = lru._clock
            lru._clock = clock0 + nch
            stamps = tlb._lru_stamps
            last_ord = nch - 1
            for u, r in zip(uniq.tolist(), rev_first.tolist()):
                set_idx, way = divmod(u, assoc)
                stamps[set_idx][way] = clock0 + (last_ord - r) + 1
                entries[set_idx][way].accessed = True
            last_vpn = int(v[-1])
            last_entry = entries[int(sets[e - 1])][int(ways[e - 1])]
        return last_vpn, last_entry

    def _touch_l1d(self, win, s, e, writes_seg) -> None:
        """Apply one span's L1D effects: every record is a promoting hit
        (clock tick + stamp), writes dirty their line."""
        m = self.m
        k = e - s
        m.hierarchy._stat["accesses"] += k
        cache = m.l1d
        cache._stat["hits"] += k
        assoc = cache.assoc
        key = win.cset[s:e] * assoc + win.cway[s:e]
        uniq, rev_first = np.unique(key[::-1], return_index=True)
        lru = cache._lru
        clock0 = lru._clock
        lru._clock = clock0 + k
        stamps = cache._lru_stamps
        lines = cache._lines
        last_ord = k - 1
        for u, r in zip(uniq.tolist(), rev_first.tolist()):
            set_idx, way = divmod(u, assoc)
            stamps[set_idx][way] = clock0 + (last_ord - r) + 1
            lines[set_idx][way].accessed = True
        w = writes_seg[s:e]
        if w.any():
            for u in np.unique(key[w]).tolist():
                set_idx, way = divmod(u, assoc)
                lines[set_idx][way].dirty = True

    # -- residual / fallback scalar execution --------------------------- #
    def _switch_to(self, asid: int) -> None:
        """ASID bookkeeping preceding a scalar record, replicating
        ``Machine._run_scalar_tenants`` exactly (context-switch event +
        optional shootdown, first-sighting tenant count)."""
        m = self.m
        if self.cur_asid >= 0:
            m._context_switch(self.cur_asid, asid)
        if asid not in self.seen_asids:
            self.seen_asids.add(asid)
            m.tenancy.add("tenants_seen")
        self.cur_asid = asid

    def _scalar_one(self, pcs, vaddrs, writes, gaps, j) -> None:
        m = self.m
        asids = self.asids
        if asids is None:
            m.access(
                int(pcs[j]), int(vaddrs[j]), bool(writes[j]), int(gaps[j])
            )
        else:
            asid = int(asids[j])
            if asid != self.cur_asid:
                self._switch_to(asid)
            m.access(
                int(pcs[j]), int(vaddrs[j]), bool(writes[j]),
                int(gaps[j]), asid,
            )
        if self.sampler is not None and m.instructions >= self.next_at:
            self.sampler.sample(m.instructions, m.cycles)
            self.next_at = m.instructions + self.interval

    def _scalar_span(self, pcs, vaddrs, writes, gaps, a, b) -> None:
        if a >= b:
            return
        if self.flat is not None:
            self.next_at = self.flat.run_span(
                pcs, vaddrs, writes, gaps, a, b, self.sampler, self.next_at
            )
            return
        m = self.m
        access = m.access
        asids = self.asids
        records = zip(
            pcs[a:b].tolist(),
            vaddrs[a:b].tolist(),
            writes[a:b].tolist(),
            gaps[a:b].tolist(),
        )
        sampler = self.sampler
        if asids is not None:
            cur = self.cur_asid
            next_at = self.next_at
            interval = self.interval
            for (pc, vaddr, is_write, gap), asid in zip(
                records, asids[a:b].tolist()
            ):
                if asid != cur:
                    self._switch_to(asid)
                    cur = asid
                access(pc, vaddr, is_write, gap, asid)
                if sampler is not None and m.instructions >= next_at:
                    sampler.sample(m.instructions, m.cycles)
                    next_at = m.instructions + interval
            self.next_at = next_at
            return
        if sampler is None:
            for pc, vaddr, is_write, gap in records:
                access(pc, vaddr, is_write, gap)
            return
        next_at = self.next_at
        interval = self.interval
        for pc, vaddr, is_write, gap in records:
            access(pc, vaddr, is_write, gap)
            if m.instructions >= next_at:
                sampler.sample(m.instructions, m.cycles)
                next_at = m.instructions + interval
        self.next_at = next_at


# --------------------------------------------------------------------- #
# Flat interpreter
# --------------------------------------------------------------------- #
class _FlatStepper:
    """Flattened per-record interpreter over the canonical structures.

    The bulk pre-pass retires only guaranteed-L1-hit prefixes; this
    interpreter executes *arbitrary* records — L1 misses, LLT misses and
    page walks, LLC fills and inclusion victims, dpPred/cbPred
    decisions, SRRIP aging, residency tracking — by inlining the scalar
    access chain into one straight-line loop over Python scalars. It is
    what makes miss-dominated (TLB-thrashing) workloads faster than the
    scalar engine: the per-event method dispatch, listener checks and
    Stats lookups of ``machine.access()`` collapse into locals and plain
    dict operations on the very same state objects.

    Soundness of mixing inline updates with real method calls: every
    simulated event is handled exactly once, either inline or by the
    real method. All *structural* state (tags, entries, stamps, RRPVs,
    clocks, content versions, predictor tables, residency trackers)
    lives on the real objects; the only locally buffered state is
    additive Stats counter deltas, flushed into the live dicts before
    every telemetry sample and at span end. Rare or complex events call
    the real methods — dpPred's shadow *hits* (misprediction refills),
    LLT fills under the demote ablation, DP-marked LLC evictions —
    while the hot paths stay inline: dpPred's fill-time prediction
    (pHIST probe, bypass bookkeeping, shadow-FIFO insert/evict, PFQ
    push) and eviction-time training, the shadow-miss probe, and
    cbPred's full fill decision (PFQ match, bHIST probe, bypass,
    DP-mark) are replicated inline with identical stat bumps and
    decision-event emissions; dp=False LLC victims make ``on_evict`` a
    no-op and are skipped. ``fold_xor`` hashes are memoized per run
    (pure function of its inputs).
    """

    __slots__ = ("m", "_fx_pc", "_fx_vpn", "_fx_blk", "_fx_pgb")

    def __init__(self, machine):
        self.m = machine
        # Memoized fold_xor results (pure function, narrow key spaces:
        # PCs repeat per site, VPNs per page working set). One dict per
        # bit width in use, living as long as the run.
        self._fx_pc = {}
        self._fx_vpn = {}
        self._fx_blk = {}
        # Page-level bHIST hash seeds: fold_xor(pfn << boff, bits).
        # A block hash is seed ^ block_offset (the offset bits sit
        # inside the lowest fold chunk whenever bits >= boff, and
        # xor-folding is linear over disjoint bit fields), so all 64
        # blocks of a page share one fold_xor call.
        self._fx_pgb = {}

    def run_span(self, pcs, vaddrs, writes, gaps, a, b, sampler, next_at):
        """Execute records ``[a, b)``; returns the updated telemetry
        boundary. Machine state is read at entry and written back at
        exit; counter deltas are flushed before each timeline sample so
        samples observe exactly the scalar loop's counter values."""
        if b <= a:
            return next_at
        m = self.m
        fx_pc = self._fx_pc
        fx_vpn = self._fx_vpn
        fx_blk = self._fx_blk
        fx_pgb = self._fx_pgb
        # Free-list pools shared with the scalar-side structures. The
        # flat tier's inline releases skip the cap check: every pooled
        # object mirrors an evicted resident slot, so pool growth is
        # bounded by structure capacity, not by traffic.
        pool_ = _LINE_POOL
        line_cls = CacheLine
        epool_ = _ENTRY_POOL
        entry_cls = TlbEntry
        # Predictor-stat deltas, flushed with the structure-stat
        # deltas at telemetry boundaries and span end. The flushes
        # are guarded so a counter that never fired does not create
        # a zero-valued key the scalar engine would not have.
        d_cb_pfqm = d_cb_doap = d_cb_note = d_cb_evobs = 0
        d_dp_doap = d_dp_evobs = 0
        d_ph_doa = d_ph_ndoa = d_bh_doa = d_bh_ndoa = 0
        d_pfq_ins = d_pfq_ev = d_sh_ins = d_sh_ev = d_sh_miss = 0
        # --- machine scalars ------------------------------------------- #
        now = m.now
        instructions = m.instructions
        cycles = m.cycles
        base_cpi = m._base_cpi
        l2_tlb_hit_penalty = m._l2_tlb_hit_penalty
        l2_hit_penalty = m._l2_hit_penalty
        llc_hit_penalty = m._llc_hit_penalty
        mem_penalty = m._mem_penalty
        l2_tlb_latency = m._l2_tlb_latency
        walk_exposure = m._walk_exposure
        pfn_to_vpn = m.pfn_to_vpn
        probe = m._probe
        pf = m._page_filter
        ps = PAGE_SHIFT
        bs = BLOCK_SHIFT
        boff = PAGE_SHIFT - BLOCK_SHIFT
        bmask = (1 << boff) - 1
        if sampler is not None:
            interval = sampler.interval
            sample = sampler.sample
        else:
            interval = 0
            sample = None
            next_at = float("inf")

        # --- L1 I-TLB --------------------------------------------------- #
        it = m.l1_itlb
        it_mask = it._set_mask
        it_assoc = it.assoc
        it_tags = it._tags
        it_entries = it._entries
        it_lru = it._lru
        it_stamps = it._lru_stamps
        it_vw = it._vic_way
        it_vs = it._vic_stamp
        it_rrpv = None if it_lru is not None else it.policy._rrpv
        it_rmax = 0 if it_lru is not None else it.policy.rrpv_max
        it_stat = it._stat
        it_hits = it_misses = it_fills = it_evicts = 0
        # --- L1 D-TLB --------------------------------------------------- #
        dt = m.l1_dtlb
        dt_mask = dt._set_mask
        dt_assoc = dt.assoc
        dt_tags = dt._tags
        dt_entries = dt._entries
        dt_lru = dt._lru
        dt_stamps = dt._lru_stamps
        dt_vw = dt._vic_way
        dt_vs = dt._vic_stamp
        dt_rrpv = None if dt_lru is not None else dt.policy._rrpv
        dt_rmax = 0 if dt_lru is not None else dt.policy.rrpv_max
        dt_stat = dt._stat
        dt_hits = dt_misses = dt_fills = dt_evicts = 0
        # --- LLT (may carry dpPred and residency) ----------------------- #
        lt = m.l2_tlb
        lt_mask = lt._set_mask
        lt_assoc = lt.assoc
        lt_tags = lt._tags
        lt_entries = lt._entries
        lt_lru = lt._lru
        lt_stamps = lt._lru_stamps
        lt_vw = lt._vic_way
        lt_vs = lt._vic_stamp
        lt_rrpv = None if lt_lru is not None else lt.policy._rrpv
        lt_rmax = 0 if lt_lru is not None else lt.policy.rrpv_max
        lt_stat = lt._stat
        lt_listener = lt.listener
        lt_on_miss = None if lt_listener is None else lt_listener.on_miss
        lt_fill = lt.fill
        lt_res = lt.residency
        lt_hits = lt_misses = lt_vbh = lt_fills = lt_evicts = lt_byp = 0
        # dpPred wiring: fill-time prediction, bypass bookkeeping, the
        # shadow FIFO and eviction-time training are inlined; shadow
        # *hits* (misprediction refills) and the demote ablation call
        # the real methods.
        dp = lt_listener
        if dp is not None:
            dp_stat = dp.stats.counters
            dp_probe = dp.probe
            dp_obs = dp.prediction_observer
            dp_sink = dp.pfn_sink
            dp_pcbits = dp.config.pc_hash_bits
            dp_vbits = dp.config.vpn_hash_bits
            dp_thresh = dp.config.threshold
            dp_demote = dp.config.action != ACTION_BYPASS
            ph = dp.phist
            ph_vals = ph._counters._values
            ph_rows = ph.num_rows
            ph_cols = ph.num_cols
            ph_max = ph._counters._max
            ph_stat = ph.stats.counters
            sh = dp.shadow
            sh_entries = None if sh is None else sh._entries
            sh_cap = 0 if sh is None else sh.capacity
            sh_stat = None if sh is None else sh.stats.counters
            sh_probe = None if sh is None else sh.probe
        else:
            dp_demote = False
            sh_entries = None
        # --- caches ----------------------------------------------------- #
        l1 = m.l1d
        l1_mask = l1._set_mask
        l1_assoc = l1.assoc
        l1_tags = l1._tags
        l1_lines = l1._lines
        l1_lru = l1._lru
        l1_stamps = l1._lru_stamps
        l1_vw = l1._vic_way
        l1_vs = l1._vic_stamp
        l1_rrpv = None if l1_lru is not None else l1.policy._rrpv
        l1_rmax = 0 if l1_lru is not None else l1.policy.rrpv_max
        l1_stat = l1._stat
        l1_hits = l1_misses = l1_fills = l1_evicts = l1_wb = l1_inv = 0
        l2 = m.l2
        l2_mask = l2._set_mask
        l2_assoc = l2.assoc
        l2_tags = l2._tags
        l2_lines = l2._lines
        l2_lru = l2._lru
        l2_stamps = l2._lru_stamps
        l2_vw = l2._vic_way
        l2_vs = l2._vic_stamp
        l2_rrpv = None if l2_lru is not None else l2.policy._rrpv
        l2_rmax = 0 if l2_lru is not None else l2.policy.rrpv_max
        l2_stat = l2._stat
        l2_hits = l2_misses = l2_fills = l2_evicts = l2_wb = l2_inv = 0
        l3 = m.llc
        l3_mask = l3._set_mask
        l3_assoc = l3.assoc
        l3_tags = l3._tags
        l3_lines = l3._lines
        l3_lru = l3._lru
        l3_stamps = l3._lru_stamps
        l3_vw = l3._vic_way
        l3_vs = l3._vic_stamp
        l3_rrpv = None if l3_lru is not None else l3.policy._rrpv
        l3_rmax = 0 if l3_lru is not None else l3.policy.rrpv_max
        l3_stat = l3._stat
        l3_fill = l3.fill
        l3_res = l3.residency
        l3_hits = l3_misses = l3_fills = l3_evicts = l3_wb = l3_byp = 0
        # cbPred wiring: every LLC fill decision is inlined — the PFQ-miss
        # fast path resets nothing and allocates; PFQ matches (and the
        # no-PFQ ablation, which predicts on every fill) replicate
        # ``on_fill``'s bHIST probe, bypass, and DP-marking exactly.
        cb = l3.listener
        cb_pfq = (
            cb.pfq._members
            if cb is not None and cb.config.use_pfq
            else None
        )
        cb_probe = None if cb is None else cb.probe
        cb_obs = None if cb is None else cb.prediction_observer
        cb_stat = None if cb is None else cb.stats.counters
        if cb is not None:
            bh_vals = cb.bhist._counters._values
            bh_bits = cb.bhist.hash_bits
            bh_thresh = cb.config.threshold
            bh_stat = cb.bhist.stats.counters
            bh_cmax = cb.bhist._counters._max
        else:
            bh_vals = None
            bh_bits = bh_thresh = 0
            bh_stat = None
            bh_cmax = 0
        bh_pg = bh_bits >= boff
        # dpPred -> cbPred PFN messages: when the sink is the stock
        # ``notify_doa_page`` wiring, the PFQ insert is inlined too.
        if (
            cb is not None
            and dp is not None
            and dp.pfn_sink == cb.notify_doa_page
        ):
            pfq_q = cb.pfq._queue
            pfq_members = cb.pfq._members
            pfq_cap = cb.pfq.capacity
            pfq_stat = cb.pfq.stats.counters
        else:
            pfq_q = None
        # --- hierarchy / memory / walker -------------------------------- #
        hier = m.hierarchy
        h_stat = hier._stat
        h_acc = h_demand = h_walkacc = h_incl = h_orphan = 0
        mem = hier.memory
        mem_stat = mem._stat
        mem_lat = mem.latency
        m_acc = m_reads = m_writes = 0
        hl2_lat = hier.l2_latency
        hl3_lat = hier.llc_latency
        walker = m.walker
        w_stat = walker._stat
        w_walks = w_memacc = w_cycles = 0
        # Radix walk inlined (4 KB mappings only: the flat path declines
        # huge-page configs, so no PD entry is ever a huge leaf): local
        # bindings of the root node, the frame allocator, and the
        # telemetry-unregistered page-table stats (bumped live).
        page_table = walker.page_table
        pt_root = page_table._root
        pt_alloc = page_table.allocator.allocate
        pt_stats_add = page_table.stats.add
        vpn_limit = 1 << VPN_BITS
        sh1 = LEVEL_BITS * (NUM_LEVELS - 1)
        sh2 = LEVEL_BITS * (NUM_LEVELS - 2)
        sh3 = LEVEL_BITS
        widx_mask = (1 << LEVEL_BITS) - 1
        # PWC probe/fill inlined: the three fully-associative LRU levels
        # as bare OrderedDicts with local clocks (written back at span
        # end; no other code reads them mid-span), cumulative probe
        # latencies, and the telemetry-registered pwc stats as delta
        # counters flushed with the rest.
        pwcs = walker.pwc
        pwc_stat = pwcs._stat
        pwc1, pwc2, pwc3 = pwcs._levels
        pw1 = pwc1._stamps
        pw2 = pwc2._stamps
        pw3 = pwc3._stamps
        pw1_cap = pwc1.capacity
        pw2_cap = pwc2.capacity
        pw3_cap = pwc3.capacity
        pw1_clk = pwc1._clock
        pw2_clk = pwc2._clock
        pw3_clk = pwc3._clock
        pw1_mte = pw1.move_to_end
        pw2_mte = pw2.move_to_end
        pw3_mte = pw3.move_to_end
        pw1_pop = pw1.popitem
        pw2_pop = pw2.popitem
        pw3_pop = pw3.popitem
        pw_lat1 = pwcs._latencies[0]
        pw_lat2 = pw_lat1 + pwcs._latencies[1]
        pw_lat3 = pw_lat2 + pwcs._latencies[2]
        pw_l1h = pw_l2h = pw_l3h = pw_miss = 0
        # --- same-page filter state ------------------------------------- #
        last_ivpn = m._last_ivpn
        last_ient = m._last_ientry
        last_dvpn = m._last_dvpn
        last_dent = m._last_dentry

        pc = 0  # last processed PC (context write-back for empty guard)
        pos = a
        while pos < b:
            seg = min(pos + 65536, b)
            for pc, vaddr, is_write, gap in zip(
                pcs[pos:seg].tolist(),
                vaddrs[pos:seg].tolist(),
                writes[pos:seg].tolist(),
                gaps[pos:seg].tolist(),
            ):
                now += 1
                instructions += gap + 1

                # ---- instruction-side translation ---------------------- #
                ivpn = pc >> ps
                if pf and ivpn == last_ivpn:
                    it_hits += 1
                    last_ient.accessed = True
                    penalty = 0.0
                else:
                    set_i = ivpn & it_mask
                    tags_i = it_tags[set_i]
                    way = tags_i.get(ivpn)
                    if way is not None:
                        it_hits += 1
                        entry = it_entries[set_i][way]
                        entry.accessed = True
                        if it_lru is not None:
                            it_lru._clock += 1
                            it_stamps[set_i][way] = it_lru._clock
                        else:
                            it_rrpv[set_i][way] = 0
                        penalty = 0.0
                        if pf:
                            last_ivpn = ivpn
                            last_ient = entry
                    else:
                        it_misses += 1
                        pfn_i = None
                        set_l = ivpn & lt_mask
                        tags_l = lt_tags[set_l]
                        wl = tags_l.get(ivpn)
                        if wl is not None:
                            lt_hits += 1
                            le = lt_entries[set_l][wl]
                            le.accessed = True
                            if lt_lru is not None:
                                lt_lru._clock += 1
                                lt_stamps[set_l][wl] = lt_lru._clock
                            else:
                                lt_rrpv[set_l][wl] = 0
                            if lt_res is not None:
                                lt_res.hit((set_l, wl), now)
                            pfn_i = le.pfn
                            penalty = l2_tlb_hit_penalty
                        else:
                            lt_misses += 1
                            if sh_entries is not None:
                                # shadow-miss fast path; hits (rare
                                # misprediction refills) take the real
                                # on_miss slow path
                                if ivpn in sh_entries:
                                    buffered = lt_on_miss(lt, ivpn, now)
                                    if buffered is not None:
                                        lt_vbh += 1
                                        pfn_i = buffered
                                        penalty = l2_tlb_hit_penalty
                                else:
                                    d_sh_miss += 1
                            if pfn_i is None:
                                # ---- page walk (walker.walk, the radix
                                # descent and the PWC probe all inlined) - #
                                w_walks += 1
                                if ivpn < 0 or ivpn >= vpn_limit:
                                    raise ValueError(
                                        f"vpn {ivpn:#x} outside "
                                        f"{VPN_BITS}-bit space"
                                    )
                                node = pt_root
                                widx = (ivpn >> sh1) & widx_mask
                                p0 = (node.frame << ps) | (widx << 3)
                                ch = node.children.get(widx)
                                if ch is None:
                                    ch = _Node(pt_alloc())
                                    node.children[widx] = ch
                                    pt_stats_add("nodes_allocated")
                                node = ch
                                widx = (ivpn >> sh2) & widx_mask
                                p1 = (node.frame << ps) | (widx << 3)
                                ch = node.children.get(widx)
                                if ch is None:
                                    ch = _Node(pt_alloc())
                                    node.children[widx] = ch
                                    pt_stats_add("nodes_allocated")
                                node = ch
                                widx = (ivpn >> sh3) & widx_mask
                                p2 = (node.frame << ps) | (widx << 3)
                                ch = node.children.get(widx)
                                if ch is None:
                                    ch = _Node(pt_alloc())
                                    node.children[widx] = ch
                                    pt_stats_add("nodes_allocated")
                                node = ch
                                widx = ivpn & widx_mask
                                p3 = (node.frame << ps) | (widx << 3)
                                pfn_i = node.children.get(widx)
                                if pfn_i is None:
                                    pfn_i = pt_alloc()
                                    node.children[widx] = pfn_i
                                    pt_stats_add("pages_mapped")
                                wtag = ivpn >> sh3
                                if wtag in pw1:
                                    pw1_clk += 1
                                    pw1[wtag] = pw1_clk
                                    pw1_mte(wtag)
                                    pw_l1h += 1
                                    wlat = pw_lat1
                                    w_memacc += 1
                                    path_rem = (p3,)
                                else:
                                    wtag = ivpn >> sh2
                                    if wtag in pw2:
                                        pw2_clk += 1
                                        pw2[wtag] = pw2_clk
                                        pw2_mte(wtag)
                                        pw_l2h += 1
                                        wlat = pw_lat2
                                        w_memacc += 2
                                        path_rem = (p2, p3)
                                    else:
                                        wtag = ivpn >> sh1
                                        if wtag in pw3:
                                            pw3_clk += 1
                                            pw3[wtag] = pw3_clk
                                            pw3_mte(wtag)
                                            pw_l3h += 1
                                            wlat = pw_lat3
                                            w_memacc += 3
                                            path_rem = (p1, p2, p3)
                                        else:
                                            pw_miss += 1
                                            wlat = pw_lat3
                                            w_memacc += 4
                                            path_rem = (p0, p1, p2, p3)
                                for pte_paddr in path_rem:
                                    blk = pte_paddr >> bs
                                    h_walkacc += 1
                                    set_c = blk & l2_mask
                                    tc = l2_tags[set_c]
                                    wc = tc.get(blk)
                                    if wc is not None:
                                        l2_hits += 1
                                        ln = l2_lines[set_c][wc]
                                        ln.accessed = True
                                        if l2_lru is not None:
                                            l2_lru._clock += 1
                                            l2_stamps[set_c][wc] = (
                                                l2_lru._clock
                                            )
                                        else:
                                            l2_rrpv[set_c][wc] = 0
                                        wlat += hl2_lat
                                        continue
                                    l2_misses += 1
                                    set_c3 = blk & l3_mask
                                    tc3 = l3_tags[set_c3]
                                    wc3 = tc3.get(blk)
                                    if wc3 is not None:
                                        l3_hits += 1
                                        ln = l3_lines[set_c3][wc3]
                                        ln.accessed = True
                                        if l3_lru is not None:
                                            l3_lru._clock += 1
                                            l3_stamps[set_c3][wc3] = (
                                                l3_lru._clock
                                            )
                                        else:
                                            l3_rrpv[set_c3][wc3] = 0
                                        if l3_res is not None:
                                            l3_res.hit((set_c3, wc3), now)
                                        wlat += hl3_lat
                                    else:
                                        l3_misses += 1
                                        m_acc += 1
                                        m_reads += 1
                                        wlat += hl3_lat + mem_lat
                                        # fill LLC (cbPred inlined)
                                        bypass3 = mark_dp = False
                                        if cb is not None and (
                                            cb_pfq is None
                                            or (blk >> boff) in cb_pfq
                                        ):
                                            if cb_pfq is not None:
                                                d_cb_pfqm += 1
                                                if cb_probe is not None:
                                                    cb_probe.emit(
                                                        now, EV_PFQ_HIT, blk
                                                    )
                                            bhh = fx_blk.get(blk)
                                            if bhh is None:
                                                if bh_pg:
                                                    pg_ = blk >> boff
                                                    sb_ = fx_pgb.get(pg_)
                                                    if sb_ is None:
                                                        sb_ = fx_pgb[pg_] = fold_xor(
                                                            pg_ << boff, bh_bits
                                                        )
                                                    bhh = fx_blk[blk] = sb_ ^ (blk & bmask)
                                                else:
                                                    bhh = fx_blk[blk] = fold_xor(
                                                        blk, bh_bits
                                                    )
                                            doa = bh_vals[bhh] > bh_thresh
                                            if cb_obs is not None:
                                                cb_obs(blk, doa)
                                            if doa:
                                                d_cb_doap += 1
                                                if cb_probe is not None:
                                                    cb_probe.emit(
                                                        now,
                                                        EV_LLC_BYPASS,
                                                        blk,
                                                    )
                                                bypass3 = True
                                            elif cb_probe is not None:
                                                mark_dp = True
                                                cb_probe.emit(
                                                    now, EV_LLC_MARK_DP, blk
                                                )
                                            else:
                                                mark_dp = True
                                        if bypass3:
                                            l3_byp += 1
                                            victim3 = None
                                        else:
                                            lines3 = l3_lines[set_c3]
                                            victim3 = None
                                            w3 = None
                                            if len(tc3) < l3_assoc:
                                                for wi2, ex in enumerate(
                                                    lines3
                                                ):
                                                    if ex is None:
                                                        w3 = wi2
                                                        break
                                            if w3 is None:
                                                if l3_lru is not None:
                                                    row = l3_stamps[set_c3]
                                                    w3 = l3_vw[set_c3]
                                                    if w3 >= 0 and row[w3] == l3_vs[set_c3]:
                                                        l3_vw[set_c3] = -1
                                                    else:
                                                        w3 = 0
                                                        vb_ = row[0]
                                                        rw_ = -1
                                                        rs_ = 0
                                                        for vx_ in range(1, l3_assoc):
                                                            sx_ = row[vx_]
                                                            if sx_ < vb_:
                                                                rw_ = w3
                                                                rs_ = vb_
                                                                w3 = vx_
                                                                vb_ = sx_
                                                            elif rw_ < 0 or sx_ < rs_:
                                                                rw_ = vx_
                                                                rs_ = sx_
                                                        l3_vw[set_c3] = rw_
                                                        l3_vs[set_c3] = rs_
                                                else:
                                                    row = l3_rrpv[set_c3]
                                                    while l3_rmax not in row:
                                                        for wi2 in range(
                                                            l3_assoc
                                                        ):
                                                            row[wi2] += 1
                                                    w3 = row.index(l3_rmax)
                                                victim3 = lines3[w3]
                                                del tc3[victim3.tag]
                                                lines3[w3] = None
                                                l3.content_version += 1
                                                l3_evicts += 1
                                                if victim3.dirty:
                                                    l3_wb += 1
                                                if l3_res is not None:
                                                    l3_res.evict(
                                                        (set_c3, w3), now
                                                    )
                                                if (
                                                    cb is not None
                                                    and victim3.dp
                                                ):
                                                    # cb.on_evict inlined: bHIST training + verdict event
                                                    tv_ = victim3.tag
                                                    bhh2 = fx_blk.get(tv_)
                                                    if bhh2 is None:
                                                        if bh_pg:
                                                            pg_ = tv_ >> boff
                                                            sb_ = fx_pgb.get(pg_)
                                                            if sb_ is None:
                                                                sb_ = fx_pgb[pg_] = fold_xor(
                                                                    pg_ << boff, bh_bits
                                                                )
                                                            bhh2 = fx_blk[tv_] = sb_ ^ (tv_ & bmask)
                                                        else:
                                                            bhh2 = fx_blk[tv_] = fold_xor(
                                                                tv_, bh_bits
                                                            )
                                                    if victim3.accessed:
                                                        bh_vals[bhh2] = 0
                                                        d_bh_ndoa += 1
                                                    else:
                                                        cv_ = bh_vals[bhh2]
                                                        if cv_ < bh_cmax:
                                                            bh_vals[bhh2] = cv_ + 1
                                                        d_bh_doa += 1
                                                        d_cb_evobs += 1
                                                    if cb_probe is not None:
                                                        cb_probe.emit(
                                                            now,
                                                            EV_LLC_VERDICT,
                                                            tv_,
                                                            False,
                                                            not victim3.accessed,
                                                        )
                                            if pool_:
                                                ln = pool_.pop()
                                                ln.tag = blk
                                                ln.dirty = False
                                                ln.accessed = False
                                                ln.dp = False
                                                ln.aux = None
                                            else:
                                                ln = line_cls(blk, False)
                                            if mark_dp:
                                                ln.dp = True
                                            lines3[w3] = ln
                                            tc3[blk] = w3
                                            l3.content_version += 1
                                            if l3_lru is not None:
                                                l3_lru._clock += 1
                                                l3_stamps[set_c3][w3] = (
                                                    l3_lru._clock
                                                )
                                            else:
                                                l3_rrpv[set_c3][w3] = (
                                                    l3_rmax - 1
                                                )
                                            l3_fills += 1
                                            if l3_res is not None:
                                                l3_res.fill(
                                                    (set_c3, w3), now
                                                )
                                        if victim3 is not None:
                                            vt = victim3.tag
                                            s1 = vt & l1_mask
                                            wv = l1_tags[s1].get(vt)
                                            in1 = None
                                            if wv is not None:
                                                l1_inv += 1
                                                in1 = l1_lines[s1][wv]
                                                del l1_tags[s1][vt]
                                                l1_lines[s1][wv] = None
                                                l1.content_version += 1
                                                l1_evicts += 1
                                                if in1.dirty:
                                                    l1_wb += 1
                                                if l1_lru is None:
                                                    l1_rrpv[s1][wv] = l1_rmax
                                            s2 = vt & l2_mask
                                            wv2 = l2_tags[s2].get(vt)
                                            in2 = None
                                            if wv2 is not None:
                                                l2_inv += 1
                                                in2 = l2_lines[s2][wv2]
                                                del l2_tags[s2][vt]
                                                l2_lines[s2][wv2] = None
                                                l2.content_version += 1
                                                l2_evicts += 1
                                                if in2.dirty:
                                                    l2_wb += 1
                                                if l2_lru is None:
                                                    l2_rrpv[s2][wv2] = (
                                                        l2_rmax
                                                    )
                                            if (
                                                in1 is not None
                                                or in2 is not None
                                            ):
                                                h_incl += 1
                                            if (
                                                victim3.dirty
                                                or (in1 and in1.dirty)
                                                or (in2 and in2.dirty)
                                            ):
                                                m_acc += 1
                                                m_writes += 1
                                            if victim3 is not None:
                                                pool_.append(victim3)
                                            if in1 is not None:
                                                pool_.append(in1)
                                            if in2 is not None:
                                                pool_.append(in2)
                                    # fill L2 (walk loads land in L2)
                                    lines2 = l2_lines[set_c]
                                    victim2 = None
                                    w2 = None
                                    if len(tc) < l2_assoc:
                                        for wi2, ex in enumerate(lines2):
                                            if ex is None:
                                                w2 = wi2
                                                break
                                    if w2 is None:
                                        if l2_lru is not None:
                                            row = l2_stamps[set_c]
                                            w2 = l2_vw[set_c]
                                            if w2 >= 0 and row[w2] == l2_vs[set_c]:
                                                l2_vw[set_c] = -1
                                            else:
                                                w2 = 0
                                                vb_ = row[0]
                                                rw_ = -1
                                                rs_ = 0
                                                for vx_ in range(1, l2_assoc):
                                                    sx_ = row[vx_]
                                                    if sx_ < vb_:
                                                        rw_ = w2
                                                        rs_ = vb_
                                                        w2 = vx_
                                                        vb_ = sx_
                                                    elif rw_ < 0 or sx_ < rs_:
                                                        rw_ = vx_
                                                        rs_ = sx_
                                                l2_vw[set_c] = rw_
                                                l2_vs[set_c] = rs_
                                        else:
                                            row = l2_rrpv[set_c]
                                            while l2_rmax not in row:
                                                for wi2 in range(l2_assoc):
                                                    row[wi2] += 1
                                            w2 = row.index(l2_rmax)
                                        victim2 = lines2[w2]
                                        del tc[victim2.tag]
                                        lines2[w2] = None
                                        l2.content_version += 1
                                        l2_evicts += 1
                                        if victim2.dirty:
                                            l2_wb += 1
                                    if pool_:
                                        ln = pool_.pop()
                                        ln.tag = blk
                                        ln.dirty = False
                                        ln.accessed = False
                                        ln.dp = False
                                        ln.aux = None
                                    else:
                                        ln = line_cls(blk, False)
                                    lines2[w2] = ln
                                    tc[blk] = w2
                                    l2.content_version += 1
                                    if l2_lru is not None:
                                        l2_lru._clock += 1
                                        l2_stamps[set_c][w2] = l2_lru._clock
                                    else:
                                        l2_rrpv[set_c][w2] = l2_rmax - 1
                                    l2_fills += 1
                                    if victim2 is not None:
                                        if victim2.dirty:
                                            vt = victim2.tag
                                            s3 = vt & l3_mask
                                            wv3 = l3_tags[s3].get(vt)
                                            if wv3 is not None:
                                                l3_lines[s3][wv3].dirty = (
                                                    True
                                                )
                                            else:
                                                m_acc += 1
                                                m_writes += 1
                                                h_orphan += 1
                                        if victim2 is not None:
                                            pool_.append(victim2)
                                # pwc.fill inlined: install the walk at
                                # every level (L1 first, as the plan does)
                                wtag = ivpn >> sh3
                                pw1_clk += 1
                                if wtag not in pw1 and len(pw1) >= pw1_cap:
                                    pw1_pop(last=False)
                                pw1[wtag] = pw1_clk
                                pw1_mte(wtag)
                                wtag = ivpn >> sh2
                                pw2_clk += 1
                                if wtag not in pw2 and len(pw2) >= pw2_cap:
                                    pw2_pop(last=False)
                                pw2[wtag] = pw2_clk
                                pw2_mte(wtag)
                                wtag = ivpn >> sh1
                                pw3_clk += 1
                                if wtag not in pw3 and len(pw3) >= pw3_cap:
                                    pw3_pop(last=False)
                                pw3[wtag] = pw3_clk
                                pw3_mte(wtag)
                                w_cycles += wlat
                                pfn_to_vpn[pfn_i] = ivpn
                                if probe is not None:
                                    probe.emit(now, EV_WALK, ivpn, wlat)
                                penalty = (
                                    l2_tlb_latency + wlat * walk_exposure
                                )
                                # LLT fill (dpPred decision inlined)
                                lt_install = True
                                lt_pch = pc
                                if dp is not None:
                                    if dp_demote:
                                        lt_fill(ivpn, pfn_i, pc, now)
                                        lt_install = False
                                    else:
                                        pc_h = fx_pc.get(pc)
                                        if pc_h is None:
                                            pc_h = fx_pc[pc] = fold_xor(
                                                pc, dp_pcbits
                                            )
                                        lt_pch = pc_h
                                        if dp_vbits:
                                            vh = fx_vpn.get(ivpn)
                                            if vh is None:
                                                vh = fx_vpn[ivpn] = (
                                                    fold_xor(
                                                        ivpn, dp_vbits
                                                    )
                                                )
                                        else:
                                            vh = 0
                                        doa = (
                                            ph_vals[pc_h * ph_cols + vh]
                                            > dp_thresh
                                        )
                                        if dp_obs is not None:
                                            dp_obs(ivpn, doa)
                                        if doa:
                                            lt_install = False
                                            d_dp_doap += 1
                                            if dp_sink is not None:
                                                # notify_doa_page + PFQ insert inlined
                                                if pfq_q is None:
                                                    dp_sink(pfn_i)
                                                else:
                                                    if pfn_i not in pfq_members:
                                                        if len(pfq_q) >= pfq_cap:
                                                            pfq_members.discard(
                                                                pfq_q.popleft()
                                                            )
                                                            d_pfq_ev += 1
                                                        pfq_q.append(pfn_i)
                                                        pfq_members.add(pfn_i)
                                                        d_pfq_ins += 1
                                                    d_cb_note += 1
                                                if dp_probe is not None:
                                                    dp_probe.emit(
                                                        now, EV_PFQ_PUSH,
                                                        pfn_i,
                                                    )
                                            if sh_entries is not None:
                                                if ivpn in sh_entries:
                                                    del sh_entries[ivpn]
                                                elif (
                                                    len(sh_entries)
                                                    >= sh_cap
                                                ):
                                                    ev_vpn, _ = (
                                                        sh_entries.popitem(
                                                            last=False
                                                        )
                                                    )
                                                    d_sh_ev += 1
                                                    if sh_probe is not None:
                                                        sh_probe.emit(
                                                            now,
                                                            EV_SHADOW_EVICT,
                                                            ev_vpn,
                                                        )
                                                sh_entries[ivpn] = (
                                                    pfn_i, pc_h
                                                )
                                                d_sh_ins += 1
                                                if dp_probe is not None:
                                                    dp_probe.emit(
                                                        now,
                                                        EV_SHADOW_PROMOTE,
                                                        ivpn, pfn_i,
                                                    )
                                            if dp_probe is not None:
                                                dp_probe.emit(
                                                    now, EV_LLT_BYPASS,
                                                    ivpn, pfn_i,
                                                )
                                            lt_byp += 1
                                if lt_install:
                                    set_l = ivpn & lt_mask
                                    tags_l = lt_tags[set_l]
                                    entries_l = lt_entries[set_l]
                                    wl = None
                                    if len(tags_l) < lt_assoc:
                                        for wi2, ex in enumerate(entries_l):
                                            if ex is None:
                                                wl = wi2
                                                break
                                    if wl is None:
                                        if lt_lru is not None:
                                            row = lt_stamps[set_l]
                                            wl = lt_vw[set_l]
                                            if wl >= 0 and row[wl] == lt_vs[set_l]:
                                                lt_vw[set_l] = -1
                                            else:
                                                wl = 0
                                                vb_ = row[0]
                                                rw_ = -1
                                                rs_ = 0
                                                for vx_ in range(1, lt_assoc):
                                                    sx_ = row[vx_]
                                                    if sx_ < vb_:
                                                        rw_ = wl
                                                        rs_ = vb_
                                                        wl = vx_
                                                        vb_ = sx_
                                                    elif rw_ < 0 or sx_ < rs_:
                                                        rw_ = vx_
                                                        rs_ = sx_
                                                lt_vw[set_l] = rw_
                                                lt_vs[set_l] = rs_
                                        else:
                                            row = lt_rrpv[set_l]
                                            while lt_rmax not in row:
                                                for wi2 in range(lt_assoc):
                                                    row[wi2] += 1
                                            wl = row.index(lt_rmax)
                                        victim_l = entries_l[wl]
                                        del tags_l[victim_l.vpn]
                                        entries_l[wl] = None
                                        lt.content_version += 1
                                        lt_evicts += 1
                                        # pooled early: only read (never reissued) until the fill below
                                        if (
                                            victim_l is not last_ient
                                            and victim_l is not last_dent
                                        ):
                                            epool_.append(victim_l)
                                        if lt_res is not None:
                                            lt_res.evict((set_l, wl), now)
                                        if dp is not None:
                                            # on_evict training inlined
                                            vv = victim_l.vpn
                                            if dp_vbits:
                                                vh2 = fx_vpn.get(vv)
                                                if vh2 is None:
                                                    vh2 = fx_vpn[vv] = (
                                                        fold_xor(
                                                            vv, dp_vbits
                                                        )
                                                    )
                                            else:
                                                vh2 = 0
                                            pidx = (
                                                (victim_l.pc_hash % ph_rows)
                                                * ph_cols + vh2
                                            )
                                            if victim_l.accessed:
                                                ph_vals[pidx] = 0
                                                d_ph_ndoa += 1
                                            else:
                                                pv = ph_vals[pidx]
                                                if pv < ph_max:
                                                    ph_vals[pidx] = pv + 1
                                                d_ph_doa += 1
                                                d_dp_evobs += 1
                                            if dp_probe is not None:
                                                dp_probe.emit(
                                                    now, EV_LLT_VERDICT,
                                                    victim_l.vpn, False,
                                                    not victim_l.accessed,
                                                )
                                    if epool_:
                                        le = epool_.pop()
                                        le.vpn = ivpn
                                        le.pfn = pfn_i
                                        le.pc_hash = lt_pch
                                        le.accessed = False
                                        le.aux = None
                                        le.asid = 0
                                        le.global_page = False
                                        le.huge = False
                                    else:
                                        le = entry_cls(ivpn, pfn_i, lt_pch)
                                    entries_l[wl] = le
                                    tags_l[ivpn] = wl
                                    lt.content_version += 1
                                    if lt_lru is not None:
                                        lt_lru._clock += 1
                                        lt_stamps[set_l][wl] = lt_lru._clock
                                    else:
                                        lt_rrpv[set_l][wl] = lt_rmax - 1
                                    lt_fills += 1
                                    if lt_res is not None:
                                        lt_res.fill((set_l, wl), now)
                        # L1 I-TLB fill
                        set_i = ivpn & it_mask
                        tags_i = it_tags[set_i]
                        entries_i = it_entries[set_i]
                        wi_ = None
                        if len(tags_i) < it_assoc:
                            for wi2, ex in enumerate(entries_i):
                                if ex is None:
                                    wi_ = wi2
                                    break
                        if wi_ is None:
                            if it_lru is not None:
                                row = it_stamps[set_i]
                                wi_ = it_vw[set_i]
                                if wi_ >= 0 and row[wi_] == it_vs[set_i]:
                                    it_vw[set_i] = -1
                                else:
                                    wi_ = 0
                                    vb_ = row[0]
                                    rw_ = -1
                                    rs_ = 0
                                    for vx_ in range(1, it_assoc):
                                        sx_ = row[vx_]
                                        if sx_ < vb_:
                                            rw_ = wi_
                                            rs_ = vb_
                                            wi_ = vx_
                                            vb_ = sx_
                                        elif rw_ < 0 or sx_ < rs_:
                                            rw_ = vx_
                                            rs_ = sx_
                                    it_vw[set_i] = rw_
                                    it_vs[set_i] = rs_
                            else:
                                row = it_rrpv[set_i]
                                while it_rmax not in row:
                                    for wi2 in range(it_assoc):
                                        row[wi2] += 1
                                wi_ = row.index(it_rmax)
                            victim_i = entries_i[wi_]
                            del tags_i[victim_i.vpn]
                            entries_i[wi_] = None
                            it.content_version += 1
                            it_evicts += 1
                            if (
                                victim_i is not last_ient
                                and victim_i is not last_dent
                            ):
                                epool_.append(victim_i)
                        if epool_:
                            ent = epool_.pop()
                            ent.vpn = ivpn
                            ent.pfn = pfn_i
                            ent.pc_hash = pc
                            ent.accessed = False
                            ent.aux = None
                            ent.asid = 0
                            ent.global_page = False
                            ent.huge = False
                        else:
                            ent = entry_cls(ivpn, pfn_i, pc)
                        entries_i[wi_] = ent
                        tags_i[ivpn] = wi_
                        it.content_version += 1
                        if it_lru is not None:
                            it_lru._clock += 1
                            it_stamps[set_i][wi_] = it_lru._clock
                        else:
                            it_rrpv[set_i][wi_] = it_rmax - 1
                        it_fills += 1
                        if pf:
                            last_ivpn = ivpn
                            last_ient = ent

                # ---- data-side translation ----------------------------- #
                dvpn = vaddr >> ps
                if pf and dvpn == last_dvpn:
                    dt_hits += 1
                    last_dent.accessed = True
                    pfn = last_dent.pfn
                else:
                    set_d = dvpn & dt_mask
                    tags_d = dt_tags[set_d]
                    wd = tags_d.get(dvpn)
                    if wd is not None:
                        dt_hits += 1
                        dentry = dt_entries[set_d][wd]
                        dentry.accessed = True
                        if dt_lru is not None:
                            dt_lru._clock += 1
                            dt_stamps[set_d][wd] = dt_lru._clock
                        else:
                            dt_rrpv[set_d][wd] = 0
                        pfn = dentry.pfn
                        if pf:
                            last_dvpn = dvpn
                            last_dent = dentry
                    else:
                        dt_misses += 1
                        pfn = None
                        set_l = dvpn & lt_mask
                        tags_l = lt_tags[set_l]
                        wl = tags_l.get(dvpn)
                        if wl is not None:
                            lt_hits += 1
                            le = lt_entries[set_l][wl]
                            le.accessed = True
                            if lt_lru is not None:
                                lt_lru._clock += 1
                                lt_stamps[set_l][wl] = lt_lru._clock
                            else:
                                lt_rrpv[set_l][wl] = 0
                            if lt_res is not None:
                                lt_res.hit((set_l, wl), now)
                            pfn = le.pfn
                            penalty += l2_tlb_hit_penalty
                        else:
                            lt_misses += 1
                            if sh_entries is not None:
                                # shadow-miss fast path; hits (rare
                                # misprediction refills) take the real
                                # on_miss slow path
                                if dvpn in sh_entries:
                                    buffered = lt_on_miss(lt, dvpn, now)
                                    if buffered is not None:
                                        lt_vbh += 1
                                        pfn = buffered
                                        penalty += l2_tlb_hit_penalty
                                else:
                                    d_sh_miss += 1
                            if pfn is None:
                                # ---- page walk (walker.walk, the radix
                                # descent and the PWC probe all inlined) - #
                                w_walks += 1
                                if dvpn < 0 or dvpn >= vpn_limit:
                                    raise ValueError(
                                        f"vpn {dvpn:#x} outside "
                                        f"{VPN_BITS}-bit space"
                                    )
                                node = pt_root
                                widx = (dvpn >> sh1) & widx_mask
                                p0 = (node.frame << ps) | (widx << 3)
                                ch = node.children.get(widx)
                                if ch is None:
                                    ch = _Node(pt_alloc())
                                    node.children[widx] = ch
                                    pt_stats_add("nodes_allocated")
                                node = ch
                                widx = (dvpn >> sh2) & widx_mask
                                p1 = (node.frame << ps) | (widx << 3)
                                ch = node.children.get(widx)
                                if ch is None:
                                    ch = _Node(pt_alloc())
                                    node.children[widx] = ch
                                    pt_stats_add("nodes_allocated")
                                node = ch
                                widx = (dvpn >> sh3) & widx_mask
                                p2 = (node.frame << ps) | (widx << 3)
                                ch = node.children.get(widx)
                                if ch is None:
                                    ch = _Node(pt_alloc())
                                    node.children[widx] = ch
                                    pt_stats_add("nodes_allocated")
                                node = ch
                                widx = dvpn & widx_mask
                                p3 = (node.frame << ps) | (widx << 3)
                                pfn = node.children.get(widx)
                                if pfn is None:
                                    pfn = pt_alloc()
                                    node.children[widx] = pfn
                                    pt_stats_add("pages_mapped")
                                wtag = dvpn >> sh3
                                if wtag in pw1:
                                    pw1_clk += 1
                                    pw1[wtag] = pw1_clk
                                    pw1_mte(wtag)
                                    pw_l1h += 1
                                    wlat = pw_lat1
                                    w_memacc += 1
                                    path_rem = (p3,)
                                else:
                                    wtag = dvpn >> sh2
                                    if wtag in pw2:
                                        pw2_clk += 1
                                        pw2[wtag] = pw2_clk
                                        pw2_mte(wtag)
                                        pw_l2h += 1
                                        wlat = pw_lat2
                                        w_memacc += 2
                                        path_rem = (p2, p3)
                                    else:
                                        wtag = dvpn >> sh1
                                        if wtag in pw3:
                                            pw3_clk += 1
                                            pw3[wtag] = pw3_clk
                                            pw3_mte(wtag)
                                            pw_l3h += 1
                                            wlat = pw_lat3
                                            w_memacc += 3
                                            path_rem = (p1, p2, p3)
                                        else:
                                            pw_miss += 1
                                            wlat = pw_lat3
                                            w_memacc += 4
                                            path_rem = (p0, p1, p2, p3)
                                for pte_paddr in path_rem:
                                    blk = pte_paddr >> bs
                                    h_walkacc += 1
                                    set_c = blk & l2_mask
                                    tc = l2_tags[set_c]
                                    wc = tc.get(blk)
                                    if wc is not None:
                                        l2_hits += 1
                                        ln = l2_lines[set_c][wc]
                                        ln.accessed = True
                                        if l2_lru is not None:
                                            l2_lru._clock += 1
                                            l2_stamps[set_c][wc] = (
                                                l2_lru._clock
                                            )
                                        else:
                                            l2_rrpv[set_c][wc] = 0
                                        wlat += hl2_lat
                                        continue
                                    l2_misses += 1
                                    set_c3 = blk & l3_mask
                                    tc3 = l3_tags[set_c3]
                                    wc3 = tc3.get(blk)
                                    if wc3 is not None:
                                        l3_hits += 1
                                        ln = l3_lines[set_c3][wc3]
                                        ln.accessed = True
                                        if l3_lru is not None:
                                            l3_lru._clock += 1
                                            l3_stamps[set_c3][wc3] = (
                                                l3_lru._clock
                                            )
                                        else:
                                            l3_rrpv[set_c3][wc3] = 0
                                        if l3_res is not None:
                                            l3_res.hit((set_c3, wc3), now)
                                        wlat += hl3_lat
                                    else:
                                        l3_misses += 1
                                        m_acc += 1
                                        m_reads += 1
                                        wlat += hl3_lat + mem_lat
                                        # fill LLC (cbPred inlined)
                                        bypass3 = mark_dp = False
                                        if cb is not None and (
                                            cb_pfq is None
                                            or (blk >> boff) in cb_pfq
                                        ):
                                            if cb_pfq is not None:
                                                d_cb_pfqm += 1
                                                if cb_probe is not None:
                                                    cb_probe.emit(
                                                        now, EV_PFQ_HIT, blk
                                                    )
                                            bhh = fx_blk.get(blk)
                                            if bhh is None:
                                                if bh_pg:
                                                    pg_ = blk >> boff
                                                    sb_ = fx_pgb.get(pg_)
                                                    if sb_ is None:
                                                        sb_ = fx_pgb[pg_] = fold_xor(
                                                            pg_ << boff, bh_bits
                                                        )
                                                    bhh = fx_blk[blk] = sb_ ^ (blk & bmask)
                                                else:
                                                    bhh = fx_blk[blk] = fold_xor(
                                                        blk, bh_bits
                                                    )
                                            doa = bh_vals[bhh] > bh_thresh
                                            if cb_obs is not None:
                                                cb_obs(blk, doa)
                                            if doa:
                                                d_cb_doap += 1
                                                if cb_probe is not None:
                                                    cb_probe.emit(
                                                        now,
                                                        EV_LLC_BYPASS,
                                                        blk,
                                                    )
                                                bypass3 = True
                                            elif cb_probe is not None:
                                                mark_dp = True
                                                cb_probe.emit(
                                                    now, EV_LLC_MARK_DP, blk
                                                )
                                            else:
                                                mark_dp = True
                                        if bypass3:
                                            l3_byp += 1
                                            victim3 = None
                                        else:
                                            lines3 = l3_lines[set_c3]
                                            victim3 = None
                                            w3 = None
                                            if len(tc3) < l3_assoc:
                                                for wi2, ex in enumerate(
                                                    lines3
                                                ):
                                                    if ex is None:
                                                        w3 = wi2
                                                        break
                                            if w3 is None:
                                                if l3_lru is not None:
                                                    row = l3_stamps[set_c3]
                                                    w3 = l3_vw[set_c3]
                                                    if w3 >= 0 and row[w3] == l3_vs[set_c3]:
                                                        l3_vw[set_c3] = -1
                                                    else:
                                                        w3 = 0
                                                        vb_ = row[0]
                                                        rw_ = -1
                                                        rs_ = 0
                                                        for vx_ in range(1, l3_assoc):
                                                            sx_ = row[vx_]
                                                            if sx_ < vb_:
                                                                rw_ = w3
                                                                rs_ = vb_
                                                                w3 = vx_
                                                                vb_ = sx_
                                                            elif rw_ < 0 or sx_ < rs_:
                                                                rw_ = vx_
                                                                rs_ = sx_
                                                        l3_vw[set_c3] = rw_
                                                        l3_vs[set_c3] = rs_
                                                else:
                                                    row = l3_rrpv[set_c3]
                                                    while l3_rmax not in row:
                                                        for wi2 in range(
                                                            l3_assoc
                                                        ):
                                                            row[wi2] += 1
                                                    w3 = row.index(l3_rmax)
                                                victim3 = lines3[w3]
                                                del tc3[victim3.tag]
                                                lines3[w3] = None
                                                l3.content_version += 1
                                                l3_evicts += 1
                                                if victim3.dirty:
                                                    l3_wb += 1
                                                if l3_res is not None:
                                                    l3_res.evict(
                                                        (set_c3, w3), now
                                                    )
                                                if (
                                                    cb is not None
                                                    and victim3.dp
                                                ):
                                                    # cb.on_evict inlined: bHIST training + verdict event
                                                    tv_ = victim3.tag
                                                    bhh2 = fx_blk.get(tv_)
                                                    if bhh2 is None:
                                                        if bh_pg:
                                                            pg_ = tv_ >> boff
                                                            sb_ = fx_pgb.get(pg_)
                                                            if sb_ is None:
                                                                sb_ = fx_pgb[pg_] = fold_xor(
                                                                    pg_ << boff, bh_bits
                                                                )
                                                            bhh2 = fx_blk[tv_] = sb_ ^ (tv_ & bmask)
                                                        else:
                                                            bhh2 = fx_blk[tv_] = fold_xor(
                                                                tv_, bh_bits
                                                            )
                                                    if victim3.accessed:
                                                        bh_vals[bhh2] = 0
                                                        d_bh_ndoa += 1
                                                    else:
                                                        cv_ = bh_vals[bhh2]
                                                        if cv_ < bh_cmax:
                                                            bh_vals[bhh2] = cv_ + 1
                                                        d_bh_doa += 1
                                                        d_cb_evobs += 1
                                                    if cb_probe is not None:
                                                        cb_probe.emit(
                                                            now,
                                                            EV_LLC_VERDICT,
                                                            tv_,
                                                            False,
                                                            not victim3.accessed,
                                                        )
                                            if pool_:
                                                ln = pool_.pop()
                                                ln.tag = blk
                                                ln.dirty = False
                                                ln.accessed = False
                                                ln.dp = False
                                                ln.aux = None
                                            else:
                                                ln = line_cls(blk, False)
                                            if mark_dp:
                                                ln.dp = True
                                            lines3[w3] = ln
                                            tc3[blk] = w3
                                            l3.content_version += 1
                                            if l3_lru is not None:
                                                l3_lru._clock += 1
                                                l3_stamps[set_c3][w3] = (
                                                    l3_lru._clock
                                                )
                                            else:
                                                l3_rrpv[set_c3][w3] = (
                                                    l3_rmax - 1
                                                )
                                            l3_fills += 1
                                            if l3_res is not None:
                                                l3_res.fill(
                                                    (set_c3, w3), now
                                                )
                                        if victim3 is not None:
                                            vt = victim3.tag
                                            s1 = vt & l1_mask
                                            wv = l1_tags[s1].get(vt)
                                            in1 = None
                                            if wv is not None:
                                                l1_inv += 1
                                                in1 = l1_lines[s1][wv]
                                                del l1_tags[s1][vt]
                                                l1_lines[s1][wv] = None
                                                l1.content_version += 1
                                                l1_evicts += 1
                                                if in1.dirty:
                                                    l1_wb += 1
                                                if l1_lru is None:
                                                    l1_rrpv[s1][wv] = l1_rmax
                                            s2 = vt & l2_mask
                                            wv2 = l2_tags[s2].get(vt)
                                            in2 = None
                                            if wv2 is not None:
                                                l2_inv += 1
                                                in2 = l2_lines[s2][wv2]
                                                del l2_tags[s2][vt]
                                                l2_lines[s2][wv2] = None
                                                l2.content_version += 1
                                                l2_evicts += 1
                                                if in2.dirty:
                                                    l2_wb += 1
                                                if l2_lru is None:
                                                    l2_rrpv[s2][wv2] = (
                                                        l2_rmax
                                                    )
                                            if (
                                                in1 is not None
                                                or in2 is not None
                                            ):
                                                h_incl += 1
                                            if (
                                                victim3.dirty
                                                or (in1 and in1.dirty)
                                                or (in2 and in2.dirty)
                                            ):
                                                m_acc += 1
                                                m_writes += 1
                                            if victim3 is not None:
                                                pool_.append(victim3)
                                            if in1 is not None:
                                                pool_.append(in1)
                                            if in2 is not None:
                                                pool_.append(in2)
                                    # fill L2 (walk loads land in L2)
                                    lines2 = l2_lines[set_c]
                                    victim2 = None
                                    w2 = None
                                    if len(tc) < l2_assoc:
                                        for wi2, ex in enumerate(lines2):
                                            if ex is None:
                                                w2 = wi2
                                                break
                                    if w2 is None:
                                        if l2_lru is not None:
                                            row = l2_stamps[set_c]
                                            w2 = l2_vw[set_c]
                                            if w2 >= 0 and row[w2] == l2_vs[set_c]:
                                                l2_vw[set_c] = -1
                                            else:
                                                w2 = 0
                                                vb_ = row[0]
                                                rw_ = -1
                                                rs_ = 0
                                                for vx_ in range(1, l2_assoc):
                                                    sx_ = row[vx_]
                                                    if sx_ < vb_:
                                                        rw_ = w2
                                                        rs_ = vb_
                                                        w2 = vx_
                                                        vb_ = sx_
                                                    elif rw_ < 0 or sx_ < rs_:
                                                        rw_ = vx_
                                                        rs_ = sx_
                                                l2_vw[set_c] = rw_
                                                l2_vs[set_c] = rs_
                                        else:
                                            row = l2_rrpv[set_c]
                                            while l2_rmax not in row:
                                                for wi2 in range(l2_assoc):
                                                    row[wi2] += 1
                                            w2 = row.index(l2_rmax)
                                        victim2 = lines2[w2]
                                        del tc[victim2.tag]
                                        lines2[w2] = None
                                        l2.content_version += 1
                                        l2_evicts += 1
                                        if victim2.dirty:
                                            l2_wb += 1
                                    if pool_:
                                        ln = pool_.pop()
                                        ln.tag = blk
                                        ln.dirty = False
                                        ln.accessed = False
                                        ln.dp = False
                                        ln.aux = None
                                    else:
                                        ln = line_cls(blk, False)
                                    lines2[w2] = ln
                                    tc[blk] = w2
                                    l2.content_version += 1
                                    if l2_lru is not None:
                                        l2_lru._clock += 1
                                        l2_stamps[set_c][w2] = l2_lru._clock
                                    else:
                                        l2_rrpv[set_c][w2] = l2_rmax - 1
                                    l2_fills += 1
                                    if victim2 is not None:
                                        if victim2.dirty:
                                            vt = victim2.tag
                                            s3 = vt & l3_mask
                                            wv3 = l3_tags[s3].get(vt)
                                            if wv3 is not None:
                                                l3_lines[s3][wv3].dirty = (
                                                    True
                                                )
                                            else:
                                                m_acc += 1
                                                m_writes += 1
                                                h_orphan += 1
                                        if victim2 is not None:
                                            pool_.append(victim2)
                                # pwc.fill inlined: install the walk at
                                # every level (L1 first, as the plan does)
                                wtag = dvpn >> sh3
                                pw1_clk += 1
                                if wtag not in pw1 and len(pw1) >= pw1_cap:
                                    pw1_pop(last=False)
                                pw1[wtag] = pw1_clk
                                pw1_mte(wtag)
                                wtag = dvpn >> sh2
                                pw2_clk += 1
                                if wtag not in pw2 and len(pw2) >= pw2_cap:
                                    pw2_pop(last=False)
                                pw2[wtag] = pw2_clk
                                pw2_mte(wtag)
                                wtag = dvpn >> sh1
                                pw3_clk += 1
                                if wtag not in pw3 and len(pw3) >= pw3_cap:
                                    pw3_pop(last=False)
                                pw3[wtag] = pw3_clk
                                pw3_mte(wtag)
                                w_cycles += wlat
                                pfn_to_vpn[pfn] = dvpn
                                if probe is not None:
                                    probe.emit(now, EV_WALK, dvpn, wlat)
                                penalty += (
                                    l2_tlb_latency + wlat * walk_exposure
                                )
                                # LLT fill (dpPred decision inlined)
                                lt_install = True
                                lt_pch = pc
                                if dp is not None:
                                    if dp_demote:
                                        lt_fill(dvpn, pfn, pc, now)
                                        lt_install = False
                                    else:
                                        pc_h = fx_pc.get(pc)
                                        if pc_h is None:
                                            pc_h = fx_pc[pc] = fold_xor(
                                                pc, dp_pcbits
                                            )
                                        lt_pch = pc_h
                                        if dp_vbits:
                                            vh = fx_vpn.get(dvpn)
                                            if vh is None:
                                                vh = fx_vpn[dvpn] = (
                                                    fold_xor(
                                                        dvpn, dp_vbits
                                                    )
                                                )
                                        else:
                                            vh = 0
                                        doa = (
                                            ph_vals[pc_h * ph_cols + vh]
                                            > dp_thresh
                                        )
                                        if dp_obs is not None:
                                            dp_obs(dvpn, doa)
                                        if doa:
                                            lt_install = False
                                            d_dp_doap += 1
                                            if dp_sink is not None:
                                                # notify_doa_page + PFQ insert inlined
                                                if pfq_q is None:
                                                    dp_sink(pfn)
                                                else:
                                                    if pfn not in pfq_members:
                                                        if len(pfq_q) >= pfq_cap:
                                                            pfq_members.discard(
                                                                pfq_q.popleft()
                                                            )
                                                            d_pfq_ev += 1
                                                        pfq_q.append(pfn)
                                                        pfq_members.add(pfn)
                                                        d_pfq_ins += 1
                                                    d_cb_note += 1
                                                if dp_probe is not None:
                                                    dp_probe.emit(
                                                        now, EV_PFQ_PUSH,
                                                        pfn,
                                                    )
                                            if sh_entries is not None:
                                                if dvpn in sh_entries:
                                                    del sh_entries[dvpn]
                                                elif (
                                                    len(sh_entries)
                                                    >= sh_cap
                                                ):
                                                    ev_vpn, _ = (
                                                        sh_entries.popitem(
                                                            last=False
                                                        )
                                                    )
                                                    d_sh_ev += 1
                                                    if sh_probe is not None:
                                                        sh_probe.emit(
                                                            now,
                                                            EV_SHADOW_EVICT,
                                                            ev_vpn,
                                                        )
                                                sh_entries[dvpn] = (
                                                    pfn, pc_h
                                                )
                                                d_sh_ins += 1
                                                if dp_probe is not None:
                                                    dp_probe.emit(
                                                        now,
                                                        EV_SHADOW_PROMOTE,
                                                        dvpn, pfn,
                                                    )
                                            if dp_probe is not None:
                                                dp_probe.emit(
                                                    now, EV_LLT_BYPASS,
                                                    dvpn, pfn,
                                                )
                                            lt_byp += 1
                                if lt_install:
                                    set_l = dvpn & lt_mask
                                    tags_l = lt_tags[set_l]
                                    entries_l = lt_entries[set_l]
                                    wl = None
                                    if len(tags_l) < lt_assoc:
                                        for wi2, ex in enumerate(entries_l):
                                            if ex is None:
                                                wl = wi2
                                                break
                                    if wl is None:
                                        if lt_lru is not None:
                                            row = lt_stamps[set_l]
                                            wl = lt_vw[set_l]
                                            if wl >= 0 and row[wl] == lt_vs[set_l]:
                                                lt_vw[set_l] = -1
                                            else:
                                                wl = 0
                                                vb_ = row[0]
                                                rw_ = -1
                                                rs_ = 0
                                                for vx_ in range(1, lt_assoc):
                                                    sx_ = row[vx_]
                                                    if sx_ < vb_:
                                                        rw_ = wl
                                                        rs_ = vb_
                                                        wl = vx_
                                                        vb_ = sx_
                                                    elif rw_ < 0 or sx_ < rs_:
                                                        rw_ = vx_
                                                        rs_ = sx_
                                                lt_vw[set_l] = rw_
                                                lt_vs[set_l] = rs_
                                        else:
                                            row = lt_rrpv[set_l]
                                            while lt_rmax not in row:
                                                for wi2 in range(lt_assoc):
                                                    row[wi2] += 1
                                            wl = row.index(lt_rmax)
                                        victim_l = entries_l[wl]
                                        del tags_l[victim_l.vpn]
                                        entries_l[wl] = None
                                        lt.content_version += 1
                                        lt_evicts += 1
                                        # pooled early: only read (never reissued) until the fill below
                                        if (
                                            victim_l is not last_ient
                                            and victim_l is not last_dent
                                        ):
                                            epool_.append(victim_l)
                                        if lt_res is not None:
                                            lt_res.evict((set_l, wl), now)
                                        if dp is not None:
                                            # on_evict training inlined
                                            vv = victim_l.vpn
                                            if dp_vbits:
                                                vh2 = fx_vpn.get(vv)
                                                if vh2 is None:
                                                    vh2 = fx_vpn[vv] = (
                                                        fold_xor(
                                                            vv, dp_vbits
                                                        )
                                                    )
                                            else:
                                                vh2 = 0
                                            pidx = (
                                                (victim_l.pc_hash % ph_rows)
                                                * ph_cols + vh2
                                            )
                                            if victim_l.accessed:
                                                ph_vals[pidx] = 0
                                                d_ph_ndoa += 1
                                            else:
                                                pv = ph_vals[pidx]
                                                if pv < ph_max:
                                                    ph_vals[pidx] = pv + 1
                                                d_ph_doa += 1
                                                d_dp_evobs += 1
                                            if dp_probe is not None:
                                                dp_probe.emit(
                                                    now, EV_LLT_VERDICT,
                                                    victim_l.vpn, False,
                                                    not victim_l.accessed,
                                                )
                                    if epool_:
                                        le = epool_.pop()
                                        le.vpn = dvpn
                                        le.pfn = pfn
                                        le.pc_hash = lt_pch
                                        le.accessed = False
                                        le.aux = None
                                        le.asid = 0
                                        le.global_page = False
                                        le.huge = False
                                    else:
                                        le = entry_cls(dvpn, pfn, lt_pch)
                                    entries_l[wl] = le
                                    tags_l[dvpn] = wl
                                    lt.content_version += 1
                                    if lt_lru is not None:
                                        lt_lru._clock += 1
                                        lt_stamps[set_l][wl] = lt_lru._clock
                                    else:
                                        lt_rrpv[set_l][wl] = lt_rmax - 1
                                    lt_fills += 1
                                    if lt_res is not None:
                                        lt_res.fill((set_l, wl), now)
                        # L1 D-TLB fill
                        set_d = dvpn & dt_mask
                        tags_d = dt_tags[set_d]
                        entries_d = dt_entries[set_d]
                        wd_ = None
                        if len(tags_d) < dt_assoc:
                            for wi2, ex in enumerate(entries_d):
                                if ex is None:
                                    wd_ = wi2
                                    break
                        if wd_ is None:
                            if dt_lru is not None:
                                row = dt_stamps[set_d]
                                wd_ = dt_vw[set_d]
                                if wd_ >= 0 and row[wd_] == dt_vs[set_d]:
                                    dt_vw[set_d] = -1
                                else:
                                    wd_ = 0
                                    vb_ = row[0]
                                    rw_ = -1
                                    rs_ = 0
                                    for vx_ in range(1, dt_assoc):
                                        sx_ = row[vx_]
                                        if sx_ < vb_:
                                            rw_ = wd_
                                            rs_ = vb_
                                            wd_ = vx_
                                            vb_ = sx_
                                        elif rw_ < 0 or sx_ < rs_:
                                            rw_ = vx_
                                            rs_ = sx_
                                    dt_vw[set_d] = rw_
                                    dt_vs[set_d] = rs_
                            else:
                                row = dt_rrpv[set_d]
                                while dt_rmax not in row:
                                    for wi2 in range(dt_assoc):
                                        row[wi2] += 1
                                wd_ = row.index(dt_rmax)
                            victim_d = entries_d[wd_]
                            del tags_d[victim_d.vpn]
                            entries_d[wd_] = None
                            dt.content_version += 1
                            dt_evicts += 1
                            if (
                                victim_d is not last_ient
                                and victim_d is not last_dent
                            ):
                                epool_.append(victim_d)
                        if epool_:
                            dent = epool_.pop()
                            dent.vpn = dvpn
                            dent.pfn = pfn
                            dent.pc_hash = pc
                            dent.accessed = False
                            dent.aux = None
                            dent.asid = 0
                            dent.global_page = False
                            dent.huge = False
                        else:
                            dent = entry_cls(dvpn, pfn, pc)
                        entries_d[wd_] = dent
                        tags_d[dvpn] = wd_
                        dt.content_version += 1
                        if dt_lru is not None:
                            dt_lru._clock += 1
                            dt_stamps[set_d][wd_] = dt_lru._clock
                        else:
                            dt_rrpv[set_d][wd_] = dt_rmax - 1
                        dt_fills += 1
                        if pf:
                            last_dvpn = dvpn
                            last_dent = dent

                # ---- physical data access ------------------------------ #
                block = (pfn << boff) | ((vaddr >> bs) & bmask)
                h_acc += 1
                set_1 = block & l1_mask
                t1 = l1_tags[set_1]
                w1 = t1.get(block)
                if w1 is not None:
                    l1_hits += 1
                    ln = l1_lines[set_1][w1]
                    ln.accessed = True
                    if is_write:
                        ln.dirty = True
                    if l1_lru is not None:
                        l1_lru._clock += 1
                        l1_stamps[set_1][w1] = l1_lru._clock
                    else:
                        l1_rrpv[set_1][w1] = 0
                else:
                    l1_misses += 1
                    set_2 = block & l2_mask
                    t2 = l2_tags[set_2]
                    w2_ = t2.get(block)
                    if w2_ is not None:
                        l2_hits += 1
                        ln = l2_lines[set_2][w2_]
                        ln.accessed = True
                        if is_write:
                            ln.dirty = True
                        if l2_lru is not None:
                            l2_lru._clock += 1
                            l2_stamps[set_2][w2_] = l2_lru._clock
                        else:
                            l2_rrpv[set_2][w2_] = 0
                        penalty += l2_hit_penalty
                    else:
                        l2_misses += 1
                        set_3 = block & l3_mask
                        t3 = l3_tags[set_3]
                        w3_ = t3.get(block)
                        if w3_ is not None:
                            l3_hits += 1
                            ln = l3_lines[set_3][w3_]
                            ln.accessed = True
                            if is_write:
                                ln.dirty = True
                            if l3_lru is not None:
                                l3_lru._clock += 1
                                l3_stamps[set_3][w3_] = l3_lru._clock
                            else:
                                l3_rrpv[set_3][w3_] = 0
                            if l3_res is not None:
                                l3_res.hit((set_3, w3_), now)
                            penalty += llc_hit_penalty
                        else:
                            l3_misses += 1
                            m_acc += 1
                            if is_write:
                                m_writes += 1
                            else:
                                m_reads += 1
                            h_demand += 1
                            penalty += mem_penalty
                            # fill LLC (cbPred inlined)
                            bypass3 = mark_dp = False
                            if cb is not None and (
                                cb_pfq is None
                                or (block >> boff) in cb_pfq
                            ):
                                if cb_pfq is not None:
                                    d_cb_pfqm += 1
                                    if cb_probe is not None:
                                        cb_probe.emit(
                                            now, EV_PFQ_HIT, block
                                        )
                                bhh = fx_blk.get(block)
                                if bhh is None:
                                    if bh_pg:
                                        pg_ = block >> boff
                                        sb_ = fx_pgb.get(pg_)
                                        if sb_ is None:
                                            sb_ = fx_pgb[pg_] = fold_xor(
                                                pg_ << boff, bh_bits
                                            )
                                        bhh = fx_blk[block] = sb_ ^ (block & bmask)
                                    else:
                                        bhh = fx_blk[block] = fold_xor(
                                            block, bh_bits
                                        )
                                doa = bh_vals[bhh] > bh_thresh
                                if cb_obs is not None:
                                    cb_obs(block, doa)
                                if doa:
                                    d_cb_doap += 1
                                    if cb_probe is not None:
                                        cb_probe.emit(
                                            now, EV_LLC_BYPASS, block
                                        )
                                    bypass3 = True
                                elif cb_probe is not None:
                                    mark_dp = True
                                    cb_probe.emit(
                                        now, EV_LLC_MARK_DP, block
                                    )
                                else:
                                    mark_dp = True
                            if bypass3:
                                l3_byp += 1
                                victim3 = None
                            else:
                                lines3 = l3_lines[set_3]
                                victim3 = None
                                w3f = None
                                if len(t3) < l3_assoc:
                                    for wi2, ex in enumerate(lines3):
                                        if ex is None:
                                            w3f = wi2
                                            break
                                if w3f is None:
                                    if l3_lru is not None:
                                        row = l3_stamps[set_3]
                                        w3f = l3_vw[set_3]
                                        if w3f >= 0 and row[w3f] == l3_vs[set_3]:
                                            l3_vw[set_3] = -1
                                        else:
                                            w3f = 0
                                            vb_ = row[0]
                                            rw_ = -1
                                            rs_ = 0
                                            for vx_ in range(1, l3_assoc):
                                                sx_ = row[vx_]
                                                if sx_ < vb_:
                                                    rw_ = w3f
                                                    rs_ = vb_
                                                    w3f = vx_
                                                    vb_ = sx_
                                                elif rw_ < 0 or sx_ < rs_:
                                                    rw_ = vx_
                                                    rs_ = sx_
                                            l3_vw[set_3] = rw_
                                            l3_vs[set_3] = rs_
                                    else:
                                        row = l3_rrpv[set_3]
                                        while l3_rmax not in row:
                                            for wi2 in range(l3_assoc):
                                                row[wi2] += 1
                                        w3f = row.index(l3_rmax)
                                    victim3 = lines3[w3f]
                                    del t3[victim3.tag]
                                    lines3[w3f] = None
                                    l3.content_version += 1
                                    l3_evicts += 1
                                    if victim3.dirty:
                                        l3_wb += 1
                                    if l3_res is not None:
                                        l3_res.evict((set_3, w3f), now)
                                    if cb is not None and victim3.dp:
                                        # cb.on_evict inlined: bHIST training + verdict event
                                        tv_ = victim3.tag
                                        bhh2 = fx_blk.get(tv_)
                                        if bhh2 is None:
                                            if bh_pg:
                                                pg_ = tv_ >> boff
                                                sb_ = fx_pgb.get(pg_)
                                                if sb_ is None:
                                                    sb_ = fx_pgb[pg_] = fold_xor(
                                                        pg_ << boff, bh_bits
                                                    )
                                                bhh2 = fx_blk[tv_] = sb_ ^ (tv_ & bmask)
                                            else:
                                                bhh2 = fx_blk[tv_] = fold_xor(
                                                    tv_, bh_bits
                                                )
                                        if victim3.accessed:
                                            bh_vals[bhh2] = 0
                                            d_bh_ndoa += 1
                                        else:
                                            cv_ = bh_vals[bhh2]
                                            if cv_ < bh_cmax:
                                                bh_vals[bhh2] = cv_ + 1
                                            d_bh_doa += 1
                                            d_cb_evobs += 1
                                        if cb_probe is not None:
                                            cb_probe.emit(
                                                now,
                                                EV_LLC_VERDICT,
                                                tv_,
                                                False,
                                                not victim3.accessed,
                                            )
                                if pool_:
                                    ln = pool_.pop()
                                    ln.tag = block
                                    ln.dirty = False
                                    ln.accessed = False
                                    ln.dp = False
                                    ln.aux = None
                                else:
                                    ln = line_cls(block, False)
                                if mark_dp:
                                    ln.dp = True
                                lines3[w3f] = ln
                                t3[block] = w3f
                                l3.content_version += 1
                                if l3_lru is not None:
                                    l3_lru._clock += 1
                                    l3_stamps[set_3][w3f] = l3_lru._clock
                                else:
                                    l3_rrpv[set_3][w3f] = l3_rmax - 1
                                l3_fills += 1
                                if l3_res is not None:
                                    l3_res.fill((set_3, w3f), now)
                            if victim3 is not None:
                                vt = victim3.tag
                                s1 = vt & l1_mask
                                wv = l1_tags[s1].get(vt)
                                in1 = None
                                if wv is not None:
                                    l1_inv += 1
                                    in1 = l1_lines[s1][wv]
                                    del l1_tags[s1][vt]
                                    l1_lines[s1][wv] = None
                                    l1.content_version += 1
                                    l1_evicts += 1
                                    if in1.dirty:
                                        l1_wb += 1
                                    if l1_lru is None:
                                        l1_rrpv[s1][wv] = l1_rmax
                                s2 = vt & l2_mask
                                wv2 = l2_tags[s2].get(vt)
                                in2 = None
                                if wv2 is not None:
                                    l2_inv += 1
                                    in2 = l2_lines[s2][wv2]
                                    del l2_tags[s2][vt]
                                    l2_lines[s2][wv2] = None
                                    l2.content_version += 1
                                    l2_evicts += 1
                                    if in2.dirty:
                                        l2_wb += 1
                                    if l2_lru is None:
                                        l2_rrpv[s2][wv2] = l2_rmax
                                if in1 is not None or in2 is not None:
                                    h_incl += 1
                                if (
                                    victim3.dirty
                                    or (in1 and in1.dirty)
                                    or (in2 and in2.dirty)
                                ):
                                    m_acc += 1
                                    m_writes += 1
                                if victim3 is not None:
                                    pool_.append(victim3)
                                if in1 is not None:
                                    pool_.append(in1)
                                if in2 is not None:
                                    pool_.append(in2)
                        # fill L2
                        set_2b = block & l2_mask
                        t2b = l2_tags[set_2b]
                        lines2 = l2_lines[set_2b]
                        victim2 = None
                        w2f = None
                        if len(t2b) < l2_assoc:
                            for wi2, ex in enumerate(lines2):
                                if ex is None:
                                    w2f = wi2
                                    break
                        if w2f is None:
                            if l2_lru is not None:
                                row = l2_stamps[set_2b]
                                w2f = l2_vw[set_2b]
                                if w2f >= 0 and row[w2f] == l2_vs[set_2b]:
                                    l2_vw[set_2b] = -1
                                else:
                                    w2f = 0
                                    vb_ = row[0]
                                    rw_ = -1
                                    rs_ = 0
                                    for vx_ in range(1, l2_assoc):
                                        sx_ = row[vx_]
                                        if sx_ < vb_:
                                            rw_ = w2f
                                            rs_ = vb_
                                            w2f = vx_
                                            vb_ = sx_
                                        elif rw_ < 0 or sx_ < rs_:
                                            rw_ = vx_
                                            rs_ = sx_
                                    l2_vw[set_2b] = rw_
                                    l2_vs[set_2b] = rs_
                            else:
                                row = l2_rrpv[set_2b]
                                while l2_rmax not in row:
                                    for wi2 in range(l2_assoc):
                                        row[wi2] += 1
                                w2f = row.index(l2_rmax)
                            victim2 = lines2[w2f]
                            del t2b[victim2.tag]
                            lines2[w2f] = None
                            l2.content_version += 1
                            l2_evicts += 1
                            if victim2.dirty:
                                l2_wb += 1
                        if pool_:
                            ln = pool_.pop()
                            ln.tag = block
                            ln.dirty = False
                            ln.accessed = False
                            ln.dp = False
                            ln.aux = None
                        else:
                            ln = line_cls(block, False)
                        lines2[w2f] = ln
                        t2b[block] = w2f
                        l2.content_version += 1
                        if l2_lru is not None:
                            l2_lru._clock += 1
                            l2_stamps[set_2b][w2f] = l2_lru._clock
                        else:
                            l2_rrpv[set_2b][w2f] = l2_rmax - 1
                        l2_fills += 1
                        if victim2 is not None:
                            if victim2.dirty:
                                vt = victim2.tag
                                s3 = vt & l3_mask
                                wv3 = l3_tags[s3].get(vt)
                                if wv3 is not None:
                                    l3_lines[s3][wv3].dirty = True
                                else:
                                    m_acc += 1
                                    m_writes += 1
                                    h_orphan += 1
                            if victim2 is not None:
                                pool_.append(victim2)
                    # fill L1
                    lines1 = l1_lines[set_1]
                    victim1 = None
                    w1f = None
                    if len(t1) < l1_assoc:
                        for wi2, ex in enumerate(lines1):
                            if ex is None:
                                w1f = wi2
                                break
                    if w1f is None:
                        if l1_lru is not None:
                            row = l1_stamps[set_1]
                            w1f = l1_vw[set_1]
                            if w1f >= 0 and row[w1f] == l1_vs[set_1]:
                                l1_vw[set_1] = -1
                            else:
                                w1f = 0
                                vb_ = row[0]
                                rw_ = -1
                                rs_ = 0
                                for vx_ in range(1, l1_assoc):
                                    sx_ = row[vx_]
                                    if sx_ < vb_:
                                        rw_ = w1f
                                        rs_ = vb_
                                        w1f = vx_
                                        vb_ = sx_
                                    elif rw_ < 0 or sx_ < rs_:
                                        rw_ = vx_
                                        rs_ = sx_
                                l1_vw[set_1] = rw_
                                l1_vs[set_1] = rs_
                        else:
                            row = l1_rrpv[set_1]
                            while l1_rmax not in row:
                                for wi2 in range(l1_assoc):
                                    row[wi2] += 1
                            w1f = row.index(l1_rmax)
                        victim1 = lines1[w1f]
                        del t1[victim1.tag]
                        lines1[w1f] = None
                        l1.content_version += 1
                        l1_evicts += 1
                        if victim1.dirty:
                            l1_wb += 1
                    if pool_:
                        ln = pool_.pop()
                        ln.tag = block
                        ln.dirty = is_write
                        ln.accessed = False
                        ln.dp = False
                        ln.aux = None
                    else:
                        ln = line_cls(block, is_write)
                    lines1[w1f] = ln
                    t1[block] = w1f
                    l1.content_version += 1
                    if l1_lru is not None:
                        l1_lru._clock += 1
                        l1_stamps[set_1][w1f] = l1_lru._clock
                    else:
                        l1_rrpv[set_1][w1f] = l1_rmax - 1
                    l1_fills += 1
                    if victim1 is not None:
                        if victim1.dirty:
                            vt = victim1.tag
                            s2 = vt & l2_mask
                            wv2 = l2_tags[s2].get(vt)
                            if wv2 is not None:
                                l2_lines[s2][wv2].dirty = True
                            else:
                                s3 = vt & l3_mask
                                wv3 = l3_tags[s3].get(vt)
                                if wv3 is not None:
                                    l3_lines[s3][wv3].dirty = True
                                else:
                                    m_acc += 1
                                    m_writes += 1
                                    h_orphan += 1
                        if victim1 is not None:
                            pool_.append(victim1)

                cycles += (gap + 1) * base_cpi + penalty

                # ---- telemetry boundary -------------------------------- #
                if instructions >= next_at:
                    it_stat["hits"] += it_hits
                    it_stat["misses"] += it_misses
                    it_stat["fills"] += it_fills
                    it_stat["evictions"] += it_evicts
                    it_hits = it_misses = it_fills = it_evicts = 0
                    dt_stat["hits"] += dt_hits
                    dt_stat["misses"] += dt_misses
                    dt_stat["fills"] += dt_fills
                    dt_stat["evictions"] += dt_evicts
                    dt_hits = dt_misses = dt_fills = dt_evicts = 0
                    lt_stat["hits"] += lt_hits
                    lt_stat["misses"] += lt_misses
                    lt_stat["victim_buffer_hits"] += lt_vbh
                    lt_stat["fills"] += lt_fills
                    lt_stat["evictions"] += lt_evicts
                    lt_stat["bypasses"] += lt_byp
                    lt_hits = lt_misses = lt_vbh = lt_fills = 0
                    lt_evicts = lt_byp = 0
                    l1_stat["hits"] += l1_hits
                    l1_stat["misses"] += l1_misses
                    l1_stat["fills"] += l1_fills
                    l1_stat["evictions"] += l1_evicts
                    l1_stat["writebacks"] += l1_wb
                    l1_stat["invalidations"] += l1_inv
                    l1_hits = l1_misses = l1_fills = 0
                    l1_evicts = l1_wb = l1_inv = 0
                    l2_stat["hits"] += l2_hits
                    l2_stat["misses"] += l2_misses
                    l2_stat["fills"] += l2_fills
                    l2_stat["evictions"] += l2_evicts
                    l2_stat["writebacks"] += l2_wb
                    l2_stat["invalidations"] += l2_inv
                    l2_hits = l2_misses = l2_fills = 0
                    l2_evicts = l2_wb = l2_inv = 0
                    l3_stat["hits"] += l3_hits
                    l3_stat["misses"] += l3_misses
                    l3_stat["fills"] += l3_fills
                    l3_stat["evictions"] += l3_evicts
                    l3_stat["writebacks"] += l3_wb
                    l3_stat["bypasses"] += l3_byp
                    l3_hits = l3_misses = l3_fills = 0
                    l3_evicts = l3_wb = l3_byp = 0
                    h_stat["accesses"] += h_acc
                    h_stat["llc_demand_misses"] += h_demand
                    h_stat["walk_accesses"] += h_walkacc
                    h_stat["inclusion_victims"] += h_incl
                    h_stat["orphan_writebacks"] += h_orphan
                    h_acc = h_demand = h_walkacc = h_incl = h_orphan = 0
                    mem_stat["accesses"] += m_acc
                    mem_stat["reads"] += m_reads
                    mem_stat["writes"] += m_writes
                    m_acc = m_reads = m_writes = 0
                    w_stat["walks"] += w_walks
                    w_stat["walk_memory_accesses"] += w_memacc
                    w_stat["walk_cycles"] += w_cycles
                    w_walks = w_memacc = w_cycles = 0
                    pwc_stat["pwc_l1_hits"] += pw_l1h
                    pwc_stat["pwc_l2_hits"] += pw_l2h
                    pwc_stat["pwc_l3_hits"] += pw_l3h
                    pwc_stat["pwc_misses"] += pw_miss
                    pw_l1h = pw_l2h = pw_l3h = pw_miss = 0
                    if d_bh_doa:
                        bh_stat["doa_trainings"] = (
                            bh_stat.get("doa_trainings", 0) + d_bh_doa
                        )
                        d_bh_doa = 0
                    if d_bh_ndoa:
                        bh_stat["not_doa_trainings"] = (
                            bh_stat.get("not_doa_trainings", 0) + d_bh_ndoa
                        )
                        d_bh_ndoa = 0
                    if d_cb_evobs:
                        cb_stat["doa_evictions_observed"] = (
                            cb_stat.get("doa_evictions_observed", 0) + d_cb_evobs
                        )
                        d_cb_evobs = 0
                    if d_cb_doap:
                        cb_stat["doa_predictions"] = (
                            cb_stat.get("doa_predictions", 0) + d_cb_doap
                        )
                        d_cb_doap = 0
                    if d_cb_note:
                        cb_stat["pfn_notifications"] = (
                            cb_stat.get("pfn_notifications", 0) + d_cb_note
                        )
                        d_cb_note = 0
                    if d_cb_pfqm:
                        cb_stat["pfq_matches"] = (
                            cb_stat.get("pfq_matches", 0) + d_cb_pfqm
                        )
                        d_cb_pfqm = 0
                    if d_dp_evobs:
                        dp_stat["doa_evictions_observed"] = (
                            dp_stat.get("doa_evictions_observed", 0) + d_dp_evobs
                        )
                        d_dp_evobs = 0
                    if d_dp_doap:
                        dp_stat["doa_predictions"] = (
                            dp_stat.get("doa_predictions", 0) + d_dp_doap
                        )
                        d_dp_doap = 0
                    if d_pfq_ev:
                        pfq_stat["evictions"] = (
                            pfq_stat.get("evictions", 0) + d_pfq_ev
                        )
                        d_pfq_ev = 0
                    if d_pfq_ins:
                        pfq_stat["inserts"] = (
                            pfq_stat.get("inserts", 0) + d_pfq_ins
                        )
                        d_pfq_ins = 0
                    if d_ph_doa:
                        ph_stat["doa_trainings"] = (
                            ph_stat.get("doa_trainings", 0) + d_ph_doa
                        )
                        d_ph_doa = 0
                    if d_ph_ndoa:
                        ph_stat["not_doa_trainings"] = (
                            ph_stat.get("not_doa_trainings", 0) + d_ph_ndoa
                        )
                        d_ph_ndoa = 0
                    if d_sh_ev:
                        sh_stat["evictions"] = (
                            sh_stat.get("evictions", 0) + d_sh_ev
                        )
                        d_sh_ev = 0
                    if d_sh_ins:
                        sh_stat["inserts"] = (
                            sh_stat.get("inserts", 0) + d_sh_ins
                        )
                        d_sh_ins = 0
                    if d_sh_miss:
                        sh_stat["misses"] = (
                            sh_stat.get("misses", 0) + d_sh_miss
                        )
                        d_sh_miss = 0
                    sample(instructions, cycles)
                    next_at = instructions + interval
            pos = seg

        # --- span-end flush and state write-back ------------------------ #
        it_stat["hits"] += it_hits
        it_stat["misses"] += it_misses
        it_stat["fills"] += it_fills
        it_stat["evictions"] += it_evicts
        dt_stat["hits"] += dt_hits
        dt_stat["misses"] += dt_misses
        dt_stat["fills"] += dt_fills
        dt_stat["evictions"] += dt_evicts
        lt_stat["hits"] += lt_hits
        lt_stat["misses"] += lt_misses
        lt_stat["victim_buffer_hits"] += lt_vbh
        lt_stat["fills"] += lt_fills
        lt_stat["evictions"] += lt_evicts
        lt_stat["bypasses"] += lt_byp
        l1_stat["hits"] += l1_hits
        l1_stat["misses"] += l1_misses
        l1_stat["fills"] += l1_fills
        l1_stat["evictions"] += l1_evicts
        l1_stat["writebacks"] += l1_wb
        l1_stat["invalidations"] += l1_inv
        l2_stat["hits"] += l2_hits
        l2_stat["misses"] += l2_misses
        l2_stat["fills"] += l2_fills
        l2_stat["evictions"] += l2_evicts
        l2_stat["writebacks"] += l2_wb
        l2_stat["invalidations"] += l2_inv
        l3_stat["hits"] += l3_hits
        l3_stat["misses"] += l3_misses
        l3_stat["fills"] += l3_fills
        l3_stat["evictions"] += l3_evicts
        l3_stat["writebacks"] += l3_wb
        l3_stat["bypasses"] += l3_byp
        h_stat["accesses"] += h_acc
        h_stat["llc_demand_misses"] += h_demand
        h_stat["walk_accesses"] += h_walkacc
        h_stat["inclusion_victims"] += h_incl
        h_stat["orphan_writebacks"] += h_orphan
        mem_stat["accesses"] += m_acc
        mem_stat["reads"] += m_reads
        mem_stat["writes"] += m_writes
        w_stat["walks"] += w_walks
        w_stat["walk_memory_accesses"] += w_memacc
        w_stat["walk_cycles"] += w_cycles
        pwc_stat["pwc_l1_hits"] += pw_l1h
        pwc_stat["pwc_l2_hits"] += pw_l2h
        pwc_stat["pwc_l3_hits"] += pw_l3h
        pwc_stat["pwc_misses"] += pw_miss
        if d_bh_doa:
            bh_stat["doa_trainings"] = (
                bh_stat.get("doa_trainings", 0) + d_bh_doa
            )
        if d_bh_ndoa:
            bh_stat["not_doa_trainings"] = (
                bh_stat.get("not_doa_trainings", 0) + d_bh_ndoa
            )
        if d_cb_evobs:
            cb_stat["doa_evictions_observed"] = (
                cb_stat.get("doa_evictions_observed", 0) + d_cb_evobs
            )
        if d_cb_doap:
            cb_stat["doa_predictions"] = (
                cb_stat.get("doa_predictions", 0) + d_cb_doap
            )
        if d_cb_note:
            cb_stat["pfn_notifications"] = (
                cb_stat.get("pfn_notifications", 0) + d_cb_note
            )
        if d_cb_pfqm:
            cb_stat["pfq_matches"] = (
                cb_stat.get("pfq_matches", 0) + d_cb_pfqm
            )
        if d_dp_evobs:
            dp_stat["doa_evictions_observed"] = (
                dp_stat.get("doa_evictions_observed", 0) + d_dp_evobs
            )
        if d_dp_doap:
            dp_stat["doa_predictions"] = (
                dp_stat.get("doa_predictions", 0) + d_dp_doap
            )
        if d_pfq_ev:
            pfq_stat["evictions"] = (
                pfq_stat.get("evictions", 0) + d_pfq_ev
            )
        if d_pfq_ins:
            pfq_stat["inserts"] = (
                pfq_stat.get("inserts", 0) + d_pfq_ins
            )
        if d_ph_doa:
            ph_stat["doa_trainings"] = (
                ph_stat.get("doa_trainings", 0) + d_ph_doa
            )
        if d_ph_ndoa:
            ph_stat["not_doa_trainings"] = (
                ph_stat.get("not_doa_trainings", 0) + d_ph_ndoa
            )
        if d_sh_ev:
            sh_stat["evictions"] = (
                sh_stat.get("evictions", 0) + d_sh_ev
            )
        if d_sh_ins:
            sh_stat["inserts"] = (
                sh_stat.get("inserts", 0) + d_sh_ins
            )
        if d_sh_miss:
            sh_stat["misses"] = (
                sh_stat.get("misses", 0) + d_sh_miss
            )
        pwc1._clock = pw1_clk
        pwc2._clock = pw2_clk
        pwc3._clock = pw3_clk
        m.now = now
        m.instructions = instructions
        m.cycles = cycles
        m._last_ivpn = last_ivpn
        m._last_ientry = last_ient
        m._last_dvpn = last_dvpn
        m._last_dentry = last_dent
        return next_at
