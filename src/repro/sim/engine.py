"""Batched (vectorized) trace-execution engine and engine selection.

The paper's premise is that the L1 structures absorb the bulk of
references — only L1-TLB / L1-D misses ever reach the LLT and LLC where
dpPred and cbPred live. This engine exploits that with two tiers:

* a **bulk** tier: a vectorized pre-pass over a numpy window of trace
  records computes VPN / PFN / block indices and tests them against
  array *mirrors* of the L1 I-TLB, L1 D-TLB, and L1D contents. The
  longest prefix of records that is guaranteed to hit in all three is
  retired array-at-a-time — hit counters, fused-LRU stamp updates,
  Accessed/dirty bits, the same-page filter state, and the
  ``(gap + 1) * base_cpi`` cycle fold are all applied in bulk with
  exactly the state transitions of the scalar loop;
* a **flat** tier (:class:`_FlatStepper`): residual (miss) records run
  through a fully inlined per-record interpreter over the canonical
  structures — L2 TLB (LLT), radix walker + PWCs, L2/LLC, writeback
  cascades, SRRIP and residency tracking, and the paper's predictors.
  dpPred's fill-time decision (pHIST probe, shadow-FIFO promote/evict,
  PFQ push, bypass, eviction-time training) and cbPred's fill decision
  (PFQ match, bHIST probe, LLC bypass, DP-marking) are inlined with
  their stats and decision events byte-for-byte; rare paths (shadow
  hits, the demote ablation) delegate to the real predictor methods.

Configs the bulk tier can mirror (order-based L1 replacement, no L1
listeners) run *hybrid* — bulk prefixes, flat residuals. Configs it
cannot (SRRIP anywhere) run the flat tier for the whole trace. Configs
the flat tier cannot model either (``ship``/``fifo``/``random``
policies, reference tracking, odd dtypes) fall back to scalar with a
per-reason counter (:func:`flat_reason`, :func:`engine_totals`).

Bit-identity with the scalar engine is a hard guarantee, not a goal
(``tests/test_engine_equivalence.py`` enforces it property-wise):

* membership mirrors are revalidated against each structure's
  ``content_version``, which only moves on install/evict — an all-hit
  prefix cannot change membership, so the mirror stays valid for exactly
  the records the engine retires in bulk;
* the same-page TLB filter is replicated via a page-*change* mask, so
  filtered records touch neither the LRU clock nor the stamps — and the
  carried ``_last_*`` entry objects are the same ones the scalar filter
  would touch, stale or not;
* per-record LRU stamps are reconstructed from the change ordinals
  (``clock0 + ordinal + 1`` at each entry's last touch), leaving the
  victim ordering bit-equal;
* cycles are accumulated with ``np.add.accumulate`` — a strict left
  fold, unlike pairwise ``np.sum`` — so the non-dyadic ``base_cpi``
  (0.4) rounds exactly as the scalar ``+=`` chain does;
* timeline sampling splits bulk segments at the same "first record at or
  past the boundary" points the scalar telemetry loop uses.

Low-locality workloads (the suite's TLB-thrashing kernels) produce short
all-hit prefixes where vectorization cannot pay; the engine detects this
and adaptively degrades to scalar bursts with geometric escalation, so
its worst case is the scalar engine plus a vanishing probe overhead.

Engine selection: ``resolve_engine`` — explicit argument, then
:func:`set_default_engine` (the CLI's ``--engine``), then the
``REPRO_ENGINE`` environment variable, then the batched default.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.common.bitops import fold_xor
from repro.core.cbpred import CorrelatingDeadBlockPredictor
from repro.core.dppred import ACTION_BYPASS, DeadPagePredictor
from repro.mem.cache import CacheLine
from repro.mem.replacement import LruPolicy, SrripPolicy
from repro.obs.events import (
    EV_LLC_BYPASS,
    EV_LLC_MARK_DP,
    EV_LLT_BYPASS,
    EV_LLT_VERDICT,
    EV_PFQ_HIT,
    EV_PFQ_PUSH,
    EV_SHADOW_EVICT,
    EV_SHADOW_PROMOTE,
    EV_WALK,
)
from repro.vm.pagetable import NUM_LEVELS
from repro.vm.physmem import PAGE_SHIFT
from repro.vm.tlb import TlbEntry
from repro.vm.walker import BLOCK_SHIFT

ENGINE_BATCHED = "batched"
ENGINE_SCALAR = "scalar"
ENGINES = (ENGINE_BATCHED, ENGINE_SCALAR)

_default_engine: Optional[str] = None

_PAGE_SHIFT_U = np.uint64(PAGE_SHIFT)
_BLOCK_SHIFT_U = np.uint64(BLOCK_SHIFT)
_BLOCK_OFFSET_U = np.uint64(PAGE_SHIFT - BLOCK_SHIFT)
_BLOCK_IN_PAGE_U = np.uint64((1 << (PAGE_SHIFT - BLOCK_SHIFT)) - 1)
#: Empty-way sentinel in the tag mirrors; no reachable VPN or block
#: address comes near 2**64.
_EMPTY = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

#: Adaptive window/burst tuning. Windows double while prefixes run full
#: (amortising the probe); repeated short prefixes escalate scalar bursts
#: geometrically so miss-dominated phases pay almost no probe cost.
_WINDOW_MIN = 512
_WINDOW_MAX = 65536
_GOOD_PREFIX = 64
_BURST_MIN = 256
_BURST_MAX = 32768


def set_default_engine(engine: Optional[str]) -> None:
    """Pin the process-wide default engine (the CLI's ``--engine``)."""
    if engine is not None and engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    global _default_engine
    _default_engine = engine


def resolve_engine(engine: Optional[str] = None) -> str:
    """Effective engine: argument > set_default_engine > REPRO_ENGINE >
    batched."""
    if engine is not None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        return engine
    if _default_engine is not None:
        return _default_engine
    env = os.environ.get("REPRO_ENGINE")
    if env:
        if env not in ENGINES:
            raise ValueError(
                f"REPRO_ENGINE must be one of {ENGINES}, got {env!r}"
            )
        return env
    return ENGINE_BATCHED


# --------------------------------------------------------------------- #
# Eligibility
# --------------------------------------------------------------------- #
def batchable(machine) -> bool:
    """Whether the batched fast path is sound for this machine.

    The bulk path retires records whose only side effects are hit
    counters, fused-LRU stamps, and Accessed/dirty bits. That requires
    the same-page filter's preconditions (order-based replacement) plus
    listener-free, residency-free L1 structures — the L1 I-TLB, L1
    D-TLB, and L1D never carry predictors or residency tracking in any
    shipped configuration, but custom wiring falls back to scalar.
    """
    if not machine._page_filter:
        return False
    for struct in (machine.l1_itlb, machine.l1_dtlb, machine.l1d):
        if (
            struct._lru is None
            or struct.listener is not None
            or struct.residency is not None
        ):
            return False
    return True


#: Fallback / flat-ineligibility reasons (``engine_stats["fallback_reasons"]``
#: and the per-process :func:`engine_totals` accumulator).
REASON_POLICY = "policy"        # fifo/random replacement: no flat model
REASON_PREDICTOR = "predictor"  # non-dpPred/cbPred listener, or L1 wiring
REASON_REFERENCE = "reference"  # ground-truth reference structures attached
REASON_DTYPE = "dtype"          # unexpected trace array dtypes
REASON_EMPTY = "empty"          # zero-record trace
REASON_TENANT = "tenant"        # ASID-carrying trace / multi-tenant config
REASON_HUGEPAGE = "hugepage"    # huge-page mappings: LLT keys diverge


def flat_reason(machine) -> Optional[str]:
    """Why the flat interpreter cannot run this machine (None = it can).

    The flat path inlines the whole scalar access chain — L1 TLBs, LLT,
    walker, L1D/L2/LLC, dpPred/cbPred — so it is restricted to the
    structures and hooks it models exactly:

    * every replacement policy must be LRU or SRRIP (fused stamp updates
      / RRPV aging are inlined; FIFO and random are not modelled);
    * the L1 TLBs, L1D and L2 must be bare (no listener, no residency) —
      true for every shipped configuration;
    * the LLT may carry dpPred (its ``on_miss``/``fill`` slow paths are
      invoked as real calls), the LLC may carry cbPred (PFQ-filtered
      fills are inlined, PFQ matches call the real fill) — any other
      listener (SHiP, AIP, Leeway, perceptron, oracle, prefetch,
      correlation — including anything registered through
      :mod:`repro.predictors.registry`) declines via the exact ``type()``
      checks below, so a new predictor is bit-exact with zero engine
      work: it keeps the bulk+scalar hybrid, and the decline is counted
      (``engine_stats["flat_reason"]``, ``engine_totals()``'s
      ``flat_declines``) — never silent;
    * ground-truth reference structures hook the residual scalar path
      only, so they keep the bulk+scalar hybrid instead.
    """
    if machine.ref_llt is not None or machine.ref_llc is not None:
        return REASON_REFERENCE
    for struct in (
        machine.l1_itlb, machine.l1_dtlb, machine.l1d, machine.l2
    ):
        if struct.listener is not None or struct.residency is not None:
            return REASON_PREDICTOR
    for struct in (
        machine.l1_itlb, machine.l1_dtlb, machine.l2_tlb,
        machine.l1d, machine.l2, machine.llc,
    ):
        if type(struct.policy) not in (LruPolicy, SrripPolicy):
            return REASON_POLICY
    lt_listener = machine.l2_tlb.listener
    if lt_listener is not None and type(lt_listener) is not DeadPagePredictor:
        return REASON_PREDICTOR
    llc_listener = machine.llc.listener
    if llc_listener is not None and (
        type(llc_listener) is not CorrelatingDeadBlockPredictor
    ):
        return REASON_PREDICTOR
    return None


def _trace_ok(trace) -> bool:
    return (
        len(trace) > 0
        and trace.pcs.dtype == np.uint64
        and trace.vaddrs.dtype == np.uint64
        and trace.writes.dtype == np.bool_
        and trace.gaps.dtype.kind in "iu"
    )


# --------------------------------------------------------------------- #
# Process-wide dispatch accounting (surfaced by the CLI's --profile)
# --------------------------------------------------------------------- #
_totals = {
    "runs": 0,
    "batched": 0,
    "fallbacks": 0,
    "bulk_records": 0,
    "flat_records": 0,
    "scalar_records": 0,
    "fallback_reasons": {},
    "flat_declines": {},
}


def engine_totals() -> dict:
    """Snapshot of batched-engine dispatch since the last reset: runs,
    fallbacks with per-reason counts, the bulk/flat/scalar record split,
    and per-reason counts of hybrid runs where the flat interpreter
    declined (``flat_declines`` — e.g. every Leeway/perceptron/SHiP run
    counts one ``predictor``). Diagnostics only — never part of
    simulation results."""
    out = dict(_totals)
    out["fallback_reasons"] = dict(_totals["fallback_reasons"])
    out["flat_declines"] = dict(_totals["flat_declines"])
    return out


def reset_engine_totals() -> None:
    for key, value in _totals.items():
        if isinstance(value, dict):
            value.clear()
        else:
            _totals[key] = 0


def run_batched(machine, trace):
    """Run ``trace`` on ``machine`` with the batched engine.

    Dispatch is three-tier, bit-identical to :meth:`Machine.run_scalar`
    in every tier:

    1. machines the flat interpreter models run hybrid (bulk numpy
       prefixes + flat residual spans), or pure flat when the bulk
       pre-pass is ineligible (e.g. SRRIP, which defeats the same-page
       filter the bulk prefix test relies on);
    2. machines with listeners the flat path excludes (SHiP/AIP/oracle/
       correlation, reference tracking) keep the bulk + per-record
       scalar hybrid;
    3. everything else — FIFO/random policies, custom L1 wiring, odd
       trace dtypes — falls back to the scalar loop, recording why in
       ``engine_stats["fallback_reasons"]``.
    """
    _totals["runs"] += 1
    if not _trace_ok(trace):
        reason = REASON_EMPTY if len(trace) == 0 else REASON_DTYPE
        return _fall_back(machine, trace, reason)
    if getattr(trace, "asids", None) is not None or machine.config.num_tenants > 1:
        return _fall_back(machine, trace, REASON_TENANT)
    if machine.config.huge_fraction > 0:
        return _fall_back(machine, trace, REASON_HUGEPAGE)
    why = flat_reason(machine)
    bulk_ok = batchable(machine)
    if why is None:
        run = _BatchedRun(machine, _FlatStepper(machine))
        return run.run(trace) if bulk_ok else run.run_flat(trace)
    if bulk_ok:
        declines = _totals["flat_declines"]
        declines[why] = declines.get(why, 0) + 1
        return _BatchedRun(machine, None, why).run(trace)
    return _fall_back(machine, trace, why)


def _fall_back(machine, trace, reason: str):
    _totals["fallbacks"] += 1
    reasons = _totals["fallback_reasons"]
    reasons[reason] = reasons.get(reason, 0) + 1
    machine.engine_stats = {
        "engine": ENGINE_SCALAR,
        "fallback": True,
        "fallback_reasons": {reason: 1},
    }
    return machine.run_scalar(trace)


# --------------------------------------------------------------------- #
# Mirrors
# --------------------------------------------------------------------- #
class _Mirror:
    """Numpy mirror of one set-associative structure's contents."""

    __slots__ = ("struct", "tags", "pfns", "set_mask", "assoc", "version")

    def __init__(self, struct, with_pfns: bool):
        self.struct = struct
        self.assoc = struct.assoc
        self.set_mask = np.uint64(struct.num_sets - 1)
        self.tags = np.full(
            (struct.num_sets, struct.assoc), _EMPTY, dtype=np.uint64
        )
        self.pfns = (
            np.zeros((struct.num_sets, struct.assoc), dtype=np.uint64)
            if with_pfns
            else None
        )
        self.version = -1

    def refresh(self) -> None:
        if self.version == self.struct.content_version:
            return
        self.tags.fill(_EMPTY)
        if self.pfns is None:
            self.struct.mirror_into(self.tags)
        else:
            self.struct.mirror_into(self.tags, self.pfns)
        self.version = self.struct.content_version


class _Window:
    """Precomputed per-record vectors for one probe window."""

    __slots__ = (
        "pc", "gap1", "ok",
        "ivpn", "iset", "iway",
        "dvpn", "dset", "dway",
        "cset", "cway",
    )


# --------------------------------------------------------------------- #
# The batched run
# --------------------------------------------------------------------- #
class _BatchedRun:
    """One trace execution under the batched engine."""

    def __init__(self, machine, flat=None, flat_why: Optional[str] = None):
        self.m = machine
        self.flat = flat
        self.flat_why = flat_why
        self.im = _Mirror(machine.l1_itlb, with_pfns=True)
        self.dm = _Mirror(machine.l1_dtlb, with_pfns=True)
        self.cm = _Mirror(machine.l1d, with_pfns=False)
        self.sampler = machine._timeline
        self.interval = (
            self.sampler.interval if self.sampler is not None else 0
        )
        self.next_at = self.interval

    def run(self, trace):
        m = self.m
        pcs, vaddrs = trace.pcs, trace.vaddrs
        writes, gaps = trace.writes, trace.gaps
        n = len(pcs)
        i = 0
        window = _WINDOW_MIN
        burst = 0
        bulk_records = flat_records = scalar_records = windows = 0
        while i < n:
            b = min(i + window, n)
            win = self._precompute(pcs, vaddrs, gaps, i, b)
            windows += 1
            full = bool(win.ok.all())
            prefix = (b - i) if full else int(np.argmin(win.ok))
            if prefix:
                self._apply(win, prefix, writes[i:i + prefix])
                bulk_records += prefix
                i += prefix
            if full:
                window = min(window * 2, _WINDOW_MAX)
                burst = 0
                continue
            # First non-guaranteed record: the ordinary per-access path.
            self._scalar_one(pcs, vaddrs, writes, gaps, i)
            i += 1
            scalar_records += 1
            if prefix >= _GOOD_PREFIX:
                burst = 0
            else:
                burst = min(burst * 2 if burst else _BURST_MIN, _BURST_MAX)
                span_end = min(i + burst, n)
                self._scalar_span(pcs, vaddrs, writes, gaps, i, span_end)
                if self.flat is not None:
                    flat_records += span_end - i
                else:
                    scalar_records += span_end - i
                i = span_end
                window = _WINDOW_MIN
        sampler = self.sampler
        if sampler is not None and (
            not sampler.marks or sampler.marks[-1] != m.instructions
        ):
            sampler.sample(m.instructions, m.cycles)
        stats = {
            "engine": ENGINE_BATCHED,
            "mode": "hybrid",
            "bulk_records": bulk_records,
            "flat_records": flat_records,
            "scalar_records": scalar_records,
            "windows": windows,
        }
        if self.flat is None:
            stats["flat_reason"] = self.flat_why
        m.engine_stats = stats
        _totals["batched"] += 1
        _totals["bulk_records"] += bulk_records
        _totals["flat_records"] += flat_records
        _totals["scalar_records"] += scalar_records
        return m.finalize(trace.name)

    def run_flat(self, trace):
        """Whole-trace flat execution. Used when the bulk pre-pass is
        ineligible (SRRIP defeats the same-page filter and the fused-LRU
        mirrors) but the flat interpreter models the machine exactly."""
        m = self.m
        n = len(trace)
        self.next_at = self.flat.run_span(
            trace.pcs, trace.vaddrs, trace.writes, trace.gaps, 0, n,
            self.sampler, self.next_at,
        )
        sampler = self.sampler
        if sampler is not None and (
            not sampler.marks or sampler.marks[-1] != m.instructions
        ):
            sampler.sample(m.instructions, m.cycles)
        m.engine_stats = {
            "engine": ENGINE_BATCHED,
            "mode": "flat",
            "bulk_records": 0,
            "flat_records": n,
            "scalar_records": 0,
            "windows": 0,
        }
        _totals["batched"] += 1
        _totals["flat_records"] += n
        return m.finalize(trace.name)

    # -- window probe --------------------------------------------------- #
    def _precompute(self, pcs, vaddrs, gaps, a, b) -> _Window:
        im, dm, cm = self.im, self.dm, self.cm
        im.refresh()
        dm.refresh()
        cm.refresh()
        win = _Window()
        pc = pcs[a:b]
        va = vaddrs[a:b]
        win.pc = pc
        win.gap1 = gaps[a:b].astype(np.int64) + 1

        ivpn = pc >> _PAGE_SHIFT_U
        iset = (ivpn & im.set_mask).astype(np.intp)
        imatch = im.tags[iset] == ivpn[:, None]
        ihit = imatch.any(axis=1)
        win.ivpn, win.iset, win.iway = ivpn, iset, imatch.argmax(axis=1)

        dvpn = va >> _PAGE_SHIFT_U
        dset = (dvpn & dm.set_mask).astype(np.intp)
        dmatch = dm.tags[dset] == dvpn[:, None]
        dhit = dmatch.any(axis=1)
        dway = dmatch.argmax(axis=1)
        win.dvpn, win.dset, win.dway = dvpn, dset, dway

        # PFN (and hence block) is garbage on D-miss rows, but those rows
        # are already excluded by ``ok``; the set index stays in range.
        pfn = dm.pfns[dset, dway]
        block = (pfn << _BLOCK_OFFSET_U) | (
            (va >> _BLOCK_SHIFT_U) & _BLOCK_IN_PAGE_U
        )
        cset = (block & cm.set_mask).astype(np.intp)
        cmatch = cm.tags[cset] == block[:, None]
        win.cset, win.cway = cset, cmatch.argmax(axis=1)

        win.ok = ihit & dhit & cmatch.any(axis=1)
        return win

    # -- bulk retirement ------------------------------------------------ #
    def _apply(self, win, k: int, writes_seg) -> None:
        """Retire the guaranteed-hit prefix ``[0, k)`` of ``win`` in bulk,
        splitting at timeline boundaries exactly like the scalar loop."""
        m = self.m
        gap1 = win.gap1[:k]
        icsum = np.add.accumulate(gap1) + m.instructions
        inc = gap1.astype(np.float64) * m._base_cpi
        # Seed the fold with the running total: addition is commutative
        # bit-for-bit, so inc[0] + cycles == cycles + inc[0].
        inc[0] += m.cycles
        ccsum = np.add.accumulate(inc)
        sampler = self.sampler
        if sampler is None:
            self._apply_span(win, 0, k, icsum, ccsum, writes_seg)
            return
        cur = 0
        while True:
            pos = int(np.searchsorted(icsum, self.next_at, side="left"))
            if pos >= k:
                if cur < k:
                    self._apply_span(win, cur, k, icsum, ccsum, writes_seg)
                return
            self._apply_span(win, cur, pos + 1, icsum, ccsum, writes_seg)
            sampler.sample(int(icsum[pos]), float(ccsum[pos]))
            self.next_at = int(icsum[pos]) + self.interval
            cur = pos + 1

    def _apply_span(self, win, s, e, icsum, ccsum, writes_seg) -> None:
        m = self.m
        k = e - s
        m.now += k
        m.instructions = int(icsum[e - 1])
        m.cycles = float(ccsum[e - 1])
        m.context.pc = int(win.pc[e - 1])

        last_iv, last_ie = self._touch_tlb(
            m.l1_itlb, m._itlb_stat,
            win.ivpn, win.iset, win.iway, s, e,
            m._last_ivpn, m._last_ientry,
        )
        m._last_ivpn, m._last_ientry = last_iv, last_ie
        last_dv, last_de = self._touch_tlb(
            m.l1_dtlb, m._dtlb_stat,
            win.dvpn, win.dset, win.dway, s, e,
            m._last_dvpn, m._last_dentry,
        )
        m._last_dvpn, m._last_dentry = last_dv, last_de
        self._touch_l1d(win, s, e, writes_seg)

    @staticmethod
    def _touch_tlb(tlb, stat, vpn, sets, ways, s, e, last_vpn, last_entry):
        """Apply one span's L1-TLB effects: hit counters for every record,
        LRU clock/stamps and Accessed bits only at page-*change* records —
        the same-page filter's exact semantics."""
        k = e - s
        stat["hits"] += k
        v = vpn[s:e]
        change = np.empty(k, dtype=bool)
        change[0] = last_vpn is None or v[0] != last_vpn
        if k > 1:
            np.not_equal(v[1:], v[:-1], out=change[1:])
        if not change[0] and last_entry is not None:
            # Carried filter hit: the scalar path marks the carried entry
            # object (even a stale one) accessed, and nothing else.
            last_entry.accessed = True
        entries = tlb._entries
        nch = int(change.sum())
        if nch:
            idx = np.flatnonzero(change)
            assoc = tlb.assoc
            key = sets[s:e][idx] * assoc + ways[s:e][idx]
            # Last change-ordinal per distinct (set, way): reverse-unique.
            uniq, rev_first = np.unique(key[::-1], return_index=True)
            lru = tlb._lru
            clock0 = lru._clock
            lru._clock = clock0 + nch
            stamps = tlb._lru_stamps
            last_ord = nch - 1
            for u, r in zip(uniq.tolist(), rev_first.tolist()):
                set_idx, way = divmod(u, assoc)
                stamps[set_idx][way] = clock0 + (last_ord - r) + 1
                entries[set_idx][way].accessed = True
            last_vpn = int(v[-1])
            last_entry = entries[int(sets[e - 1])][int(ways[e - 1])]
        return last_vpn, last_entry

    def _touch_l1d(self, win, s, e, writes_seg) -> None:
        """Apply one span's L1D effects: every record is a promoting hit
        (clock tick + stamp), writes dirty their line."""
        m = self.m
        k = e - s
        m.hierarchy._stat["accesses"] += k
        cache = m.l1d
        cache._stat["hits"] += k
        assoc = cache.assoc
        key = win.cset[s:e] * assoc + win.cway[s:e]
        uniq, rev_first = np.unique(key[::-1], return_index=True)
        lru = cache._lru
        clock0 = lru._clock
        lru._clock = clock0 + k
        stamps = cache._lru_stamps
        lines = cache._lines
        last_ord = k - 1
        for u, r in zip(uniq.tolist(), rev_first.tolist()):
            set_idx, way = divmod(u, assoc)
            stamps[set_idx][way] = clock0 + (last_ord - r) + 1
            lines[set_idx][way].accessed = True
        w = writes_seg[s:e]
        if w.any():
            for u in np.unique(key[w]).tolist():
                set_idx, way = divmod(u, assoc)
                lines[set_idx][way].dirty = True

    # -- residual / fallback scalar execution --------------------------- #
    def _scalar_one(self, pcs, vaddrs, writes, gaps, j) -> None:
        m = self.m
        m.access(int(pcs[j]), int(vaddrs[j]), bool(writes[j]), int(gaps[j]))
        if self.sampler is not None and m.instructions >= self.next_at:
            self.sampler.sample(m.instructions, m.cycles)
            self.next_at = m.instructions + self.interval

    def _scalar_span(self, pcs, vaddrs, writes, gaps, a, b) -> None:
        if a >= b:
            return
        if self.flat is not None:
            self.next_at = self.flat.run_span(
                pcs, vaddrs, writes, gaps, a, b, self.sampler, self.next_at
            )
            return
        m = self.m
        access = m.access
        records = zip(
            pcs[a:b].tolist(),
            vaddrs[a:b].tolist(),
            writes[a:b].tolist(),
            gaps[a:b].tolist(),
        )
        sampler = self.sampler
        if sampler is None:
            for pc, vaddr, is_write, gap in records:
                access(pc, vaddr, is_write, gap)
            return
        next_at = self.next_at
        interval = self.interval
        for pc, vaddr, is_write, gap in records:
            access(pc, vaddr, is_write, gap)
            if m.instructions >= next_at:
                sampler.sample(m.instructions, m.cycles)
                next_at = m.instructions + interval
        self.next_at = next_at


# --------------------------------------------------------------------- #
# Flat interpreter
# --------------------------------------------------------------------- #
class _FlatStepper:
    """Flattened per-record interpreter over the canonical structures.

    The bulk pre-pass retires only guaranteed-L1-hit prefixes; this
    interpreter executes *arbitrary* records — L1 misses, LLT misses and
    page walks, LLC fills and inclusion victims, dpPred/cbPred
    decisions, SRRIP aging, residency tracking — by inlining the scalar
    access chain into one straight-line loop over Python scalars. It is
    what makes miss-dominated (TLB-thrashing) workloads faster than the
    scalar engine: the per-event method dispatch, listener checks and
    Stats lookups of ``machine.access()`` collapse into locals and plain
    dict operations on the very same state objects.

    Soundness of mixing inline updates with real method calls: every
    simulated event is handled exactly once, either inline or by the
    real method. All *structural* state (tags, entries, stamps, RRPVs,
    clocks, content versions, predictor tables, residency trackers)
    lives on the real objects; the only locally buffered state is
    additive Stats counter deltas, flushed into the live dicts before
    every telemetry sample and at span end. Rare or complex events call
    the real methods — dpPred's shadow *hits* (misprediction refills),
    LLT fills under the demote ablation, DP-marked LLC evictions —
    while the hot paths stay inline: dpPred's fill-time prediction
    (pHIST probe, bypass bookkeeping, shadow-FIFO insert/evict, PFQ
    push) and eviction-time training, the shadow-miss probe, and
    cbPred's full fill decision (PFQ match, bHIST probe, bypass,
    DP-mark) are replicated inline with identical stat bumps and
    decision-event emissions; dp=False LLC victims make ``on_evict`` a
    no-op and are skipped. ``fold_xor`` hashes are memoized per run
    (pure function of its inputs).
    """

    __slots__ = ("m", "_fx_pc", "_fx_vpn", "_fx_blk")

    def __init__(self, machine):
        self.m = machine
        # Memoized fold_xor results (pure function, narrow key spaces:
        # PCs repeat per site, VPNs per page working set). One dict per
        # bit width in use, living as long as the run.
        self._fx_pc = {}
        self._fx_vpn = {}
        self._fx_blk = {}

    def run_span(self, pcs, vaddrs, writes, gaps, a, b, sampler, next_at):
        """Execute records ``[a, b)``; returns the updated telemetry
        boundary. Machine state is read at entry and written back at
        exit; counter deltas are flushed before each timeline sample so
        samples observe exactly the scalar loop's counter values."""
        if b <= a:
            return next_at
        m = self.m
        fx_pc = self._fx_pc
        fx_vpn = self._fx_vpn
        fx_blk = self._fx_blk
        # --- machine scalars ------------------------------------------- #
        now = m.now
        instructions = m.instructions
        cycles = m.cycles
        base_cpi = m._base_cpi
        l2_tlb_hit_penalty = m._l2_tlb_hit_penalty
        l2_hit_penalty = m._l2_hit_penalty
        llc_hit_penalty = m._llc_hit_penalty
        mem_penalty = m._mem_penalty
        l2_tlb_latency = m._l2_tlb_latency
        walk_exposure = m._walk_exposure
        pfn_to_vpn = m.pfn_to_vpn
        probe = m._probe
        pf = m._page_filter
        ps = PAGE_SHIFT
        bs = BLOCK_SHIFT
        boff = PAGE_SHIFT - BLOCK_SHIFT
        bmask = (1 << boff) - 1
        if sampler is not None:
            interval = sampler.interval
            sample = sampler.sample
        else:
            interval = 0
            sample = None
            next_at = float("inf")

        # --- L1 I-TLB --------------------------------------------------- #
        it = m.l1_itlb
        it_mask = it._set_mask
        it_assoc = it.assoc
        it_tags = it._tags
        it_entries = it._entries
        it_lru = it._lru
        it_stamps = it._lru_stamps
        it_rrpv = None if it_lru is not None else it.policy._rrpv
        it_rmax = 0 if it_lru is not None else it.policy.rrpv_max
        it_stat = it._stat
        it_hits = it_misses = it_fills = it_evicts = 0
        # --- L1 D-TLB --------------------------------------------------- #
        dt = m.l1_dtlb
        dt_mask = dt._set_mask
        dt_assoc = dt.assoc
        dt_tags = dt._tags
        dt_entries = dt._entries
        dt_lru = dt._lru
        dt_stamps = dt._lru_stamps
        dt_rrpv = None if dt_lru is not None else dt.policy._rrpv
        dt_rmax = 0 if dt_lru is not None else dt.policy.rrpv_max
        dt_stat = dt._stat
        dt_hits = dt_misses = dt_fills = dt_evicts = 0
        # --- LLT (may carry dpPred and residency) ----------------------- #
        lt = m.l2_tlb
        lt_mask = lt._set_mask
        lt_assoc = lt.assoc
        lt_tags = lt._tags
        lt_entries = lt._entries
        lt_lru = lt._lru
        lt_stamps = lt._lru_stamps
        lt_rrpv = None if lt_lru is not None else lt.policy._rrpv
        lt_rmax = 0 if lt_lru is not None else lt.policy.rrpv_max
        lt_stat = lt._stat
        lt_listener = lt.listener
        lt_on_miss = None if lt_listener is None else lt_listener.on_miss
        lt_fill = lt.fill
        lt_res = lt.residency
        lt_hits = lt_misses = lt_vbh = lt_fills = lt_evicts = lt_byp = 0
        # dpPred wiring: fill-time prediction, bypass bookkeeping, the
        # shadow FIFO and eviction-time training are inlined; shadow
        # *hits* (misprediction refills) and the demote ablation call
        # the real methods.
        dp = lt_listener
        if dp is not None:
            dp_stat = dp.stats.counters
            dp_probe = dp.probe
            dp_obs = dp.prediction_observer
            dp_sink = dp.pfn_sink
            dp_pcbits = dp.config.pc_hash_bits
            dp_vbits = dp.config.vpn_hash_bits
            dp_thresh = dp.config.threshold
            dp_demote = dp.config.action != ACTION_BYPASS
            ph = dp.phist
            ph_vals = ph._counters._values
            ph_rows = ph.num_rows
            ph_cols = ph.num_cols
            ph_max = ph._counters._max
            ph_stat = ph.stats.counters
            sh = dp.shadow
            sh_entries = None if sh is None else sh._entries
            sh_cap = 0 if sh is None else sh.capacity
            sh_stat = None if sh is None else sh.stats.counters
            sh_probe = None if sh is None else sh.probe
        else:
            dp_demote = False
            sh_entries = None
        # --- caches ----------------------------------------------------- #
        l1 = m.l1d
        l1_mask = l1._set_mask
        l1_assoc = l1.assoc
        l1_tags = l1._tags
        l1_lines = l1._lines
        l1_lru = l1._lru
        l1_stamps = l1._lru_stamps
        l1_rrpv = None if l1_lru is not None else l1.policy._rrpv
        l1_rmax = 0 if l1_lru is not None else l1.policy.rrpv_max
        l1_stat = l1._stat
        l1_hits = l1_misses = l1_fills = l1_evicts = l1_wb = l1_inv = 0
        l2 = m.l2
        l2_mask = l2._set_mask
        l2_assoc = l2.assoc
        l2_tags = l2._tags
        l2_lines = l2._lines
        l2_lru = l2._lru
        l2_stamps = l2._lru_stamps
        l2_rrpv = None if l2_lru is not None else l2.policy._rrpv
        l2_rmax = 0 if l2_lru is not None else l2.policy.rrpv_max
        l2_stat = l2._stat
        l2_hits = l2_misses = l2_fills = l2_evicts = l2_wb = l2_inv = 0
        l3 = m.llc
        l3_mask = l3._set_mask
        l3_assoc = l3.assoc
        l3_tags = l3._tags
        l3_lines = l3._lines
        l3_lru = l3._lru
        l3_stamps = l3._lru_stamps
        l3_rrpv = None if l3_lru is not None else l3.policy._rrpv
        l3_rmax = 0 if l3_lru is not None else l3.policy.rrpv_max
        l3_stat = l3._stat
        l3_fill = l3.fill
        l3_res = l3.residency
        l3_hits = l3_misses = l3_fills = l3_evicts = l3_wb = l3_byp = 0
        # cbPred wiring: every LLC fill decision is inlined — the PFQ-miss
        # fast path resets nothing and allocates; PFQ matches (and the
        # no-PFQ ablation, which predicts on every fill) replicate
        # ``on_fill``'s bHIST probe, bypass, and DP-marking exactly.
        cb = l3.listener
        cb_pfq = (
            cb.pfq._members
            if cb is not None and cb.config.use_pfq
            else None
        )
        cb_on_evict = None if cb is None else cb.on_evict
        cb_probe = None if cb is None else cb.probe
        cb_obs = None if cb is None else cb.prediction_observer
        cb_stat = None if cb is None else cb.stats.counters
        if cb is not None:
            bh_vals = cb.bhist._counters._values
            bh_bits = cb.bhist.hash_bits
            bh_thresh = cb.config.threshold
        else:
            bh_vals = None
            bh_bits = bh_thresh = 0
        # --- hierarchy / memory / walker -------------------------------- #
        hier = m.hierarchy
        h_stat = hier._stat
        h_acc = h_demand = h_walkacc = h_incl = h_orphan = 0
        mem = hier.memory
        mem_stat = mem._stat
        mem_lat = mem.latency
        m_acc = m_reads = m_writes = 0
        hl2_lat = hier.l2_latency
        hl3_lat = hier.llc_latency
        walker = m.walker
        w_stat = walker._stat
        page_table_walk_path = walker.page_table.walk_path
        pwc_consult = walker.pwc.consult
        pwc_fill = walker.pwc.fill
        w_walks = w_memacc = w_cycles = 0
        # --- same-page filter state ------------------------------------- #
        last_ivpn = m._last_ivpn
        last_ient = m._last_ientry
        last_dvpn = m._last_dvpn
        last_dent = m._last_dentry

        pc = 0  # last processed PC (context write-back for empty guard)
        pos = a
        while pos < b:
            seg = min(pos + 65536, b)
            for pc, vaddr, is_write, gap in zip(
                pcs[pos:seg].tolist(),
                vaddrs[pos:seg].tolist(),
                writes[pos:seg].tolist(),
                gaps[pos:seg].tolist(),
            ):
                now += 1
                instructions += gap + 1

                # ---- instruction-side translation ---------------------- #
                ivpn = pc >> ps
                if pf and ivpn == last_ivpn:
                    it_hits += 1
                    last_ient.accessed = True
                    penalty = 0.0
                else:
                    set_i = ivpn & it_mask
                    tags_i = it_tags[set_i]
                    way = tags_i.get(ivpn)
                    if way is not None:
                        it_hits += 1
                        entry = it_entries[set_i][way]
                        entry.accessed = True
                        if it_lru is not None:
                            it_lru._clock += 1
                            it_stamps[set_i][way] = it_lru._clock
                        else:
                            it_rrpv[set_i][way] = 0
                        penalty = 0.0
                        if pf:
                            last_ivpn = ivpn
                            last_ient = entry
                    else:
                        it_misses += 1
                        pfn_i = None
                        set_l = ivpn & lt_mask
                        tags_l = lt_tags[set_l]
                        wl = tags_l.get(ivpn)
                        if wl is not None:
                            lt_hits += 1
                            le = lt_entries[set_l][wl]
                            le.accessed = True
                            if lt_lru is not None:
                                lt_lru._clock += 1
                                lt_stamps[set_l][wl] = lt_lru._clock
                            else:
                                lt_rrpv[set_l][wl] = 0
                            if lt_res is not None:
                                lt_res.hit((set_l, wl), now)
                            pfn_i = le.pfn
                            penalty = l2_tlb_hit_penalty
                        else:
                            lt_misses += 1
                            if sh_entries is not None:
                                # shadow-miss fast path; hits (rare
                                # misprediction refills) take the real
                                # on_miss slow path
                                if ivpn in sh_entries:
                                    buffered = lt_on_miss(lt, ivpn, now)
                                    if buffered is not None:
                                        lt_vbh += 1
                                        pfn_i = buffered
                                        penalty = l2_tlb_hit_penalty
                                else:
                                    sh_stat["misses"] = (
                                        sh_stat.get("misses", 0) + 1
                                    )
                            if pfn_i is None:
                                # ---- page walk (inlined walker.walk) --- #
                                w_walks += 1
                                pfn_i, path = page_table_walk_path(ivpn)
                                resolved, wlat = pwc_consult(ivpn)
                                w_memacc += NUM_LEVELS - resolved
                                for pte_paddr in path[resolved:]:
                                    blk = pte_paddr >> bs
                                    h_walkacc += 1
                                    set_c = blk & l2_mask
                                    tc = l2_tags[set_c]
                                    wc = tc.get(blk)
                                    if wc is not None:
                                        l2_hits += 1
                                        ln = l2_lines[set_c][wc]
                                        ln.accessed = True
                                        if l2_lru is not None:
                                            l2_lru._clock += 1
                                            l2_stamps[set_c][wc] = (
                                                l2_lru._clock
                                            )
                                        else:
                                            l2_rrpv[set_c][wc] = 0
                                        wlat += hl2_lat
                                        continue
                                    l2_misses += 1
                                    set_c3 = blk & l3_mask
                                    tc3 = l3_tags[set_c3]
                                    wc3 = tc3.get(blk)
                                    if wc3 is not None:
                                        l3_hits += 1
                                        ln = l3_lines[set_c3][wc3]
                                        ln.accessed = True
                                        if l3_lru is not None:
                                            l3_lru._clock += 1
                                            l3_stamps[set_c3][wc3] = (
                                                l3_lru._clock
                                            )
                                        else:
                                            l3_rrpv[set_c3][wc3] = 0
                                        if l3_res is not None:
                                            l3_res.hit((set_c3, wc3), now)
                                        wlat += hl3_lat
                                    else:
                                        l3_misses += 1
                                        m_acc += 1
                                        m_reads += 1
                                        wlat += hl3_lat + mem_lat
                                        # fill LLC (cbPred inlined)
                                        bypass3 = mark_dp = False
                                        if cb is not None and (
                                            cb_pfq is None
                                            or (blk >> boff) in cb_pfq
                                        ):
                                            if cb_pfq is not None:
                                                cb_stat["pfq_matches"] = (
                                                    cb_stat.get(
                                                        "pfq_matches", 0
                                                    ) + 1
                                                )
                                                if cb_probe is not None:
                                                    cb_probe.emit(
                                                        now, EV_PFQ_HIT, blk
                                                    )
                                            bhh = fx_blk.get(blk)
                                            if bhh is None:
                                                bhh = fx_blk[blk] = (
                                                    fold_xor(blk, bh_bits)
                                                )
                                            doa = bh_vals[bhh] > bh_thresh
                                            if cb_obs is not None:
                                                cb_obs(blk, doa)
                                            if doa:
                                                cb_stat[
                                                    "doa_predictions"
                                                ] = cb_stat.get(
                                                    "doa_predictions", 0
                                                ) + 1
                                                if cb_probe is not None:
                                                    cb_probe.emit(
                                                        now,
                                                        EV_LLC_BYPASS,
                                                        blk,
                                                    )
                                                bypass3 = True
                                            elif cb_probe is not None:
                                                mark_dp = True
                                                cb_probe.emit(
                                                    now, EV_LLC_MARK_DP, blk
                                                )
                                            else:
                                                mark_dp = True
                                        if bypass3:
                                            l3_byp += 1
                                            victim3 = None
                                        else:
                                            lines3 = l3_lines[set_c3]
                                            victim3 = None
                                            w3 = None
                                            if len(tc3) < l3_assoc:
                                                for wi2, ex in enumerate(
                                                    lines3
                                                ):
                                                    if ex is None:
                                                        w3 = wi2
                                                        break
                                            if w3 is None:
                                                if l3_lru is not None:
                                                    row = l3_stamps[set_c3]
                                                    w3 = row.index(min(row))
                                                else:
                                                    row = l3_rrpv[set_c3]
                                                    while l3_rmax not in row:
                                                        for wi2 in range(
                                                            l3_assoc
                                                        ):
                                                            row[wi2] += 1
                                                    w3 = row.index(l3_rmax)
                                                victim3 = lines3[w3]
                                                del tc3[victim3.tag]
                                                lines3[w3] = None
                                                l3.content_version += 1
                                                l3_evicts += 1
                                                if victim3.dirty:
                                                    l3_wb += 1
                                                if l3_res is not None:
                                                    l3_res.evict(
                                                        (set_c3, w3), now
                                                    )
                                                if (
                                                    cb is not None
                                                    and victim3.dp
                                                ):
                                                    cb_on_evict(
                                                        l3, victim3, now
                                                    )
                                            ln = CacheLine(blk, False)
                                            if mark_dp:
                                                ln.dp = True
                                            lines3[w3] = ln
                                            tc3[blk] = w3
                                            l3.content_version += 1
                                            if l3_lru is not None:
                                                l3_lru._clock += 1
                                                l3_stamps[set_c3][w3] = (
                                                    l3_lru._clock
                                                )
                                            else:
                                                l3_rrpv[set_c3][w3] = (
                                                    l3_rmax - 1
                                                )
                                            l3_fills += 1
                                            if l3_res is not None:
                                                l3_res.fill(
                                                    (set_c3, w3), now
                                                )
                                        if victim3 is not None:
                                            vt = victim3.tag
                                            s1 = vt & l1_mask
                                            wv = l1_tags[s1].get(vt)
                                            in1 = None
                                            if wv is not None:
                                                l1_inv += 1
                                                in1 = l1_lines[s1][wv]
                                                del l1_tags[s1][vt]
                                                l1_lines[s1][wv] = None
                                                l1.content_version += 1
                                                l1_evicts += 1
                                                if in1.dirty:
                                                    l1_wb += 1
                                                if l1_lru is None:
                                                    l1_rrpv[s1][wv] = l1_rmax
                                            s2 = vt & l2_mask
                                            wv2 = l2_tags[s2].get(vt)
                                            in2 = None
                                            if wv2 is not None:
                                                l2_inv += 1
                                                in2 = l2_lines[s2][wv2]
                                                del l2_tags[s2][vt]
                                                l2_lines[s2][wv2] = None
                                                l2.content_version += 1
                                                l2_evicts += 1
                                                if in2.dirty:
                                                    l2_wb += 1
                                                if l2_lru is None:
                                                    l2_rrpv[s2][wv2] = (
                                                        l2_rmax
                                                    )
                                            if (
                                                in1 is not None
                                                or in2 is not None
                                            ):
                                                h_incl += 1
                                            if (
                                                victim3.dirty
                                                or (in1 and in1.dirty)
                                                or (in2 and in2.dirty)
                                            ):
                                                m_acc += 1
                                                m_writes += 1
                                    # fill L2 (walk loads land in L2)
                                    lines2 = l2_lines[set_c]
                                    victim2 = None
                                    w2 = None
                                    if len(tc) < l2_assoc:
                                        for wi2, ex in enumerate(lines2):
                                            if ex is None:
                                                w2 = wi2
                                                break
                                    if w2 is None:
                                        if l2_lru is not None:
                                            row = l2_stamps[set_c]
                                            w2 = row.index(min(row))
                                        else:
                                            row = l2_rrpv[set_c]
                                            while l2_rmax not in row:
                                                for wi2 in range(l2_assoc):
                                                    row[wi2] += 1
                                            w2 = row.index(l2_rmax)
                                        victim2 = lines2[w2]
                                        del tc[victim2.tag]
                                        lines2[w2] = None
                                        l2.content_version += 1
                                        l2_evicts += 1
                                        if victim2.dirty:
                                            l2_wb += 1
                                    ln = CacheLine(blk, False)
                                    lines2[w2] = ln
                                    tc[blk] = w2
                                    l2.content_version += 1
                                    if l2_lru is not None:
                                        l2_lru._clock += 1
                                        l2_stamps[set_c][w2] = l2_lru._clock
                                    else:
                                        l2_rrpv[set_c][w2] = l2_rmax - 1
                                    l2_fills += 1
                                    if victim2 is not None and victim2.dirty:
                                        vt = victim2.tag
                                        s3 = vt & l3_mask
                                        wv3 = l3_tags[s3].get(vt)
                                        if wv3 is not None:
                                            l3_lines[s3][wv3].dirty = True
                                        else:
                                            m_acc += 1
                                            m_writes += 1
                                            h_orphan += 1
                                pwc_fill(ivpn)
                                w_cycles += wlat
                                pfn_to_vpn[pfn_i] = ivpn
                                if probe is not None:
                                    probe.emit(now, EV_WALK, ivpn, wlat)
                                penalty = (
                                    l2_tlb_latency + wlat * walk_exposure
                                )
                                # LLT fill (dpPred decision inlined)
                                lt_install = True
                                lt_pch = pc
                                if dp is not None:
                                    if dp_demote:
                                        lt_fill(ivpn, pfn_i, pc, now)
                                        lt_install = False
                                    else:
                                        pc_h = fx_pc.get(pc)
                                        if pc_h is None:
                                            pc_h = fx_pc[pc] = fold_xor(
                                                pc, dp_pcbits
                                            )
                                        lt_pch = pc_h
                                        if dp_vbits:
                                            vh = fx_vpn.get(ivpn)
                                            if vh is None:
                                                vh = fx_vpn[ivpn] = (
                                                    fold_xor(
                                                        ivpn, dp_vbits
                                                    )
                                                )
                                        else:
                                            vh = 0
                                        doa = (
                                            ph_vals[pc_h * ph_cols + vh]
                                            > dp_thresh
                                        )
                                        if dp_obs is not None:
                                            dp_obs(ivpn, doa)
                                        if doa:
                                            lt_install = False
                                            dp_stat["doa_predictions"] = (
                                                dp_stat.get(
                                                    "doa_predictions", 0
                                                ) + 1
                                            )
                                            if dp_sink is not None:
                                                dp_sink(pfn_i)
                                                if dp_probe is not None:
                                                    dp_probe.emit(
                                                        now, EV_PFQ_PUSH,
                                                        pfn_i,
                                                    )
                                            if sh_entries is not None:
                                                if ivpn in sh_entries:
                                                    del sh_entries[ivpn]
                                                elif (
                                                    len(sh_entries)
                                                    >= sh_cap
                                                ):
                                                    ev_vpn, _ = (
                                                        sh_entries.popitem(
                                                            last=False
                                                        )
                                                    )
                                                    sh_stat[
                                                        "evictions"
                                                    ] = sh_stat.get(
                                                        "evictions", 0
                                                    ) + 1
                                                    if sh_probe is not None:
                                                        sh_probe.emit(
                                                            now,
                                                            EV_SHADOW_EVICT,
                                                            ev_vpn,
                                                        )
                                                sh_entries[ivpn] = (
                                                    pfn_i, pc_h
                                                )
                                                sh_stat["inserts"] = (
                                                    sh_stat.get(
                                                        "inserts", 0
                                                    ) + 1
                                                )
                                                if dp_probe is not None:
                                                    dp_probe.emit(
                                                        now,
                                                        EV_SHADOW_PROMOTE,
                                                        ivpn, pfn_i,
                                                    )
                                            if dp_probe is not None:
                                                dp_probe.emit(
                                                    now, EV_LLT_BYPASS,
                                                    ivpn, pfn_i,
                                                )
                                            lt_byp += 1
                                if lt_install:
                                    set_l = ivpn & lt_mask
                                    tags_l = lt_tags[set_l]
                                    entries_l = lt_entries[set_l]
                                    wl = None
                                    if len(tags_l) < lt_assoc:
                                        for wi2, ex in enumerate(entries_l):
                                            if ex is None:
                                                wl = wi2
                                                break
                                    if wl is None:
                                        if lt_lru is not None:
                                            row = lt_stamps[set_l]
                                            wl = row.index(min(row))
                                        else:
                                            row = lt_rrpv[set_l]
                                            while lt_rmax not in row:
                                                for wi2 in range(lt_assoc):
                                                    row[wi2] += 1
                                            wl = row.index(lt_rmax)
                                        victim_l = entries_l[wl]
                                        del tags_l[victim_l.vpn]
                                        entries_l[wl] = None
                                        lt.content_version += 1
                                        lt_evicts += 1
                                        if lt_res is not None:
                                            lt_res.evict((set_l, wl), now)
                                        if dp is not None:
                                            # on_evict training inlined
                                            vv = victim_l.vpn
                                            if dp_vbits:
                                                vh2 = fx_vpn.get(vv)
                                                if vh2 is None:
                                                    vh2 = fx_vpn[vv] = (
                                                        fold_xor(
                                                            vv, dp_vbits
                                                        )
                                                    )
                                            else:
                                                vh2 = 0
                                            pidx = (
                                                (victim_l.pc_hash % ph_rows)
                                                * ph_cols + vh2
                                            )
                                            if victim_l.accessed:
                                                ph_vals[pidx] = 0
                                                ph_stat[
                                                    "not_doa_trainings"
                                                ] = ph_stat.get(
                                                    "not_doa_trainings", 0
                                                ) + 1
                                            else:
                                                pv = ph_vals[pidx]
                                                if pv < ph_max:
                                                    ph_vals[pidx] = pv + 1
                                                ph_stat[
                                                    "doa_trainings"
                                                ] = ph_stat.get(
                                                    "doa_trainings", 0
                                                ) + 1
                                                dp_stat[
                                                    "doa_evictions_observed"
                                                ] = dp_stat.get(
                                                    "doa_evictions_observed",
                                                    0,
                                                ) + 1
                                            if dp_probe is not None:
                                                dp_probe.emit(
                                                    now, EV_LLT_VERDICT,
                                                    victim_l.vpn, False,
                                                    not victim_l.accessed,
                                                )
                                    le = TlbEntry(ivpn, pfn_i, lt_pch)
                                    entries_l[wl] = le
                                    tags_l[ivpn] = wl
                                    lt.content_version += 1
                                    if lt_lru is not None:
                                        lt_lru._clock += 1
                                        lt_stamps[set_l][wl] = lt_lru._clock
                                    else:
                                        lt_rrpv[set_l][wl] = lt_rmax - 1
                                    lt_fills += 1
                                    if lt_res is not None:
                                        lt_res.fill((set_l, wl), now)
                        # L1 I-TLB fill
                        set_i = ivpn & it_mask
                        tags_i = it_tags[set_i]
                        entries_i = it_entries[set_i]
                        wi_ = None
                        if len(tags_i) < it_assoc:
                            for wi2, ex in enumerate(entries_i):
                                if ex is None:
                                    wi_ = wi2
                                    break
                        if wi_ is None:
                            if it_lru is not None:
                                row = it_stamps[set_i]
                                wi_ = row.index(min(row))
                            else:
                                row = it_rrpv[set_i]
                                while it_rmax not in row:
                                    for wi2 in range(it_assoc):
                                        row[wi2] += 1
                                wi_ = row.index(it_rmax)
                            victim_i = entries_i[wi_]
                            del tags_i[victim_i.vpn]
                            entries_i[wi_] = None
                            it.content_version += 1
                            it_evicts += 1
                        ent = TlbEntry(ivpn, pfn_i, pc)
                        entries_i[wi_] = ent
                        tags_i[ivpn] = wi_
                        it.content_version += 1
                        if it_lru is not None:
                            it_lru._clock += 1
                            it_stamps[set_i][wi_] = it_lru._clock
                        else:
                            it_rrpv[set_i][wi_] = it_rmax - 1
                        it_fills += 1
                        if pf:
                            last_ivpn = ivpn
                            last_ient = ent

                # ---- data-side translation ----------------------------- #
                dvpn = vaddr >> ps
                if pf and dvpn == last_dvpn:
                    dt_hits += 1
                    last_dent.accessed = True
                    pfn = last_dent.pfn
                else:
                    set_d = dvpn & dt_mask
                    tags_d = dt_tags[set_d]
                    wd = tags_d.get(dvpn)
                    if wd is not None:
                        dt_hits += 1
                        dentry = dt_entries[set_d][wd]
                        dentry.accessed = True
                        if dt_lru is not None:
                            dt_lru._clock += 1
                            dt_stamps[set_d][wd] = dt_lru._clock
                        else:
                            dt_rrpv[set_d][wd] = 0
                        pfn = dentry.pfn
                        if pf:
                            last_dvpn = dvpn
                            last_dent = dentry
                    else:
                        dt_misses += 1
                        pfn = None
                        set_l = dvpn & lt_mask
                        tags_l = lt_tags[set_l]
                        wl = tags_l.get(dvpn)
                        if wl is not None:
                            lt_hits += 1
                            le = lt_entries[set_l][wl]
                            le.accessed = True
                            if lt_lru is not None:
                                lt_lru._clock += 1
                                lt_stamps[set_l][wl] = lt_lru._clock
                            else:
                                lt_rrpv[set_l][wl] = 0
                            if lt_res is not None:
                                lt_res.hit((set_l, wl), now)
                            pfn = le.pfn
                            penalty += l2_tlb_hit_penalty
                        else:
                            lt_misses += 1
                            if sh_entries is not None:
                                # shadow-miss fast path; hits (rare
                                # misprediction refills) take the real
                                # on_miss slow path
                                if dvpn in sh_entries:
                                    buffered = lt_on_miss(lt, dvpn, now)
                                    if buffered is not None:
                                        lt_vbh += 1
                                        pfn = buffered
                                        penalty += l2_tlb_hit_penalty
                                else:
                                    sh_stat["misses"] = (
                                        sh_stat.get("misses", 0) + 1
                                    )
                            if pfn is None:
                                # ---- page walk (inlined walker.walk) --- #
                                w_walks += 1
                                pfn, path = page_table_walk_path(dvpn)
                                resolved, wlat = pwc_consult(dvpn)
                                w_memacc += NUM_LEVELS - resolved
                                for pte_paddr in path[resolved:]:
                                    blk = pte_paddr >> bs
                                    h_walkacc += 1
                                    set_c = blk & l2_mask
                                    tc = l2_tags[set_c]
                                    wc = tc.get(blk)
                                    if wc is not None:
                                        l2_hits += 1
                                        ln = l2_lines[set_c][wc]
                                        ln.accessed = True
                                        if l2_lru is not None:
                                            l2_lru._clock += 1
                                            l2_stamps[set_c][wc] = (
                                                l2_lru._clock
                                            )
                                        else:
                                            l2_rrpv[set_c][wc] = 0
                                        wlat += hl2_lat
                                        continue
                                    l2_misses += 1
                                    set_c3 = blk & l3_mask
                                    tc3 = l3_tags[set_c3]
                                    wc3 = tc3.get(blk)
                                    if wc3 is not None:
                                        l3_hits += 1
                                        ln = l3_lines[set_c3][wc3]
                                        ln.accessed = True
                                        if l3_lru is not None:
                                            l3_lru._clock += 1
                                            l3_stamps[set_c3][wc3] = (
                                                l3_lru._clock
                                            )
                                        else:
                                            l3_rrpv[set_c3][wc3] = 0
                                        if l3_res is not None:
                                            l3_res.hit((set_c3, wc3), now)
                                        wlat += hl3_lat
                                    else:
                                        l3_misses += 1
                                        m_acc += 1
                                        m_reads += 1
                                        wlat += hl3_lat + mem_lat
                                        # fill LLC (cbPred inlined)
                                        bypass3 = mark_dp = False
                                        if cb is not None and (
                                            cb_pfq is None
                                            or (blk >> boff) in cb_pfq
                                        ):
                                            if cb_pfq is not None:
                                                cb_stat["pfq_matches"] = (
                                                    cb_stat.get(
                                                        "pfq_matches", 0
                                                    ) + 1
                                                )
                                                if cb_probe is not None:
                                                    cb_probe.emit(
                                                        now, EV_PFQ_HIT, blk
                                                    )
                                            bhh = fx_blk.get(blk)
                                            if bhh is None:
                                                bhh = fx_blk[blk] = (
                                                    fold_xor(blk, bh_bits)
                                                )
                                            doa = bh_vals[bhh] > bh_thresh
                                            if cb_obs is not None:
                                                cb_obs(blk, doa)
                                            if doa:
                                                cb_stat[
                                                    "doa_predictions"
                                                ] = cb_stat.get(
                                                    "doa_predictions", 0
                                                ) + 1
                                                if cb_probe is not None:
                                                    cb_probe.emit(
                                                        now,
                                                        EV_LLC_BYPASS,
                                                        blk,
                                                    )
                                                bypass3 = True
                                            elif cb_probe is not None:
                                                mark_dp = True
                                                cb_probe.emit(
                                                    now, EV_LLC_MARK_DP, blk
                                                )
                                            else:
                                                mark_dp = True
                                        if bypass3:
                                            l3_byp += 1
                                            victim3 = None
                                        else:
                                            lines3 = l3_lines[set_c3]
                                            victim3 = None
                                            w3 = None
                                            if len(tc3) < l3_assoc:
                                                for wi2, ex in enumerate(
                                                    lines3
                                                ):
                                                    if ex is None:
                                                        w3 = wi2
                                                        break
                                            if w3 is None:
                                                if l3_lru is not None:
                                                    row = l3_stamps[set_c3]
                                                    w3 = row.index(min(row))
                                                else:
                                                    row = l3_rrpv[set_c3]
                                                    while l3_rmax not in row:
                                                        for wi2 in range(
                                                            l3_assoc
                                                        ):
                                                            row[wi2] += 1
                                                    w3 = row.index(l3_rmax)
                                                victim3 = lines3[w3]
                                                del tc3[victim3.tag]
                                                lines3[w3] = None
                                                l3.content_version += 1
                                                l3_evicts += 1
                                                if victim3.dirty:
                                                    l3_wb += 1
                                                if l3_res is not None:
                                                    l3_res.evict(
                                                        (set_c3, w3), now
                                                    )
                                                if (
                                                    cb is not None
                                                    and victim3.dp
                                                ):
                                                    cb_on_evict(
                                                        l3, victim3, now
                                                    )
                                            ln = CacheLine(blk, False)
                                            if mark_dp:
                                                ln.dp = True
                                            lines3[w3] = ln
                                            tc3[blk] = w3
                                            l3.content_version += 1
                                            if l3_lru is not None:
                                                l3_lru._clock += 1
                                                l3_stamps[set_c3][w3] = (
                                                    l3_lru._clock
                                                )
                                            else:
                                                l3_rrpv[set_c3][w3] = (
                                                    l3_rmax - 1
                                                )
                                            l3_fills += 1
                                            if l3_res is not None:
                                                l3_res.fill(
                                                    (set_c3, w3), now
                                                )
                                        if victim3 is not None:
                                            vt = victim3.tag
                                            s1 = vt & l1_mask
                                            wv = l1_tags[s1].get(vt)
                                            in1 = None
                                            if wv is not None:
                                                l1_inv += 1
                                                in1 = l1_lines[s1][wv]
                                                del l1_tags[s1][vt]
                                                l1_lines[s1][wv] = None
                                                l1.content_version += 1
                                                l1_evicts += 1
                                                if in1.dirty:
                                                    l1_wb += 1
                                                if l1_lru is None:
                                                    l1_rrpv[s1][wv] = l1_rmax
                                            s2 = vt & l2_mask
                                            wv2 = l2_tags[s2].get(vt)
                                            in2 = None
                                            if wv2 is not None:
                                                l2_inv += 1
                                                in2 = l2_lines[s2][wv2]
                                                del l2_tags[s2][vt]
                                                l2_lines[s2][wv2] = None
                                                l2.content_version += 1
                                                l2_evicts += 1
                                                if in2.dirty:
                                                    l2_wb += 1
                                                if l2_lru is None:
                                                    l2_rrpv[s2][wv2] = (
                                                        l2_rmax
                                                    )
                                            if (
                                                in1 is not None
                                                or in2 is not None
                                            ):
                                                h_incl += 1
                                            if (
                                                victim3.dirty
                                                or (in1 and in1.dirty)
                                                or (in2 and in2.dirty)
                                            ):
                                                m_acc += 1
                                                m_writes += 1
                                    # fill L2 (walk loads land in L2)
                                    lines2 = l2_lines[set_c]
                                    victim2 = None
                                    w2 = None
                                    if len(tc) < l2_assoc:
                                        for wi2, ex in enumerate(lines2):
                                            if ex is None:
                                                w2 = wi2
                                                break
                                    if w2 is None:
                                        if l2_lru is not None:
                                            row = l2_stamps[set_c]
                                            w2 = row.index(min(row))
                                        else:
                                            row = l2_rrpv[set_c]
                                            while l2_rmax not in row:
                                                for wi2 in range(l2_assoc):
                                                    row[wi2] += 1
                                            w2 = row.index(l2_rmax)
                                        victim2 = lines2[w2]
                                        del tc[victim2.tag]
                                        lines2[w2] = None
                                        l2.content_version += 1
                                        l2_evicts += 1
                                        if victim2.dirty:
                                            l2_wb += 1
                                    ln = CacheLine(blk, False)
                                    lines2[w2] = ln
                                    tc[blk] = w2
                                    l2.content_version += 1
                                    if l2_lru is not None:
                                        l2_lru._clock += 1
                                        l2_stamps[set_c][w2] = l2_lru._clock
                                    else:
                                        l2_rrpv[set_c][w2] = l2_rmax - 1
                                    l2_fills += 1
                                    if victim2 is not None and victim2.dirty:
                                        vt = victim2.tag
                                        s3 = vt & l3_mask
                                        wv3 = l3_tags[s3].get(vt)
                                        if wv3 is not None:
                                            l3_lines[s3][wv3].dirty = True
                                        else:
                                            m_acc += 1
                                            m_writes += 1
                                            h_orphan += 1
                                pwc_fill(dvpn)
                                w_cycles += wlat
                                pfn_to_vpn[pfn] = dvpn
                                if probe is not None:
                                    probe.emit(now, EV_WALK, dvpn, wlat)
                                penalty += (
                                    l2_tlb_latency + wlat * walk_exposure
                                )
                                # LLT fill (dpPred decision inlined)
                                lt_install = True
                                lt_pch = pc
                                if dp is not None:
                                    if dp_demote:
                                        lt_fill(dvpn, pfn, pc, now)
                                        lt_install = False
                                    else:
                                        pc_h = fx_pc.get(pc)
                                        if pc_h is None:
                                            pc_h = fx_pc[pc] = fold_xor(
                                                pc, dp_pcbits
                                            )
                                        lt_pch = pc_h
                                        if dp_vbits:
                                            vh = fx_vpn.get(dvpn)
                                            if vh is None:
                                                vh = fx_vpn[dvpn] = (
                                                    fold_xor(
                                                        dvpn, dp_vbits
                                                    )
                                                )
                                        else:
                                            vh = 0
                                        doa = (
                                            ph_vals[pc_h * ph_cols + vh]
                                            > dp_thresh
                                        )
                                        if dp_obs is not None:
                                            dp_obs(dvpn, doa)
                                        if doa:
                                            lt_install = False
                                            dp_stat["doa_predictions"] = (
                                                dp_stat.get(
                                                    "doa_predictions", 0
                                                ) + 1
                                            )
                                            if dp_sink is not None:
                                                dp_sink(pfn)
                                                if dp_probe is not None:
                                                    dp_probe.emit(
                                                        now, EV_PFQ_PUSH,
                                                        pfn,
                                                    )
                                            if sh_entries is not None:
                                                if dvpn in sh_entries:
                                                    del sh_entries[dvpn]
                                                elif (
                                                    len(sh_entries)
                                                    >= sh_cap
                                                ):
                                                    ev_vpn, _ = (
                                                        sh_entries.popitem(
                                                            last=False
                                                        )
                                                    )
                                                    sh_stat[
                                                        "evictions"
                                                    ] = sh_stat.get(
                                                        "evictions", 0
                                                    ) + 1
                                                    if sh_probe is not None:
                                                        sh_probe.emit(
                                                            now,
                                                            EV_SHADOW_EVICT,
                                                            ev_vpn,
                                                        )
                                                sh_entries[dvpn] = (
                                                    pfn, pc_h
                                                )
                                                sh_stat["inserts"] = (
                                                    sh_stat.get(
                                                        "inserts", 0
                                                    ) + 1
                                                )
                                                if dp_probe is not None:
                                                    dp_probe.emit(
                                                        now,
                                                        EV_SHADOW_PROMOTE,
                                                        dvpn, pfn,
                                                    )
                                            if dp_probe is not None:
                                                dp_probe.emit(
                                                    now, EV_LLT_BYPASS,
                                                    dvpn, pfn,
                                                )
                                            lt_byp += 1
                                if lt_install:
                                    set_l = dvpn & lt_mask
                                    tags_l = lt_tags[set_l]
                                    entries_l = lt_entries[set_l]
                                    wl = None
                                    if len(tags_l) < lt_assoc:
                                        for wi2, ex in enumerate(entries_l):
                                            if ex is None:
                                                wl = wi2
                                                break
                                    if wl is None:
                                        if lt_lru is not None:
                                            row = lt_stamps[set_l]
                                            wl = row.index(min(row))
                                        else:
                                            row = lt_rrpv[set_l]
                                            while lt_rmax not in row:
                                                for wi2 in range(lt_assoc):
                                                    row[wi2] += 1
                                            wl = row.index(lt_rmax)
                                        victim_l = entries_l[wl]
                                        del tags_l[victim_l.vpn]
                                        entries_l[wl] = None
                                        lt.content_version += 1
                                        lt_evicts += 1
                                        if lt_res is not None:
                                            lt_res.evict((set_l, wl), now)
                                        if dp is not None:
                                            # on_evict training inlined
                                            vv = victim_l.vpn
                                            if dp_vbits:
                                                vh2 = fx_vpn.get(vv)
                                                if vh2 is None:
                                                    vh2 = fx_vpn[vv] = (
                                                        fold_xor(
                                                            vv, dp_vbits
                                                        )
                                                    )
                                            else:
                                                vh2 = 0
                                            pidx = (
                                                (victim_l.pc_hash % ph_rows)
                                                * ph_cols + vh2
                                            )
                                            if victim_l.accessed:
                                                ph_vals[pidx] = 0
                                                ph_stat[
                                                    "not_doa_trainings"
                                                ] = ph_stat.get(
                                                    "not_doa_trainings", 0
                                                ) + 1
                                            else:
                                                pv = ph_vals[pidx]
                                                if pv < ph_max:
                                                    ph_vals[pidx] = pv + 1
                                                ph_stat[
                                                    "doa_trainings"
                                                ] = ph_stat.get(
                                                    "doa_trainings", 0
                                                ) + 1
                                                dp_stat[
                                                    "doa_evictions_observed"
                                                ] = dp_stat.get(
                                                    "doa_evictions_observed",
                                                    0,
                                                ) + 1
                                            if dp_probe is not None:
                                                dp_probe.emit(
                                                    now, EV_LLT_VERDICT,
                                                    victim_l.vpn, False,
                                                    not victim_l.accessed,
                                                )
                                    le = TlbEntry(dvpn, pfn, lt_pch)
                                    entries_l[wl] = le
                                    tags_l[dvpn] = wl
                                    lt.content_version += 1
                                    if lt_lru is not None:
                                        lt_lru._clock += 1
                                        lt_stamps[set_l][wl] = lt_lru._clock
                                    else:
                                        lt_rrpv[set_l][wl] = lt_rmax - 1
                                    lt_fills += 1
                                    if lt_res is not None:
                                        lt_res.fill((set_l, wl), now)
                        # L1 D-TLB fill
                        set_d = dvpn & dt_mask
                        tags_d = dt_tags[set_d]
                        entries_d = dt_entries[set_d]
                        wd_ = None
                        if len(tags_d) < dt_assoc:
                            for wi2, ex in enumerate(entries_d):
                                if ex is None:
                                    wd_ = wi2
                                    break
                        if wd_ is None:
                            if dt_lru is not None:
                                row = dt_stamps[set_d]
                                wd_ = row.index(min(row))
                            else:
                                row = dt_rrpv[set_d]
                                while dt_rmax not in row:
                                    for wi2 in range(dt_assoc):
                                        row[wi2] += 1
                                wd_ = row.index(dt_rmax)
                            victim_d = entries_d[wd_]
                            del tags_d[victim_d.vpn]
                            entries_d[wd_] = None
                            dt.content_version += 1
                            dt_evicts += 1
                        dent = TlbEntry(dvpn, pfn, pc)
                        entries_d[wd_] = dent
                        tags_d[dvpn] = wd_
                        dt.content_version += 1
                        if dt_lru is not None:
                            dt_lru._clock += 1
                            dt_stamps[set_d][wd_] = dt_lru._clock
                        else:
                            dt_rrpv[set_d][wd_] = dt_rmax - 1
                        dt_fills += 1
                        if pf:
                            last_dvpn = dvpn
                            last_dent = dent

                # ---- physical data access ------------------------------ #
                block = (pfn << boff) | ((vaddr >> bs) & bmask)
                h_acc += 1
                set_1 = block & l1_mask
                t1 = l1_tags[set_1]
                w1 = t1.get(block)
                if w1 is not None:
                    l1_hits += 1
                    ln = l1_lines[set_1][w1]
                    ln.accessed = True
                    if is_write:
                        ln.dirty = True
                    if l1_lru is not None:
                        l1_lru._clock += 1
                        l1_stamps[set_1][w1] = l1_lru._clock
                    else:
                        l1_rrpv[set_1][w1] = 0
                else:
                    l1_misses += 1
                    set_2 = block & l2_mask
                    t2 = l2_tags[set_2]
                    w2_ = t2.get(block)
                    if w2_ is not None:
                        l2_hits += 1
                        ln = l2_lines[set_2][w2_]
                        ln.accessed = True
                        if is_write:
                            ln.dirty = True
                        if l2_lru is not None:
                            l2_lru._clock += 1
                            l2_stamps[set_2][w2_] = l2_lru._clock
                        else:
                            l2_rrpv[set_2][w2_] = 0
                        penalty += l2_hit_penalty
                    else:
                        l2_misses += 1
                        set_3 = block & l3_mask
                        t3 = l3_tags[set_3]
                        w3_ = t3.get(block)
                        if w3_ is not None:
                            l3_hits += 1
                            ln = l3_lines[set_3][w3_]
                            ln.accessed = True
                            if is_write:
                                ln.dirty = True
                            if l3_lru is not None:
                                l3_lru._clock += 1
                                l3_stamps[set_3][w3_] = l3_lru._clock
                            else:
                                l3_rrpv[set_3][w3_] = 0
                            if l3_res is not None:
                                l3_res.hit((set_3, w3_), now)
                            penalty += llc_hit_penalty
                        else:
                            l3_misses += 1
                            m_acc += 1
                            if is_write:
                                m_writes += 1
                            else:
                                m_reads += 1
                            h_demand += 1
                            penalty += mem_penalty
                            # fill LLC (cbPred inlined)
                            bypass3 = mark_dp = False
                            if cb is not None and (
                                cb_pfq is None
                                or (block >> boff) in cb_pfq
                            ):
                                if cb_pfq is not None:
                                    cb_stat["pfq_matches"] = (
                                        cb_stat.get("pfq_matches", 0) + 1
                                    )
                                    if cb_probe is not None:
                                        cb_probe.emit(
                                            now, EV_PFQ_HIT, block
                                        )
                                bhh = fx_blk.get(block)
                                if bhh is None:
                                    bhh = fx_blk[block] = fold_xor(
                                        block, bh_bits
                                    )
                                doa = bh_vals[bhh] > bh_thresh
                                if cb_obs is not None:
                                    cb_obs(block, doa)
                                if doa:
                                    cb_stat["doa_predictions"] = (
                                        cb_stat.get("doa_predictions", 0)
                                        + 1
                                    )
                                    if cb_probe is not None:
                                        cb_probe.emit(
                                            now, EV_LLC_BYPASS, block
                                        )
                                    bypass3 = True
                                elif cb_probe is not None:
                                    mark_dp = True
                                    cb_probe.emit(
                                        now, EV_LLC_MARK_DP, block
                                    )
                                else:
                                    mark_dp = True
                            if bypass3:
                                l3_byp += 1
                                victim3 = None
                            else:
                                lines3 = l3_lines[set_3]
                                victim3 = None
                                w3f = None
                                if len(t3) < l3_assoc:
                                    for wi2, ex in enumerate(lines3):
                                        if ex is None:
                                            w3f = wi2
                                            break
                                if w3f is None:
                                    if l3_lru is not None:
                                        row = l3_stamps[set_3]
                                        w3f = row.index(min(row))
                                    else:
                                        row = l3_rrpv[set_3]
                                        while l3_rmax not in row:
                                            for wi2 in range(l3_assoc):
                                                row[wi2] += 1
                                        w3f = row.index(l3_rmax)
                                    victim3 = lines3[w3f]
                                    del t3[victim3.tag]
                                    lines3[w3f] = None
                                    l3.content_version += 1
                                    l3_evicts += 1
                                    if victim3.dirty:
                                        l3_wb += 1
                                    if l3_res is not None:
                                        l3_res.evict((set_3, w3f), now)
                                    if cb is not None and victim3.dp:
                                        cb_on_evict(l3, victim3, now)
                                ln = CacheLine(block, False)
                                if mark_dp:
                                    ln.dp = True
                                lines3[w3f] = ln
                                t3[block] = w3f
                                l3.content_version += 1
                                if l3_lru is not None:
                                    l3_lru._clock += 1
                                    l3_stamps[set_3][w3f] = l3_lru._clock
                                else:
                                    l3_rrpv[set_3][w3f] = l3_rmax - 1
                                l3_fills += 1
                                if l3_res is not None:
                                    l3_res.fill((set_3, w3f), now)
                            if victim3 is not None:
                                vt = victim3.tag
                                s1 = vt & l1_mask
                                wv = l1_tags[s1].get(vt)
                                in1 = None
                                if wv is not None:
                                    l1_inv += 1
                                    in1 = l1_lines[s1][wv]
                                    del l1_tags[s1][vt]
                                    l1_lines[s1][wv] = None
                                    l1.content_version += 1
                                    l1_evicts += 1
                                    if in1.dirty:
                                        l1_wb += 1
                                    if l1_lru is None:
                                        l1_rrpv[s1][wv] = l1_rmax
                                s2 = vt & l2_mask
                                wv2 = l2_tags[s2].get(vt)
                                in2 = None
                                if wv2 is not None:
                                    l2_inv += 1
                                    in2 = l2_lines[s2][wv2]
                                    del l2_tags[s2][vt]
                                    l2_lines[s2][wv2] = None
                                    l2.content_version += 1
                                    l2_evicts += 1
                                    if in2.dirty:
                                        l2_wb += 1
                                    if l2_lru is None:
                                        l2_rrpv[s2][wv2] = l2_rmax
                                if in1 is not None or in2 is not None:
                                    h_incl += 1
                                if (
                                    victim3.dirty
                                    or (in1 and in1.dirty)
                                    or (in2 and in2.dirty)
                                ):
                                    m_acc += 1
                                    m_writes += 1
                        # fill L2
                        set_2b = block & l2_mask
                        t2b = l2_tags[set_2b]
                        lines2 = l2_lines[set_2b]
                        victim2 = None
                        w2f = None
                        if len(t2b) < l2_assoc:
                            for wi2, ex in enumerate(lines2):
                                if ex is None:
                                    w2f = wi2
                                    break
                        if w2f is None:
                            if l2_lru is not None:
                                row = l2_stamps[set_2b]
                                w2f = row.index(min(row))
                            else:
                                row = l2_rrpv[set_2b]
                                while l2_rmax not in row:
                                    for wi2 in range(l2_assoc):
                                        row[wi2] += 1
                                w2f = row.index(l2_rmax)
                            victim2 = lines2[w2f]
                            del t2b[victim2.tag]
                            lines2[w2f] = None
                            l2.content_version += 1
                            l2_evicts += 1
                            if victim2.dirty:
                                l2_wb += 1
                        ln = CacheLine(block, False)
                        lines2[w2f] = ln
                        t2b[block] = w2f
                        l2.content_version += 1
                        if l2_lru is not None:
                            l2_lru._clock += 1
                            l2_stamps[set_2b][w2f] = l2_lru._clock
                        else:
                            l2_rrpv[set_2b][w2f] = l2_rmax - 1
                        l2_fills += 1
                        if victim2 is not None and victim2.dirty:
                            vt = victim2.tag
                            s3 = vt & l3_mask
                            wv3 = l3_tags[s3].get(vt)
                            if wv3 is not None:
                                l3_lines[s3][wv3].dirty = True
                            else:
                                m_acc += 1
                                m_writes += 1
                                h_orphan += 1
                    # fill L1
                    lines1 = l1_lines[set_1]
                    victim1 = None
                    w1f = None
                    if len(t1) < l1_assoc:
                        for wi2, ex in enumerate(lines1):
                            if ex is None:
                                w1f = wi2
                                break
                    if w1f is None:
                        if l1_lru is not None:
                            row = l1_stamps[set_1]
                            w1f = row.index(min(row))
                        else:
                            row = l1_rrpv[set_1]
                            while l1_rmax not in row:
                                for wi2 in range(l1_assoc):
                                    row[wi2] += 1
                            w1f = row.index(l1_rmax)
                        victim1 = lines1[w1f]
                        del t1[victim1.tag]
                        lines1[w1f] = None
                        l1.content_version += 1
                        l1_evicts += 1
                        if victim1.dirty:
                            l1_wb += 1
                    ln = CacheLine(block, is_write)
                    lines1[w1f] = ln
                    t1[block] = w1f
                    l1.content_version += 1
                    if l1_lru is not None:
                        l1_lru._clock += 1
                        l1_stamps[set_1][w1f] = l1_lru._clock
                    else:
                        l1_rrpv[set_1][w1f] = l1_rmax - 1
                    l1_fills += 1
                    if victim1 is not None and victim1.dirty:
                        vt = victim1.tag
                        s2 = vt & l2_mask
                        wv2 = l2_tags[s2].get(vt)
                        if wv2 is not None:
                            l2_lines[s2][wv2].dirty = True
                        else:
                            s3 = vt & l3_mask
                            wv3 = l3_tags[s3].get(vt)
                            if wv3 is not None:
                                l3_lines[s3][wv3].dirty = True
                            else:
                                m_acc += 1
                                m_writes += 1
                                h_orphan += 1

                cycles += (gap + 1) * base_cpi + penalty

                # ---- telemetry boundary -------------------------------- #
                if instructions >= next_at:
                    it_stat["hits"] += it_hits
                    it_stat["misses"] += it_misses
                    it_stat["fills"] += it_fills
                    it_stat["evictions"] += it_evicts
                    it_hits = it_misses = it_fills = it_evicts = 0
                    dt_stat["hits"] += dt_hits
                    dt_stat["misses"] += dt_misses
                    dt_stat["fills"] += dt_fills
                    dt_stat["evictions"] += dt_evicts
                    dt_hits = dt_misses = dt_fills = dt_evicts = 0
                    lt_stat["hits"] += lt_hits
                    lt_stat["misses"] += lt_misses
                    lt_stat["victim_buffer_hits"] += lt_vbh
                    lt_stat["fills"] += lt_fills
                    lt_stat["evictions"] += lt_evicts
                    lt_stat["bypasses"] += lt_byp
                    lt_hits = lt_misses = lt_vbh = lt_fills = 0
                    lt_evicts = lt_byp = 0
                    l1_stat["hits"] += l1_hits
                    l1_stat["misses"] += l1_misses
                    l1_stat["fills"] += l1_fills
                    l1_stat["evictions"] += l1_evicts
                    l1_stat["writebacks"] += l1_wb
                    l1_stat["invalidations"] += l1_inv
                    l1_hits = l1_misses = l1_fills = 0
                    l1_evicts = l1_wb = l1_inv = 0
                    l2_stat["hits"] += l2_hits
                    l2_stat["misses"] += l2_misses
                    l2_stat["fills"] += l2_fills
                    l2_stat["evictions"] += l2_evicts
                    l2_stat["writebacks"] += l2_wb
                    l2_stat["invalidations"] += l2_inv
                    l2_hits = l2_misses = l2_fills = 0
                    l2_evicts = l2_wb = l2_inv = 0
                    l3_stat["hits"] += l3_hits
                    l3_stat["misses"] += l3_misses
                    l3_stat["fills"] += l3_fills
                    l3_stat["evictions"] += l3_evicts
                    l3_stat["writebacks"] += l3_wb
                    l3_stat["bypasses"] += l3_byp
                    l3_hits = l3_misses = l3_fills = 0
                    l3_evicts = l3_wb = l3_byp = 0
                    h_stat["accesses"] += h_acc
                    h_stat["llc_demand_misses"] += h_demand
                    h_stat["walk_accesses"] += h_walkacc
                    h_stat["inclusion_victims"] += h_incl
                    h_stat["orphan_writebacks"] += h_orphan
                    h_acc = h_demand = h_walkacc = h_incl = h_orphan = 0
                    mem_stat["accesses"] += m_acc
                    mem_stat["reads"] += m_reads
                    mem_stat["writes"] += m_writes
                    m_acc = m_reads = m_writes = 0
                    w_stat["walks"] += w_walks
                    w_stat["walk_memory_accesses"] += w_memacc
                    w_stat["walk_cycles"] += w_cycles
                    w_walks = w_memacc = w_cycles = 0
                    sample(instructions, cycles)
                    next_at = instructions + interval
            pos = seg

        # --- span-end flush and state write-back ------------------------ #
        it_stat["hits"] += it_hits
        it_stat["misses"] += it_misses
        it_stat["fills"] += it_fills
        it_stat["evictions"] += it_evicts
        dt_stat["hits"] += dt_hits
        dt_stat["misses"] += dt_misses
        dt_stat["fills"] += dt_fills
        dt_stat["evictions"] += dt_evicts
        lt_stat["hits"] += lt_hits
        lt_stat["misses"] += lt_misses
        lt_stat["victim_buffer_hits"] += lt_vbh
        lt_stat["fills"] += lt_fills
        lt_stat["evictions"] += lt_evicts
        lt_stat["bypasses"] += lt_byp
        l1_stat["hits"] += l1_hits
        l1_stat["misses"] += l1_misses
        l1_stat["fills"] += l1_fills
        l1_stat["evictions"] += l1_evicts
        l1_stat["writebacks"] += l1_wb
        l1_stat["invalidations"] += l1_inv
        l2_stat["hits"] += l2_hits
        l2_stat["misses"] += l2_misses
        l2_stat["fills"] += l2_fills
        l2_stat["evictions"] += l2_evicts
        l2_stat["writebacks"] += l2_wb
        l2_stat["invalidations"] += l2_inv
        l3_stat["hits"] += l3_hits
        l3_stat["misses"] += l3_misses
        l3_stat["fills"] += l3_fills
        l3_stat["evictions"] += l3_evicts
        l3_stat["writebacks"] += l3_wb
        l3_stat["bypasses"] += l3_byp
        h_stat["accesses"] += h_acc
        h_stat["llc_demand_misses"] += h_demand
        h_stat["walk_accesses"] += h_walkacc
        h_stat["inclusion_victims"] += h_incl
        h_stat["orphan_writebacks"] += h_orphan
        mem_stat["accesses"] += m_acc
        mem_stat["reads"] += m_reads
        mem_stat["writes"] += m_writes
        w_stat["walks"] += w_walks
        w_stat["walk_memory_accesses"] += w_memacc
        w_stat["walk_cycles"] += w_cycles
        m.now = now
        m.instructions = instructions
        m.cycles = cycles
        m._last_ivpn = last_ivpn
        m._last_ientry = last_ient
        m._last_dvpn = last_dvpn
        m._last_dentry = last_dent
        return next_at
