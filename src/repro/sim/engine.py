"""Batched (vectorized) trace-execution engine and engine selection.

The paper's premise is that the L1 structures absorb the bulk of
references — only L1-TLB / L1-D misses ever reach the LLT and LLC where
dpPred and cbPred live. This engine exploits that: a vectorized pre-pass
over a numpy window of trace records computes VPN / PFN / block indices
and tests them against array *mirrors* of the L1 I-TLB, L1 D-TLB, and
L1D contents. The longest prefix of records that is guaranteed to hit in
all three is then retired array-at-a-time — hit counters, fused-LRU
stamp updates, Accessed/dirty bits, the same-page filter state, and the
``(gap + 1) * base_cpi`` cycle fold are all applied in bulk with exactly
the state transitions of the scalar loop — while the first residual
(miss) record falls through to the ordinary per-access Python path that
drives the L2 TLB, walker, LLC, and the predictors.

Bit-identity with the scalar engine is a hard guarantee, not a goal
(``tests/test_engine_equivalence.py`` enforces it property-wise):

* membership mirrors are revalidated against each structure's
  ``content_version``, which only moves on install/evict — an all-hit
  prefix cannot change membership, so the mirror stays valid for exactly
  the records the engine retires in bulk;
* the same-page TLB filter is replicated via a page-*change* mask, so
  filtered records touch neither the LRU clock nor the stamps — and the
  carried ``_last_*`` entry objects are the same ones the scalar filter
  would touch, stale or not;
* per-record LRU stamps are reconstructed from the change ordinals
  (``clock0 + ordinal + 1`` at each entry's last touch), leaving the
  victim ordering bit-equal;
* cycles are accumulated with ``np.add.accumulate`` — a strict left
  fold, unlike pairwise ``np.sum`` — so the non-dyadic ``base_cpi``
  (0.4) rounds exactly as the scalar ``+=`` chain does;
* timeline sampling splits bulk segments at the same "first record at or
  past the boundary" points the scalar telemetry loop uses.

Low-locality workloads (the suite's TLB-thrashing kernels) produce short
all-hit prefixes where vectorization cannot pay; the engine detects this
and adaptively degrades to scalar bursts with geometric escalation, so
its worst case is the scalar engine plus a vanishing probe overhead.

Engine selection: ``resolve_engine`` — explicit argument, then
:func:`set_default_engine` (the CLI's ``--engine``), then the
``REPRO_ENGINE`` environment variable, then the batched default.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.vm.physmem import PAGE_SHIFT
from repro.vm.walker import BLOCK_SHIFT

ENGINE_BATCHED = "batched"
ENGINE_SCALAR = "scalar"
ENGINES = (ENGINE_BATCHED, ENGINE_SCALAR)

_default_engine: Optional[str] = None

_PAGE_SHIFT_U = np.uint64(PAGE_SHIFT)
_BLOCK_SHIFT_U = np.uint64(BLOCK_SHIFT)
_BLOCK_OFFSET_U = np.uint64(PAGE_SHIFT - BLOCK_SHIFT)
_BLOCK_IN_PAGE_U = np.uint64((1 << (PAGE_SHIFT - BLOCK_SHIFT)) - 1)
#: Empty-way sentinel in the tag mirrors; no reachable VPN or block
#: address comes near 2**64.
_EMPTY = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

#: Adaptive window/burst tuning. Windows double while prefixes run full
#: (amortising the probe); repeated short prefixes escalate scalar bursts
#: geometrically so miss-dominated phases pay almost no probe cost.
_WINDOW_MIN = 512
_WINDOW_MAX = 65536
_GOOD_PREFIX = 64
_BURST_MIN = 256
_BURST_MAX = 32768


def set_default_engine(engine: Optional[str]) -> None:
    """Pin the process-wide default engine (the CLI's ``--engine``)."""
    if engine is not None and engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    global _default_engine
    _default_engine = engine


def resolve_engine(engine: Optional[str] = None) -> str:
    """Effective engine: argument > set_default_engine > REPRO_ENGINE >
    batched."""
    if engine is not None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        return engine
    if _default_engine is not None:
        return _default_engine
    env = os.environ.get("REPRO_ENGINE")
    if env:
        if env not in ENGINES:
            raise ValueError(
                f"REPRO_ENGINE must be one of {ENGINES}, got {env!r}"
            )
        return env
    return ENGINE_BATCHED


# --------------------------------------------------------------------- #
# Eligibility
# --------------------------------------------------------------------- #
def batchable(machine) -> bool:
    """Whether the batched fast path is sound for this machine.

    The bulk path retires records whose only side effects are hit
    counters, fused-LRU stamps, and Accessed/dirty bits. That requires
    the same-page filter's preconditions (order-based replacement) plus
    listener-free, residency-free L1 structures — the L1 I-TLB, L1
    D-TLB, and L1D never carry predictors or residency tracking in any
    shipped configuration, but custom wiring falls back to scalar.
    """
    if not machine._page_filter:
        return False
    for struct in (machine.l1_itlb, machine.l1_dtlb, machine.l1d):
        if (
            struct._lru is None
            or struct.listener is not None
            or struct.residency is not None
        ):
            return False
    return True


def _trace_ok(trace) -> bool:
    return (
        len(trace) > 0
        and trace.pcs.dtype == np.uint64
        and trace.vaddrs.dtype == np.uint64
        and trace.writes.dtype == np.bool_
        and trace.gaps.dtype.kind in "iu"
    )


def run_batched(machine, trace):
    """Run ``trace`` on ``machine`` with the batched engine, falling back
    to the scalar loop when the fast path is not sound for this machine
    or trace. Bit-identical to :meth:`Machine.run_scalar` either way."""
    if not batchable(machine) or not _trace_ok(trace):
        machine.engine_stats = {"engine": ENGINE_SCALAR, "fallback": True}
        return machine.run_scalar(trace)
    return _BatchedRun(machine).run(trace)


# --------------------------------------------------------------------- #
# Mirrors
# --------------------------------------------------------------------- #
class _Mirror:
    """Numpy mirror of one set-associative structure's contents."""

    __slots__ = ("struct", "tags", "pfns", "set_mask", "assoc", "version")

    def __init__(self, struct, with_pfns: bool):
        self.struct = struct
        self.assoc = struct.assoc
        self.set_mask = np.uint64(struct.num_sets - 1)
        self.tags = np.full(
            (struct.num_sets, struct.assoc), _EMPTY, dtype=np.uint64
        )
        self.pfns = (
            np.zeros((struct.num_sets, struct.assoc), dtype=np.uint64)
            if with_pfns
            else None
        )
        self.version = -1

    def refresh(self) -> None:
        if self.version == self.struct.content_version:
            return
        self.tags.fill(_EMPTY)
        if self.pfns is None:
            self.struct.mirror_into(self.tags)
        else:
            self.struct.mirror_into(self.tags, self.pfns)
        self.version = self.struct.content_version


class _Window:
    """Precomputed per-record vectors for one probe window."""

    __slots__ = (
        "pc", "gap1", "ok",
        "ivpn", "iset", "iway",
        "dvpn", "dset", "dway",
        "cset", "cway",
    )


# --------------------------------------------------------------------- #
# The batched run
# --------------------------------------------------------------------- #
class _BatchedRun:
    """One trace execution under the batched engine."""

    def __init__(self, machine):
        self.m = machine
        self.im = _Mirror(machine.l1_itlb, with_pfns=True)
        self.dm = _Mirror(machine.l1_dtlb, with_pfns=True)
        self.cm = _Mirror(machine.l1d, with_pfns=False)
        self.sampler = machine._timeline
        self.interval = (
            self.sampler.interval if self.sampler is not None else 0
        )
        self.next_at = self.interval

    def run(self, trace):
        m = self.m
        pcs, vaddrs = trace.pcs, trace.vaddrs
        writes, gaps = trace.writes, trace.gaps
        n = len(pcs)
        i = 0
        window = _WINDOW_MIN
        burst = 0
        bulk_records = scalar_records = windows = 0
        while i < n:
            b = min(i + window, n)
            win = self._precompute(pcs, vaddrs, gaps, i, b)
            windows += 1
            full = bool(win.ok.all())
            prefix = (b - i) if full else int(np.argmin(win.ok))
            if prefix:
                self._apply(win, prefix, writes[i:i + prefix])
                bulk_records += prefix
                i += prefix
            if full:
                window = min(window * 2, _WINDOW_MAX)
                burst = 0
                continue
            # First non-guaranteed record: the ordinary per-access path.
            self._scalar_one(pcs, vaddrs, writes, gaps, i)
            i += 1
            scalar_records += 1
            if prefix >= _GOOD_PREFIX:
                burst = 0
            else:
                burst = min(burst * 2 if burst else _BURST_MIN, _BURST_MAX)
                span_end = min(i + burst, n)
                self._scalar_span(pcs, vaddrs, writes, gaps, i, span_end)
                scalar_records += span_end - i
                i = span_end
                window = _WINDOW_MIN
        sampler = self.sampler
        if sampler is not None and (
            not sampler.marks or sampler.marks[-1] != m.instructions
        ):
            sampler.sample(m.instructions, m.cycles)
        m.engine_stats = {
            "engine": ENGINE_BATCHED,
            "bulk_records": bulk_records,
            "scalar_records": scalar_records,
            "windows": windows,
        }
        return m.finalize(trace.name)

    # -- window probe --------------------------------------------------- #
    def _precompute(self, pcs, vaddrs, gaps, a, b) -> _Window:
        im, dm, cm = self.im, self.dm, self.cm
        im.refresh()
        dm.refresh()
        cm.refresh()
        win = _Window()
        pc = pcs[a:b]
        va = vaddrs[a:b]
        win.pc = pc
        win.gap1 = gaps[a:b].astype(np.int64) + 1

        ivpn = pc >> _PAGE_SHIFT_U
        iset = (ivpn & im.set_mask).astype(np.intp)
        imatch = im.tags[iset] == ivpn[:, None]
        ihit = imatch.any(axis=1)
        win.ivpn, win.iset, win.iway = ivpn, iset, imatch.argmax(axis=1)

        dvpn = va >> _PAGE_SHIFT_U
        dset = (dvpn & dm.set_mask).astype(np.intp)
        dmatch = dm.tags[dset] == dvpn[:, None]
        dhit = dmatch.any(axis=1)
        dway = dmatch.argmax(axis=1)
        win.dvpn, win.dset, win.dway = dvpn, dset, dway

        # PFN (and hence block) is garbage on D-miss rows, but those rows
        # are already excluded by ``ok``; the set index stays in range.
        pfn = dm.pfns[dset, dway]
        block = (pfn << _BLOCK_OFFSET_U) | (
            (va >> _BLOCK_SHIFT_U) & _BLOCK_IN_PAGE_U
        )
        cset = (block & cm.set_mask).astype(np.intp)
        cmatch = cm.tags[cset] == block[:, None]
        win.cset, win.cway = cset, cmatch.argmax(axis=1)

        win.ok = ihit & dhit & cmatch.any(axis=1)
        return win

    # -- bulk retirement ------------------------------------------------ #
    def _apply(self, win, k: int, writes_seg) -> None:
        """Retire the guaranteed-hit prefix ``[0, k)`` of ``win`` in bulk,
        splitting at timeline boundaries exactly like the scalar loop."""
        m = self.m
        gap1 = win.gap1[:k]
        icsum = np.add.accumulate(gap1) + m.instructions
        inc = gap1.astype(np.float64) * m._base_cpi
        # Seed the fold with the running total: addition is commutative
        # bit-for-bit, so inc[0] + cycles == cycles + inc[0].
        inc[0] += m.cycles
        ccsum = np.add.accumulate(inc)
        sampler = self.sampler
        if sampler is None:
            self._apply_span(win, 0, k, icsum, ccsum, writes_seg)
            return
        cur = 0
        while True:
            pos = int(np.searchsorted(icsum, self.next_at, side="left"))
            if pos >= k:
                if cur < k:
                    self._apply_span(win, cur, k, icsum, ccsum, writes_seg)
                return
            self._apply_span(win, cur, pos + 1, icsum, ccsum, writes_seg)
            sampler.sample(int(icsum[pos]), float(ccsum[pos]))
            self.next_at = int(icsum[pos]) + self.interval
            cur = pos + 1

    def _apply_span(self, win, s, e, icsum, ccsum, writes_seg) -> None:
        m = self.m
        k = e - s
        m.now += k
        m.instructions = int(icsum[e - 1])
        m.cycles = float(ccsum[e - 1])
        m.context.pc = int(win.pc[e - 1])

        last_iv, last_ie = self._touch_tlb(
            m.l1_itlb, m._itlb_stat,
            win.ivpn, win.iset, win.iway, s, e,
            m._last_ivpn, m._last_ientry,
        )
        m._last_ivpn, m._last_ientry = last_iv, last_ie
        last_dv, last_de = self._touch_tlb(
            m.l1_dtlb, m._dtlb_stat,
            win.dvpn, win.dset, win.dway, s, e,
            m._last_dvpn, m._last_dentry,
        )
        m._last_dvpn, m._last_dentry = last_dv, last_de
        self._touch_l1d(win, s, e, writes_seg)

    @staticmethod
    def _touch_tlb(tlb, stat, vpn, sets, ways, s, e, last_vpn, last_entry):
        """Apply one span's L1-TLB effects: hit counters for every record,
        LRU clock/stamps and Accessed bits only at page-*change* records —
        the same-page filter's exact semantics."""
        k = e - s
        stat["hits"] += k
        v = vpn[s:e]
        change = np.empty(k, dtype=bool)
        change[0] = last_vpn is None or v[0] != last_vpn
        if k > 1:
            np.not_equal(v[1:], v[:-1], out=change[1:])
        if not change[0] and last_entry is not None:
            # Carried filter hit: the scalar path marks the carried entry
            # object (even a stale one) accessed, and nothing else.
            last_entry.accessed = True
        entries = tlb._entries
        nch = int(change.sum())
        if nch:
            idx = np.flatnonzero(change)
            assoc = tlb.assoc
            key = sets[s:e][idx] * assoc + ways[s:e][idx]
            # Last change-ordinal per distinct (set, way): reverse-unique.
            uniq, rev_first = np.unique(key[::-1], return_index=True)
            lru = tlb._lru
            clock0 = lru._clock
            lru._clock = clock0 + nch
            stamps = tlb._lru_stamps
            last_ord = nch - 1
            for u, r in zip(uniq.tolist(), rev_first.tolist()):
                set_idx, way = divmod(u, assoc)
                stamps[set_idx][way] = clock0 + (last_ord - r) + 1
                entries[set_idx][way].accessed = True
            last_vpn = int(v[-1])
            last_entry = entries[int(sets[e - 1])][int(ways[e - 1])]
        return last_vpn, last_entry

    def _touch_l1d(self, win, s, e, writes_seg) -> None:
        """Apply one span's L1D effects: every record is a promoting hit
        (clock tick + stamp), writes dirty their line."""
        m = self.m
        k = e - s
        m.hierarchy._stat["accesses"] += k
        cache = m.l1d
        cache._stat["hits"] += k
        assoc = cache.assoc
        key = win.cset[s:e] * assoc + win.cway[s:e]
        uniq, rev_first = np.unique(key[::-1], return_index=True)
        lru = cache._lru
        clock0 = lru._clock
        lru._clock = clock0 + k
        stamps = cache._lru_stamps
        lines = cache._lines
        last_ord = k - 1
        for u, r in zip(uniq.tolist(), rev_first.tolist()):
            set_idx, way = divmod(u, assoc)
            stamps[set_idx][way] = clock0 + (last_ord - r) + 1
            lines[set_idx][way].accessed = True
        w = writes_seg[s:e]
        if w.any():
            for u in np.unique(key[w]).tolist():
                set_idx, way = divmod(u, assoc)
                lines[set_idx][way].dirty = True

    # -- residual / fallback scalar execution --------------------------- #
    def _scalar_one(self, pcs, vaddrs, writes, gaps, j) -> None:
        m = self.m
        m.access(int(pcs[j]), int(vaddrs[j]), bool(writes[j]), int(gaps[j]))
        if self.sampler is not None and m.instructions >= self.next_at:
            self.sampler.sample(m.instructions, m.cycles)
            self.next_at = m.instructions + self.interval

    def _scalar_span(self, pcs, vaddrs, writes, gaps, a, b) -> None:
        if a >= b:
            return
        m = self.m
        access = m.access
        records = zip(
            pcs[a:b].tolist(),
            vaddrs[a:b].tolist(),
            writes[a:b].tolist(),
            gaps[a:b].tolist(),
        )
        sampler = self.sampler
        if sampler is None:
            for pc, vaddr, is_write, gap in records:
                access(pc, vaddr, is_write, gap)
            return
        next_at = self.next_at
        interval = self.interval
        for pc, vaddr, is_write, gap in records:
            access(pc, vaddr, is_write, gap)
            if m.instructions >= next_at:
                sampler.sample(m.instructions, m.cycles)
                next_at = m.instructions + interval
        self.next_at = next_at
