"""Ground-truth reference structures for accuracy/coverage (Tables VI, VII).

The paper defines accuracy as "the fraction of correct predictions among
all predictions made" and coverage as "the fraction of correct predictions
over the total number of true (oracle) DOAs". Once a predictor bypasses an
entry, the real structure can no longer observe whether the entry *would*
have been DOA — so we simulate a tag-only *reference* copy of the structure
(same geometry, LRU, never bypassing) fed the same access stream. Each
fill-time prediction of the real predictor is attached to the reference's
current residency of that page/block; when the reference evicts the
residency, its true DOA status settles the prediction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.bitops import is_power_of_two
from repro.common.stats import Stats


class _RefEntry:
    __slots__ = ("key", "accessed", "pending_doa_predictions", "stamp")

    def __init__(self, key: int, stamp: int):
        self.key = key
        self.accessed = False
        self.pending_doa_predictions = 0
        self.stamp = stamp


class ReferenceStructure:
    """Tag-only LRU set-associative structure scoring DOA predictions."""

    def __init__(self, name: str, num_entries: int, assoc: int):
        if num_entries % assoc != 0:
            raise ValueError(f"{name}: entries not divisible by assoc")
        num_sets = num_entries // assoc
        if not is_power_of_two(num_sets):
            raise ValueError(f"{name}: num_sets must be a power of two")
        self.name = name
        self.num_sets = num_sets
        self.assoc = assoc
        self._set_mask = num_sets - 1
        self._sets: List[Dict[int, _RefEntry]] = [dict() for _ in range(num_sets)]
        self._clock = 0
        self._pending: Dict[int, int] = {}
        self.stats = Stats()

    # ------------------------------------------------------------------ #
    # Access stream
    # ------------------------------------------------------------------ #
    def access(self, key: int, now: int) -> bool:
        """One reference of ``key`` (every real lookup feeds this).

        Returns True on hit, False on miss (the reference fills on miss).
        The per-access decision stream and the ``hits``/``misses``
        counters make the reference usable as a differential oracle for
        the real never-bypassing structures (``tests/
        test_diff_reference.py``).
        """
        self._clock += 1
        entries = self._sets[key & self._set_mask]
        entry = entries.get(key)
        if entry is not None:
            entry.accessed = True
            entry.stamp = self._clock
            self.stats.add("hits")
            return True
        self.stats.add("misses")
        if len(entries) >= self.assoc:
            victim = min(entries.values(), key=lambda e: e.stamp)
            del entries[victim.key]
            self._settle(victim)
        entry = _RefEntry(key, self._clock)
        entries[key] = entry
        # Drain predictions recorded before this access arrived (a real
        # structure's fill hooks can fire inside the hierarchy, slightly
        # ahead of the reference feed).
        pending = self._pending.pop(key, 0)
        if pending:
            entry.pending_doa_predictions += pending
        return False

    def record_prediction(self, key: int, predicted_doa: bool) -> None:
        """Attach a real fill-time prediction to the current residency."""
        self.stats.add("predictions")
        if not predicted_doa:
            return
        self.stats.add("doa_predictions")
        entry = self._sets[key & self._set_mask].get(key)
        if entry is None:
            # The prediction fired before the reference saw the access;
            # buffer it for the imminent fill of ``key``.
            self._pending[key] = self._pending.get(key, 0) + 1
            return
        entry.pending_doa_predictions += 1

    def finalize(self) -> None:
        """Settle all still-resident residencies at end of simulation."""
        for entries in self._sets:
            for entry in entries.values():
                self._settle(entry)
            entries.clear()

    def _settle(self, entry: _RefEntry) -> None:
        truly_doa = not entry.accessed
        if truly_doa:
            self.stats.add("true_doas")
        if entry.pending_doa_predictions:
            if truly_doa:
                self.stats.add(
                    "correct_doa_predictions", entry.pending_doa_predictions
                )
            else:
                self.stats.add(
                    "wrong_doa_predictions", entry.pending_doa_predictions
                )
        self.stats.add("residencies")

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    @property
    def accuracy(self) -> Optional[float]:
        """Correct DOA predictions / all DOA predictions (None if none)."""
        made = self.stats.get("doa_predictions")
        if made == 0:
            return None
        return self.stats.get("correct_doa_predictions") / made

    @property
    def coverage(self) -> Optional[float]:
        """Correct DOA predictions / true DOAs (None if no true DOAs)."""
        true_doas = self.stats.get("true_doas")
        if true_doas == 0:
            return None
        return self.stats.get("correct_doa_predictions") / true_doas
