"""Run orchestration: simulate (workload, config) pairs with memoisation.

Every experiment in :mod:`repro.experiments` reduces to a matrix of
simulation runs, many of which repeat across experiments (every figure
normalises to the same LRU baseline, for instance). ``run_cached``
memoises on the frozen config + workload identity so each distinct run
executes once per process, and consults the persistent
:mod:`repro.sim.diskcache` (when enabled) so it executes once per
*machine*. :mod:`repro.sim.parallel` fans whole matrices out over a
process pool and primes this cache with the merged results.

The oracle configuration needs two passes (see
:mod:`repro.predictors.oracle`); the runner hides that detail.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import repro.sim.diskcache as diskcache
import repro.obs.telemetry as obs_telemetry
from repro.sim.config import LLC_PRED_ORACLE, TLB_PRED_ORACLE, SystemConfig
from repro.sim.machine import Machine
from repro.sim.results import SimResult
from repro.workloads.suite import DEFAULT_BUDGET, get_trace
from repro.workloads.trace import Trace

#: Default run seed (drives both the trace generator and, via
#: :func:`machine_seed_for`, the machine's frame allocator).
DEFAULT_SEED = 42

_run_cache: Dict[tuple, SimResult] = {}


def machine_seed_for(seed: int) -> int:
    """Machine (frame-allocator) seed derived from the run seed.

    Historically ``run_cached`` pinned the machine seed to 1 regardless of
    the run seed, so multi-seed studies only varied the trace while every
    run shared one physical frame layout. Deriving the machine seed from
    the run seed makes :func:`run_many` measure run-to-run variation end
    to end. The XOR constant maps the default run seed (42) to the
    historical machine seed (1), keeping published single-seed results
    bit-identical, while remaining a bijection over the other seeds.
    """
    return seed ^ (DEFAULT_SEED ^ 1)


def run_trace(
    trace: Trace, config: SystemConfig, seed: int = 1, telemetry=None
) -> SimResult:
    """Simulate ``trace`` on ``config`` (no caching).

    ``telemetry`` — optional :class:`repro.obs.Telemetry`; purely
    observational (results are bit-identical with and without it).
    """
    if (
        config.tlb_predictor == TLB_PRED_ORACLE
        or config.llc_predictor == LLC_PRED_ORACLE
    ):
        return _run_oracle(trace, config, seed, telemetry)
    machine = Machine(config, seed=seed, telemetry=telemetry)
    return machine.run(trace)


def _run_oracle(
    trace: Trace, config: SystemConfig, seed: int, telemetry=None
) -> SimResult:
    # Pass 1: baseline run recording per-fill DOA outcomes (TLB and/or
    # LLC side, depending on which predictor is the oracle).
    recorder_machine = Machine(config, seed=seed)
    recorder_machine.run(trace)
    tlb_outcomes = None
    if recorder_machine.oracle_recorder is not None:
        tlb_outcomes = recorder_machine.oracle_recorder.outcomes
    llc_outcomes = None
    if recorder_machine.llc_oracle_recorder is not None:
        llc_outcomes = recorder_machine.llc_oracle_recorder.outcomes
    # Pass 2: bypass exactly the recorded DOA fills. Telemetry observes
    # only this, the measured pass.
    machine = Machine(
        config,
        oracle_outcomes=tlb_outcomes,
        llc_oracle_outcomes=llc_outcomes,
        seed=seed,
        telemetry=telemetry,
    )
    return machine.run(trace)


def run_cached(
    workload: str,
    config: SystemConfig,
    budget: int = DEFAULT_BUDGET,
    seed: int = DEFAULT_SEED,
    telemetry=None,
) -> SimResult:
    """Simulate a suite workload under ``config``, memoised process-wide
    and (when the disk cache is enabled) across processes.

    ``telemetry`` — an explicit :class:`repro.obs.Telemetry` bundle forces
    a live simulation (cached aggregates carry no dynamics); the result is
    still stored, since telemetry never perturbs it. When ``telemetry`` is
    None but the process-wide auto default is on (the experiments CLI's
    ``--obs`` flag), cache *misses* are simulated with a fresh bundle and
    exported to the configured sink; cache hits stay hits.
    """
    if telemetry is not None:
        return _run_observed(workload, config, budget, seed, telemetry, None)
    key = (workload, budget, seed, config)
    result = _run_cache.get(key)
    if result is None:
        result = diskcache.load_result(workload, config, budget, seed)
        if result is None:
            auto, sink = obs_telemetry.build_auto()
            if auto is not None:
                return _run_observed(
                    workload, config, budget, seed, auto, sink
                )
            trace = get_trace(workload, budget, seed)
            result = run_trace(trace, config, seed=machine_seed_for(seed))
            diskcache.store_result(workload, config, budget, seed, result)
        _run_cache[key] = result
    return result


def _run_observed(
    workload: str,
    config: SystemConfig,
    budget: int,
    seed: int,
    telemetry,
    sink: Optional[str],
) -> SimResult:
    """Simulate with telemetry attached, prime the caches, and export the
    run's artifacts when a sink directory is configured."""
    trace = get_trace(workload, budget, seed)
    start = time.perf_counter()
    result = run_trace(
        trace, config, seed=machine_seed_for(seed), telemetry=telemetry
    )
    telemetry.wall_time = time.perf_counter() - start
    _run_cache[(workload, budget, seed, config)] = result
    diskcache.store_result(workload, config, budget, seed, result)
    if sink is not None:
        from repro.obs.export import export_run

        export_run(
            sink,
            workload=workload,
            config=config,
            budget=budget,
            seed=seed,
            result=result,
            telemetry=telemetry,
        )
    return result


def cached_result(
    workload: str,
    config: SystemConfig,
    budget: int = DEFAULT_BUDGET,
    seed: int = DEFAULT_SEED,
) -> SimResult:
    """Return the memoised/disk-cached result without simulating, or None."""
    result = _run_cache.get((workload, budget, seed, config))
    if result is None:
        result = diskcache.load_result(workload, config, budget, seed)
    return result


def prime_run_cache(
    workload: str,
    config: SystemConfig,
    budget: int,
    seed: int,
    result: SimResult,
    persist: bool = True,
) -> None:
    """Insert an externally computed result (e.g. from a pool worker) so
    downstream ``run_cached`` calls hit in-process. ``persist=False``
    skips the disk write (for results that came *from* the disk cache)."""
    _run_cache[(workload, budget, seed, config)] = result
    if persist:
        diskcache.store_result(workload, config, budget, seed, result)


def forget_run(
    workload: str, config: SystemConfig, budget: int, seed: int
) -> None:
    """Evict one run from the in-process memo (not from disk).

    Fault injection uses this so a retried cell re-reads the disk entry
    it just damaged instead of replaying the in-memory copy."""
    _run_cache.pop((workload, budget, seed, config), None)


def clear_run_cache() -> None:
    _run_cache.clear()


def baseline_and(
    workload: str,
    config: SystemConfig,
    budget: int = DEFAULT_BUDGET,
) -> tuple:
    """Convenience: ``(baseline_result, config_result)`` for one workload,
    where the baseline is ``config`` with both predictors disabled."""
    base_cfg = config.with_predictors(tlb="none", llc="none")
    return (
        run_cached(workload, base_cfg, budget),
        run_cached(workload, config, budget),
    )


def run_many(
    workload: str,
    config: SystemConfig,
    seeds,
    budget: int = DEFAULT_BUDGET,
    jobs: int = None,
) -> list:
    """Run one (workload, config) pair over several trace seeds.

    Returns the list of :class:`SimResult`, one per seed — the raw
    material for run-to-run-variation statistics (see
    :func:`summarize_runs`). Each seed varies the generated trace *and*
    the machine's frame layout (see :func:`machine_seed_for`). With
    ``jobs > 1`` the seeds fan out over a process pool."""
    seeds = list(seeds)
    if jobs is not None and jobs > 1:
        from repro.sim.parallel import RunRequest, run_matrix

        requests = [
            RunRequest(workload, config, budget, seed=s) for s in seeds
        ]
        run_matrix(requests, jobs=jobs)
    return [run_cached(workload, config, budget, seed=s) for s in seeds]


def summarize_runs(results) -> dict:
    """Mean/min/max of the headline metrics over multi-seed runs."""
    if not results:
        raise ValueError("summarize_runs needs at least one result")

    def stats(values):
        values = list(values)
        return {
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }

    return {
        "ipc": stats(r.ipc for r in results),
        "llt_mpki": stats(r.llt_mpki for r in results),
        "llc_mpki": stats(r.llc_mpki for r in results),
        "runs": len(results),
    }
