"""Deterministic fault injection for the run-matrix executor.

A :class:`FaultPlan` describes, up front and reproducibly, which matrix
cells fail and how: a worker is *killed* (hard ``os._exit`` inside a pool
worker, an :class:`InjectedFault` in serial mode), *hangs* (sleeps past
the supervisor's per-run timeout), or *corrupts* its just-written
``.repro_cache/`` entry before crashing (a torn write at the worst
moment). Plans are frozen dataclasses of tuples — hashable, picklable,
safe to ship to pool workers — and every decision is a pure function of
``(workload, config_name, seed, attempt)``, so a faulted sweep is as
reproducible as a clean one.

The executor (:func:`repro.sim.parallel.run_matrix`) threads the plan to
its workers; production sweeps simply pass no plan and none of this code
runs. Tests use plans to prove that retries, timeouts, and ``--resume``
recover bit-identical results (see ``tests/test_sim_faults.py``).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

#: A worker dies mid-cell (hard process exit in a pool, raise in serial).
KILL = "kill"
#: A worker stalls (sleeps) so the per-run timeout fires.
HANG = "hang"
#: A worker stores its result, tears the cache entry, then crashes.
CORRUPT = "corrupt"

FAULT_KINDS = (KILL, HANG, CORRUPT)

#: Exit status used by hard-killed pool workers (recognisable in waitpid).
KILL_EXIT_STATUS = 87


class InjectedFault(RuntimeError):
    """A deliberately injected worker failure (retryable by design)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure: *which* cells, *what* happens, *when*.

    ``config_name``/``seed`` of None match any cell of ``workload``.
    The fault fires while ``attempt <= attempts`` — so ``attempts=1``
    fails once and then recovers, while ``attempts >= max_attempts``
    makes the cell permanently fatal.
    """

    kind: str
    workload: str
    config_name: Optional[str] = None
    seed: Optional[int] = None
    attempts: int = 1
    #: KILL only: hard-exit the pool worker process (exercises pool
    #: breakage) instead of raising an in-band exception.
    hard: bool = True
    #: HANG only: how long the worker stalls.
    hang_seconds: float = 30.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def matches(
        self, workload: str, config_name: str, seed: int, attempt: int
    ) -> bool:
        return (
            self.workload == workload
            and (self.config_name is None or self.config_name == config_name)
            and (self.seed is None or self.seed == seed)
            and attempt <= self.attempts
        )


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of injected failures for one matrix execution."""

    specs: Tuple[FaultSpec, ...] = ()

    def spec_for(
        self, workload: str, config_name: str, seed: int, attempt: int
    ) -> Optional[FaultSpec]:
        """The first spec matching this cell/attempt, or None."""
        for spec in self.specs:
            if spec.matches(workload, config_name, seed, attempt):
                return spec
        return None

    def __bool__(self) -> bool:
        return bool(self.specs)

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def kill(cls, workload: str, **kw) -> "FaultPlan":
        return cls((FaultSpec(KILL, workload, **kw),))

    @classmethod
    def hang(cls, workload: str, seconds: float = 30.0, **kw) -> "FaultPlan":
        return cls((FaultSpec(HANG, workload, hang_seconds=seconds, **kw),))

    @classmethod
    def corrupt(cls, workload: str, **kw) -> "FaultPlan":
        return cls((FaultSpec(CORRUPT, workload, **kw),))

    def plus(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.specs + other.specs)

    @classmethod
    def random(
        cls,
        cells: Sequence[Tuple[str, str, int]],
        seed: int,
        rate: float = 0.25,
        kinds: Sequence[str] = (KILL,),
        hard: bool = False,
    ) -> "FaultPlan":
        """A seeded random plan over ``(workload, config_name, seed)``
        cells: each cell independently fails with probability ``rate``,
        with a kind drawn from ``kinds``. Same seed, same plan — the
        degraded execution is exactly replayable."""
        rng = random.Random(seed)
        specs = []
        for workload, config_name, cell_seed in cells:
            if rng.random() < rate:
                specs.append(
                    replace(
                        FaultSpec(
                            rng.choice(list(kinds)),
                            workload,
                            config_name=config_name,
                            seed=cell_seed,
                        ),
                        hard=hard,
                    )
                )
        return cls(tuple(specs))


# --------------------------------------------------------------------- #
# Worker-side application
# --------------------------------------------------------------------- #
def apply_pre_run(spec: Optional[FaultSpec], in_pool_worker: bool) -> None:
    """Apply the pre-simulation half of a fault (KILL / HANG).

    Hard kills exit the worker process outright, breaking the pool the
    way a real crash (OOM kill, segfault) would; soft kills and serial
    mode raise :class:`InjectedFault`, which travels back in-band.
    """
    if spec is None:
        return
    if spec.kind == KILL:
        if spec.hard and in_pool_worker:
            os._exit(KILL_EXIT_STATUS)
        raise InjectedFault(
            f"injected kill: {spec.workload} (attempt<= {spec.attempts})"
        )
    if spec.kind == HANG:
        time.sleep(spec.hang_seconds)


def apply_post_store(spec: Optional[FaultSpec], request) -> None:
    """Apply the post-store half of a fault (CORRUPT).

    Runs after the worker computed and persisted its result: the cache
    entry is truncated mid-payload — a torn write — and the worker then
    crashes, so the retry must *detect* the damage and recompute rather
    than replay the mangled entry.
    """
    if spec is None or spec.kind != CORRUPT:
        return
    import repro.sim.diskcache as diskcache
    import repro.sim.runner as runner

    diskcache.tear_result_entry(
        request.workload, request.config, request.budget, request.seed
    )
    # Drop the in-process memo as a real crash would, so the retry reads
    # (and must reject) the torn disk entry instead of replaying memory.
    runner.forget_run(
        request.workload, request.config, request.budget, request.seed
    )
    raise InjectedFault(
        f"injected crash after torn cache write: {spec.workload}"
    )
