"""Persistent on-disk cache for simulation results and traces.

The in-process memo caches (:data:`repro.sim.runner._run_cache`,
:data:`repro.workloads.suite._trace_cache`) die with the process, so a
fresh ``python -m repro.experiments`` invocation re-simulates the same
LRU baseline for every figure. This module content-addresses

* :class:`~repro.sim.results.SimResult` by
  ``(config, workload, budget, seed, schema version)`` — stored as JSON
  via ``SimResult.to_dict``;
* :class:`~repro.workloads.trace.Trace` by
  ``(workload, budget, seed, schema version)`` — stored as ``.npz`` via
  the existing ``Trace.save``/``Trace.load``;

under a cache directory (default ``.repro_cache/``, override with the
``REPRO_CACHE_DIR`` environment variable), so repeated invocations skip
simulation and trace generation entirely.

The cache is *opt-in at the library level*: nothing is read or written
until :func:`enable` is called (the experiment CLI enables it unless
``--no-cache`` is passed; setting ``REPRO_CACHE_DIR`` enables it
everywhere). Keys are content hashes of the full frozen
:class:`~repro.sim.config.SystemConfig` repr, so any config field change
misses cleanly. :data:`CACHE_SCHEMA_VERSION` must be bumped whenever
simulator semantics change, invalidating all prior entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.workloads.trace import Trace

#: Bump on any change to simulator semantics or the on-disk layout; old
#: entries become unreachable (different key) rather than wrong.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

_enabled: bool = bool(os.environ.get("REPRO_CACHE_DIR"))
_cache_dir: Optional[Path] = None


# ---------------------------------------------------------------------- #
# Enable / disable / configure
# ---------------------------------------------------------------------- #
def enable(directory=None) -> Path:
    """Turn the disk cache on, optionally pinning its directory."""
    global _enabled, _cache_dir
    _enabled = True
    if directory is not None:
        _cache_dir = Path(directory)
    return cache_dir()


def disable() -> None:
    """Turn the disk cache off (existing files are left in place)."""
    global _enabled, _cache_dir
    _enabled = False
    _cache_dir = None


def is_enabled() -> bool:
    return _enabled


def cache_dir() -> Path:
    """The active cache directory (without creating it)."""
    if _cache_dir is not None:
        return _cache_dir
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


# ---------------------------------------------------------------------- #
# Content addressing
# ---------------------------------------------------------------------- #
def result_key(
    workload: str, config: SystemConfig, budget: int, seed: int
) -> str:
    """Content hash identifying one simulation run.

    The frozen dataclass repr covers every config field (including nested
    geometry/timing dataclasses), so any parameter change changes the key.
    """
    text = (
        f"schema={CACHE_SCHEMA_VERSION}|workload={workload}|"
        f"budget={budget}|seed={seed}|config={config!r}"
    )
    return hashlib.sha256(text.encode()).hexdigest()


def trace_key(workload: str, budget: int, seed: int) -> str:
    """Content hash identifying one generated trace."""
    text = (
        f"schema={CACHE_SCHEMA_VERSION}|trace|workload={workload}|"
        f"budget={budget}|seed={seed}"
    )
    return hashlib.sha256(text.encode()).hexdigest()


def _result_path(key: str) -> Path:
    return cache_dir() / "results" / f"{key}.json"


def _trace_path(key: str) -> Path:
    return cache_dir() / "traces" / f"{key}.npz"


def _write_atomic(path: Path, write_fn) -> None:
    """Write via a temp file + rename so concurrent workers never observe
    a partially written entry (renames are atomic within a directory)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            write_fn(f)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


# ---------------------------------------------------------------------- #
# SimResult store
# ---------------------------------------------------------------------- #
def load_result(
    workload: str, config: SystemConfig, budget: int, seed: int
) -> Optional[SimResult]:
    """Fetch a cached result, or None on miss / disabled cache."""
    if not _enabled:
        return None
    path = _result_path(result_key(workload, config, budget, seed))
    if not path.exists():
        return None
    try:
        with open(path) as f:
            return SimResult.from_dict(json.load(f))
    except (ValueError, OSError, TypeError):
        # A corrupt or stale entry is a miss, not an error.
        return None


def store_result(
    workload: str, config: SystemConfig, budget: int, seed: int,
    result: SimResult,
) -> None:
    """Persist a result (no-op when the cache is disabled)."""
    if not _enabled:
        return
    path = _result_path(result_key(workload, config, budget, seed))
    payload = json.dumps(result.to_dict(), sort_keys=True).encode()
    _write_atomic(path, lambda f: f.write(payload))


# ---------------------------------------------------------------------- #
# Trace store
# ---------------------------------------------------------------------- #
def load_trace(workload: str, budget: int, seed: int) -> Optional[Trace]:
    """Fetch a cached trace, or None on miss / disabled cache."""
    if not _enabled:
        return None
    path = _trace_path(trace_key(workload, budget, seed))
    if not path.exists():
        return None
    try:
        return Trace.load(path)
    except (ValueError, OSError, KeyError):
        return None


def store_trace(workload: str, budget: int, seed: int, trace: Trace) -> None:
    """Persist a trace as .npz (no-op when the cache is disabled)."""
    if not _enabled:
        return
    path = _trace_path(trace_key(workload, budget, seed))
    _write_atomic(path, trace.save)


# ---------------------------------------------------------------------- #
# Maintenance
# ---------------------------------------------------------------------- #
def purge() -> int:
    """Delete every cache entry; returns the number of files removed."""
    removed = 0
    base = cache_dir()
    for sub in ("results", "traces"):
        d = base / sub
        if not d.is_dir():
            continue
        for path in d.iterdir():
            if path.suffix in (".json", ".npz"):
                path.unlink()
                removed += 1
    return removed


def stats() -> dict:
    """Entry counts and on-disk footprint of the active cache directory."""
    base = cache_dir()
    out = {"dir": str(base), "results": 0, "traces": 0, "bytes": 0}
    for sub in ("results", "traces"):
        d = base / sub
        if not d.is_dir():
            continue
        for path in d.iterdir():
            if path.is_file():
                out[sub] += 1
                out["bytes"] += path.stat().st_size
    return out
