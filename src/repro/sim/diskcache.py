"""Persistent on-disk cache for simulation results and traces.

The in-process memo caches (:data:`repro.sim.runner._run_cache`,
:data:`repro.workloads.suite._trace_cache`) die with the process, so a
fresh ``python -m repro.experiments`` invocation re-simulates the same
LRU baseline for every figure. This module content-addresses

* :class:`~repro.sim.results.SimResult` by
  ``(config, workload, budget, seed, schema version)`` — stored as a
  checksummed JSON envelope around ``SimResult.to_dict``;
* :class:`~repro.workloads.trace.Trace` by
  ``(workload, budget, seed, schema version)`` — stored as ``.npz`` via
  the existing ``Trace.save``/``Trace.load`` plus a ``.sha256`` sidecar;

under a cache directory (default ``.repro_cache/``, override with the
``REPRO_CACHE_DIR`` environment variable), so repeated invocations skip
simulation and trace generation entirely.

The cache is *opt-in at the library level*: nothing is read or written
until :func:`enable` is called (the experiment CLI enables it unless
``--no-cache`` is passed; setting ``REPRO_CACHE_DIR`` enables it
everywhere). Keys are content hashes of the full frozen
:class:`~repro.sim.config.SystemConfig` repr, so any config field change
misses cleanly. :data:`CACHE_SCHEMA_VERSION` must be bumped whenever
simulator semantics change, invalidating all prior entries.

Integrity (schema 2): every entry carries a SHA-256 content checksum —
inside the JSON envelope for results, in a sidecar file for traces.
Loads verify the checksum; a truncated, bit-flipped, or torn entry is
*quarantined* (moved under ``quarantine/`` for post-mortem), surfaced as
an :data:`~repro.obs.events.EV_CACHE_CORRUPT` harness event, and
reported as a miss so the caller recomputes. A corrupt entry can cost a
re-simulation but can never replay a stale or mangled result.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

try:  # POSIX advisory locks; Windows falls back to atomic-rename only.
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None

from repro.obs import harness as obs_harness
from repro.obs.events import EV_CACHE_CORRUPT
from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.workloads.trace import Trace

#: Bump on any change to simulator semantics or the on-disk layout; old
#: entries become unreachable (different key) rather than wrong.
#: 2: checksummed result envelopes + trace sidecars (fault-tolerant
#: executor); see :func:`migrate` for reclaiming schema-1 files.
CACHE_SCHEMA_VERSION = 2

#: Magic marker identifying a schema-2 result envelope.
RESULT_MAGIC = "repro-result"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

_enabled: bool = bool(os.environ.get("REPRO_CACHE_DIR"))
_cache_dir: Optional[Path] = None


# ---------------------------------------------------------------------- #
# Enable / disable / configure
# ---------------------------------------------------------------------- #
def enable(directory=None) -> Path:
    """Turn the disk cache on, optionally pinning its directory."""
    global _enabled, _cache_dir
    _enabled = True
    if directory is not None:
        _cache_dir = Path(directory)
    return cache_dir()


def disable() -> None:
    """Turn the disk cache off (existing files are left in place)."""
    global _enabled, _cache_dir
    _enabled = False
    _cache_dir = None


def is_enabled() -> bool:
    return _enabled


def cache_dir() -> Path:
    """The active cache directory (without creating it)."""
    if _cache_dir is not None:
        return _cache_dir
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


# ---------------------------------------------------------------------- #
# Content addressing
# ---------------------------------------------------------------------- #
def result_key(
    workload: str, config: SystemConfig, budget: int, seed: int
) -> str:
    """Content hash identifying one simulation run.

    The frozen dataclass repr covers every config field (including nested
    geometry/timing dataclasses), so any parameter change changes the key.
    """
    text = (
        f"schema={CACHE_SCHEMA_VERSION}|workload={workload}|"
        f"budget={budget}|seed={seed}|config={config!r}"
    )
    return hashlib.sha256(text.encode()).hexdigest()


def trace_key(workload: str, budget: int, seed: int) -> str:
    """Content hash identifying one generated trace."""
    text = (
        f"schema={CACHE_SCHEMA_VERSION}|trace|workload={workload}|"
        f"budget={budget}|seed={seed}"
    )
    return hashlib.sha256(text.encode()).hexdigest()


def _result_path(key: str) -> Path:
    return cache_dir() / "results" / f"{key}.json"


def _trace_path(key: str) -> Path:
    return cache_dir() / "traces" / f"{key}.npz"


def _trace_sidecar(path: Path) -> Path:
    return path.with_suffix(".npz.sha256")


def _write_atomic(path: Path, write_fn) -> None:
    """Write via a temp file + rename so concurrent workers never observe
    a partially written entry (renames are atomic within a directory)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            write_fn(f)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


@contextmanager
def entry_lock(key: str):
    """Per-key advisory lock serialising publishers of one cache entry.

    Atomic rename already guarantees readers never see a torn envelope;
    this lock additionally serialises concurrent *writers* of the same
    key — two coalescing misses racing through ``store_result`` (server
    threads, pool workers, separate processes sharing one cache) take
    turns, and the loser sees the winner's file and skips its redundant
    republish. Lock files live under ``<cache>/locks/`` and are tiny and
    reusable; they are cleaned by :func:`purge`. No-op when the cache is
    disabled or the platform has no ``fcntl`` (atomic rename still keeps
    readers safe there).
    """
    if not _enabled or fcntl is None:
        yield
        return
    path = cache_dir() / "locks" / f"{key}.lock"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


# ---------------------------------------------------------------------- #
# Corruption handling
# ---------------------------------------------------------------------- #
def quarantine_dir() -> Path:
    return cache_dir() / "quarantine"


def _quarantine(path: Path, kind: str, reason: str) -> None:
    """Move a failed entry aside (never delete: post-mortem material) and
    surface the corruption as a harness event."""
    target = quarantine_dir() / path.name
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, target)
    except OSError:
        # Racing workers may quarantine the same entry; losing the race
        # (or an unwritable cache) must not mask the corruption report.
        pass
    obs_harness.record(EV_CACHE_CORRUPT, kind, str(path), reason)


# ---------------------------------------------------------------------- #
# SimResult store
# ---------------------------------------------------------------------- #
def _result_payload_bytes(data: dict) -> bytes:
    """Canonical serialised form of a result payload (what is hashed)."""
    return json.dumps(data, sort_keys=True).encode()


def _load_payload(path: Path) -> Optional[dict]:
    """Integrity-checked payload dict of one result envelope, or None
    (quarantining the entry) on any failure."""
    try:
        with open(path, "rb") as f:
            envelope = json.loads(f.read().decode())
    except (ValueError, OSError):
        _quarantine(path, "result", "unparseable envelope")
        return None
    if not isinstance(envelope, dict) or envelope.get("magic") != RESULT_MAGIC:
        _quarantine(path, "result", "missing envelope magic")
        return None
    if envelope.get("schema") != CACHE_SCHEMA_VERSION:
        _quarantine(
            path, "result", f"schema {envelope.get('schema')!r} != "
            f"{CACHE_SCHEMA_VERSION}"
        )
        return None
    payload = envelope.get("payload")
    digest = hashlib.sha256(_result_payload_bytes(payload)).hexdigest()
    if digest != envelope.get("sha256"):
        _quarantine(path, "result", "payload checksum mismatch")
        return None
    return payload


def load_payload(key: str) -> Optional[dict]:
    """Fetch a stored result payload by raw content key (read-through
    lookup for the server's ``GET /result/<key>``), or None on miss,
    disabled cache, or a quarantined integrity failure."""
    if not _enabled:
        return None
    path = _result_path(key)
    if not path.exists():
        return None
    return _load_payload(path)


def load_result(
    workload: str, config: SystemConfig, budget: int, seed: int
) -> Optional[SimResult]:
    """Fetch a cached result, or None on miss / disabled cache.

    Entries failing any integrity check — unparseable, missing envelope
    fields, schema mismatch, checksum mismatch — are quarantined and
    reported as a miss so the caller recomputes.
    """
    if not _enabled:
        return None
    path = _result_path(result_key(workload, config, budget, seed))
    if not path.exists():
        return None
    payload = _load_payload(path)
    if payload is None:
        return None
    try:
        return SimResult.from_dict(payload)
    except (ValueError, TypeError):
        _quarantine(path, "result", "payload does not decode to SimResult")
        return None


def store_result(
    workload: str, config: SystemConfig, budget: int, seed: int,
    result: SimResult,
) -> None:
    """Persist a result inside a checksummed envelope (no-op when the
    cache is disabled).

    Publication is atomic (tmp file + rename) and serialised per key via
    :func:`entry_lock`; a writer that takes the lock and finds the entry
    already published — the other side of a coalesced miss got there
    first — skips its redundant rewrite (results are deterministic in
    their key, so the existing entry is byte-equal by contract).
    """
    if not _enabled:
        return
    key = result_key(workload, config, budget, seed)
    path = _result_path(key)
    with entry_lock(key):
        if path.exists():
            return
        data = result.to_dict()
        envelope = {
            "magic": RESULT_MAGIC,
            "schema": CACHE_SCHEMA_VERSION,
            "sha256": hashlib.sha256(_result_payload_bytes(data)).hexdigest(),
            "payload": data,
        }
        payload = json.dumps(envelope, sort_keys=True).encode()
        _write_atomic(path, lambda f: f.write(payload))


def tear_result_entry(
    workload: str, config: SystemConfig, budget: int, seed: int
) -> Optional[Path]:
    """Truncate a stored result mid-payload (fault injection only).

    Simulates the torn write a crash can leave behind *despite* the
    atomic-rename discipline (e.g. a power loss after rename but before
    the data blocks hit disk). Returns the damaged path, or None when
    there is nothing to damage.
    """
    if not _enabled:
        return None
    path = _result_path(result_key(workload, config, budget, seed))
    if not path.exists():
        return None
    size = path.stat().st_size
    with open(path, "r+b") as f:
        f.truncate(max(1, size // 2))
    return path


# ---------------------------------------------------------------------- #
# Trace store
# ---------------------------------------------------------------------- #
def load_trace(workload: str, budget: int, seed: int) -> Optional[Trace]:
    """Fetch a cached trace, or None on miss / disabled cache.

    The ``.npz`` bytes must match the ``.sha256`` sidecar written with
    them; a missing sidecar or a mismatch quarantines the pair.
    """
    if not _enabled:
        return None
    path = _trace_path(trace_key(workload, budget, seed))
    if not path.exists():
        return None
    sidecar = _trace_sidecar(path)
    try:
        expected = sidecar.read_text().strip()
    except OSError:
        _quarantine(path, "trace", "missing checksum sidecar")
        return None
    actual = hashlib.sha256(path.read_bytes()).hexdigest()
    if actual != expected:
        _quarantine(path, "trace", "npz checksum mismatch")
        try:
            sidecar.unlink()
        except OSError:
            pass
        return None
    try:
        return Trace.load(path)
    except (ValueError, OSError, KeyError):
        _quarantine(path, "trace", "npz does not decode to Trace")
        return None


def store_trace(workload: str, budget: int, seed: int, trace: Trace) -> None:
    """Persist a trace as .npz + checksum sidecar (no-op when disabled).

    The sidecar is written *after* the npz: a crash between the two
    leaves an npz without sidecar, which loads treat as corrupt — never
    an unverifiable entry."""
    if not _enabled:
        return
    key = trace_key(workload, budget, seed)
    path = _trace_path(key)
    with entry_lock(key):
        if path.exists() and _trace_sidecar(path).exists():
            return
        _write_atomic(path, trace.save)
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        _write_atomic(
            _trace_sidecar(path), lambda f: f.write(digest.encode())
        )


# ---------------------------------------------------------------------- #
# Maintenance
# ---------------------------------------------------------------------- #
def purge() -> int:
    """Delete every cache entry (results, traces, sidecars, checkpoints,
    quarantined files); returns the number of files removed."""
    removed = 0
    base = cache_dir()
    for sub in ("results", "traces", "checkpoints", "quarantine", "locks"):
        d = base / sub
        if not d.is_dir():
            continue
        for path in d.iterdir():
            if path.suffix in (".json", ".npz", ".sha256", ".jsonl", ".lock"):
                path.unlink()
                removed += 1
    return removed


def verify() -> dict:
    """Integrity-scan every entry in the active cache directory.

    Loads each result envelope and trace checksum without touching the
    in-process caches; corrupt entries are quarantined exactly as a
    normal load would. Returns counts: ``{"results_ok", "results_bad",
    "traces_ok", "traces_bad"}``.
    """
    base = cache_dir()
    report = {"results_ok": 0, "results_bad": 0,
              "traces_ok": 0, "traces_bad": 0}
    results = base / "results"
    if results.is_dir():
        for path in sorted(results.glob("*.json")):
            ok = False
            try:
                envelope = json.loads(path.read_bytes().decode())
                payload = envelope.get("payload")
                ok = (
                    isinstance(envelope, dict)
                    and envelope.get("magic") == RESULT_MAGIC
                    and envelope.get("schema") == CACHE_SCHEMA_VERSION
                    and hashlib.sha256(
                        _result_payload_bytes(payload)
                    ).hexdigest() == envelope.get("sha256")
                )
            except (ValueError, OSError):
                ok = False
            if ok:
                report["results_ok"] += 1
            else:
                _quarantine(path, "result", "verify scan failure")
                report["results_bad"] += 1
    traces = base / "traces"
    if traces.is_dir():
        for path in sorted(traces.glob("*.npz")):
            sidecar = _trace_sidecar(path)
            ok = False
            try:
                ok = (
                    hashlib.sha256(path.read_bytes()).hexdigest()
                    == sidecar.read_text().strip()
                )
            except OSError:
                ok = False
            if ok:
                report["traces_ok"] += 1
            else:
                _quarantine(path, "trace", "verify scan failure")
                report["traces_bad"] += 1
    return report


def migrate() -> dict:
    """Reclaim space held by pre-schema-2 entries.

    Schema-1 files are keyed under schema-1 hashes, so after the bump
    they are unreachable (never *wrong* — just dead weight), and their
    raw-JSON layout carries no checksum to re-verify. They cannot be
    re-keyed in place (the key hashes the full config repr, which the
    stored payload does not contain), so migration means deletion: any
    ``results/*.json`` without a valid schema-2 envelope and any
    ``traces/*.npz`` without a sidecar is removed. Returns
    ``{"removed_results", "removed_traces"}``.
    """
    base = cache_dir()
    report = {"removed_results": 0, "removed_traces": 0}
    results = base / "results"
    if results.is_dir():
        for path in sorted(results.glob("*.json")):
            legacy = True
            try:
                envelope = json.loads(path.read_bytes().decode())
                legacy = not (
                    isinstance(envelope, dict)
                    and envelope.get("magic") == RESULT_MAGIC
                    and envelope.get("schema") == CACHE_SCHEMA_VERSION
                )
            except (ValueError, OSError):
                legacy = True
            if legacy:
                path.unlink()
                report["removed_results"] += 1
    traces = base / "traces"
    if traces.is_dir():
        for path in sorted(traces.glob("*.npz")):
            if not _trace_sidecar(path).exists():
                path.unlink()
                report["removed_traces"] += 1
    return report


def stats() -> dict:
    """Entry counts and on-disk footprint of the active cache directory."""
    base = cache_dir()
    out = {"dir": str(base), "results": 0, "traces": 0, "bytes": 0}
    entry_suffix = {"results": ".json", "traces": ".npz"}
    for sub in ("results", "traces"):
        d = base / sub
        if not d.is_dir():
            continue
        for path in d.iterdir():
            if path.is_file():
                # Sidecars contribute bytes but are not entries.
                if path.suffix == entry_suffix[sub]:
                    out[sub] += 1
                out["bytes"] += path.stat().st_size
    return out
