"""System configuration: Table I parameters plus predictor selection.

Two profiles ship with the library:

* :func:`paper_config` — the exact Table I machine (1024-entry L2 TLB,
  2 MB 16-way LLC, ...). Faithful but slow in pure Python.
* :func:`fast_config` — every capacity divided by 8, associativities and
  latency ratios preserved, predictor tables scaled by the paper's own
  per-entry ratios (pHIST : LLT entries = 1:1, bHIST : LLC blocks = 1:8).
  All experiments use this profile by default; DESIGN.md §5 documents the
  scaling discipline.

Configs are frozen dataclasses so they can key run-memoization caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: TLB-side predictor choices.
TLB_PRED_NONE = "none"
TLB_PRED_DPPRED = "dppred"
TLB_PRED_DPPRED_NOSHADOW = "dppred_sh"
TLB_PRED_DPPRED_DEMOTE = "dppred_demote"
TLB_PRED_SHIP = "ship"
TLB_PRED_AIP = "aip"
TLB_PRED_ORACLE = "oracle"
TLB_PRED_PREFETCH = "distance_prefetch"
TLB_PRED_LEEWAY = "leeway"
TLB_PRED_PERCEPTRON = "perceptron"

#: LLC-side predictor choices.
LLC_PRED_NONE = "none"
LLC_PRED_CBPRED = "cbpred"
LLC_PRED_CBPRED_NOPFQ = "cbpred_nopfq"
LLC_PRED_SHIP = "ship"
LLC_PRED_AIP = "aip"
LLC_PRED_ORACLE = "oracle"
LLC_PRED_LEEWAY = "leeway"
LLC_PRED_PERCEPTRON = "perceptron"

TLB_PREDICTORS = (
    TLB_PRED_NONE,
    TLB_PRED_DPPRED,
    TLB_PRED_DPPRED_NOSHADOW,
    TLB_PRED_DPPRED_DEMOTE,
    TLB_PRED_SHIP,
    TLB_PRED_AIP,
    TLB_PRED_ORACLE,
    TLB_PRED_PREFETCH,
    TLB_PRED_LEEWAY,
    TLB_PRED_PERCEPTRON,
)
LLC_PREDICTORS = (
    LLC_PRED_NONE,
    LLC_PRED_CBPRED,
    LLC_PRED_CBPRED_NOPFQ,
    LLC_PRED_SHIP,
    LLC_PRED_AIP,
    LLC_PRED_ORACLE,
    LLC_PRED_LEEWAY,
    LLC_PRED_PERCEPTRON,
)


def _known_predictors(kind: str, builtin: Tuple[str, ...]) -> Tuple[str, ...]:
    """Valid names for ``kind``: "none" plus everything registered.

    The registry import is deferred — the registry imports the predictor
    implementation modules, and keeping config import-light lets those
    modules (and anything else) import this one freely.
    """
    from repro.predictors import registry

    names = registry.registered_names(kind)
    return ("none",) + names if names else builtin


@dataclass(frozen=True)
class TlbGeometry:
    entries: int
    assoc: int
    latency: int


@dataclass(frozen=True)
class CacheGeometry:
    num_sets: int
    assoc: int
    latency: int

    @property
    def blocks(self) -> int:
        return self.num_sets * self.assoc

    @property
    def size_bytes(self) -> int:
        return self.blocks * 64


@dataclass(frozen=True)
class TimingConfig:
    """Mechanistic timing-model parameters (DESIGN.md §3 substitution).

    ``cycles = instructions * base_cpi + sum(exposed penalties)`` where the
    exposure factors encode how much of each event an OoO core hides:
    L2-TLB hits are "often hidden by out-of-order cores" (Section IV-A),
    page walks serialize (pointer-chasing the radix tree) and are fully
    exposed, and DRAM misses overlap with each other through memory-level
    parallelism (``mem_divisor``; large OoO windows sustain high MLP on
    these gather-heavy workloads, which is also why the paper charges
    walks but not loads to the critical path).
    """

    base_cpi: float = 0.4
    l2_tlb_hit_penalty: float = 2.0
    walk_exposure: float = 1.0
    l2_hit_penalty: float = 2.0
    llc_hit_penalty: float = 6.0
    mem_divisor: float = 8.0


@dataclass(frozen=True)
class SystemConfig:
    """Full machine + predictor configuration."""

    name: str = "fast"
    # --- TLBs (Table I) ---
    l1_itlb: TlbGeometry = TlbGeometry(16, 4, 1)
    l1_dtlb: TlbGeometry = TlbGeometry(16, 4, 1)
    l2_tlb: TlbGeometry = TlbGeometry(128, 8, 8)
    tlb_policy: str = "lru"
    # --- page walk caches ---
    pwc_entries: Tuple[int, int, int] = (4, 8, 16)
    pwc_latencies: Tuple[int, int, int] = (1, 1, 2)
    # --- data caches (Table I) ---
    l1d: CacheGeometry = CacheGeometry(8, 8, 5)
    l2: CacheGeometry = CacheGeometry(64, 8, 11)
    llc: CacheGeometry = CacheGeometry(256, 16, 40)
    cache_policy: str = "lru"
    llc_policy: Optional[str] = None  # None -> cache_policy
    mem_latency: int = 191
    phys_frames: int = 1 << 22
    # --- predictors ---
    tlb_predictor: str = TLB_PRED_NONE
    llc_predictor: str = LLC_PRED_NONE
    # dpPred knobs (Section V-A defaults)
    dppred_pc_bits: int = 6
    dppred_vpn_bits: int = 4
    dppred_threshold: int = 6
    dppred_shadow_entries: int = 2
    # cbPred knobs (Section V-B defaults; bhist scaled with the LLC)
    cbpred_bhist_entries: int = 512
    cbpred_threshold: int = 6
    cbpred_pfq_entries: int = 8
    # SHiP knobs
    ship_tlb_signature_bits: int = 8
    ship_llc_signature_bits: int = 14
    # Leeway knobs (live-distance percentile prediction)
    leeway_signature_bits: int = 8
    leeway_percentile: int = 75
    # Hashed-perceptron knobs
    perceptron_table_bits: int = 8
    perceptron_threshold: int = 4
    # --- multi-tenant / huge-page scenario layer ---
    #: Number of interleaved address spaces the workload trace carries
    #: (1 = the paper's single-process machine). Informational for cache
    #: keys and engine dispatch; the trace's asids array is authoritative.
    num_tenants: int = 1
    #: Shoot down the outgoing tenant's TLB + PWC entries on every
    #: context switch (models ASID-recycling kernels; False models
    #: ASID-rich hardware where entries survive switches).
    shootdown_on_switch: bool = False
    #: Fraction of 2 MB virtual regions backed by huge pages (leaf at the
    #: PD level). 0.0 keeps the paper's pure-4 KB address spaces.
    huge_fraction: float = 0.0
    # --- instrumentation ---
    track_residency: bool = False
    track_reference: bool = False
    track_correlation: bool = False
    # --- timing ---
    timing: TimingConfig = field(default_factory=TimingConfig)

    def __post_init__(self) -> None:
        # Fail on unknown predictor names at *construction*, not deep in
        # Machine.__init__: every config reaches the simulator through
        # replace()/the constructor, so a typo surfaces at the call site
        # (the serve layer maps the ValueError to HTTP 400). Validity is
        # registry membership, so third-party ``register()``ed names pass.
        self._check_predictor_names()

    def _check_predictor_names(self) -> None:
        if self.tlb_predictor != TLB_PRED_NONE:
            known = _known_predictors("tlb", TLB_PREDICTORS)
            if self.tlb_predictor not in known:
                raise ValueError(
                    f"unknown tlb_predictor {self.tlb_predictor!r}; "
                    f"choose from {known}"
                )
        if self.llc_predictor != LLC_PRED_NONE:
            known = _known_predictors("llc", LLC_PREDICTORS)
            if self.llc_predictor not in known:
                raise ValueError(
                    f"unknown llc_predictor {self.llc_predictor!r}; "
                    f"choose from {known}"
                )

    def validate(self) -> None:
        if self.num_tenants < 1:
            raise ValueError(
                f"num_tenants must be >= 1, got {self.num_tenants}"
            )
        if not 0.0 <= self.huge_fraction <= 1.0:
            raise ValueError(
                f"huge_fraction must be in [0, 1], got {self.huge_fraction}"
            )
        self._check_predictor_names()
        if self.llc_predictor in (LLC_PRED_CBPRED, LLC_PRED_CBPRED_NOPFQ):
            if self.tlb_predictor not in (
                TLB_PRED_DPPRED,
                TLB_PRED_DPPRED_NOSHADOW,
                TLB_PRED_DPPRED_DEMOTE,
            ):
                raise ValueError(
                    "cbPred only works coupled with dpPred (Section VI-B)"
                )

    @property
    def effective_llc_policy(self) -> str:
        return self.llc_policy if self.llc_policy is not None else self.cache_policy

    def with_predictors(
        self, tlb: Optional[str] = None, llc: Optional[str] = None
    ) -> "SystemConfig":
        """Derive a config with different predictors (convenience)."""
        changes = {}
        if tlb is not None:
            changes["tlb_predictor"] = tlb
        if llc is not None:
            changes["llc_predictor"] = llc
        return replace(self, **changes)


def fast_config(**overrides) -> SystemConfig:
    """The default scaled-down profile (capacities / 8 vs Table I)."""
    return replace(SystemConfig(), **overrides) if overrides else SystemConfig()


def paper_config(**overrides) -> SystemConfig:
    """The exact Table I machine. Slow in pure Python; use for spot checks."""
    cfg = SystemConfig(
        name="paper",
        l1_itlb=TlbGeometry(128, 4, 1),
        l1_dtlb=TlbGeometry(64, 4, 1),
        l2_tlb=TlbGeometry(1024, 8, 8),
        l1d=CacheGeometry(64, 8, 5),       # 32 KB
        l2=CacheGeometry(512, 8, 11),      # 256 KB
        llc=CacheGeometry(2048, 16, 40),   # 2 MB
        cbpred_bhist_entries=4096,
    )
    return replace(cfg, **overrides) if overrides else cfg


def mix2_config(**overrides) -> SystemConfig:
    """Two-tenant interleaving profile (fast geometry, shootdowns on
    context switch). Pair with the ``mix2`` workload."""
    cfg = SystemConfig(name="mix2", num_tenants=2, shootdown_on_switch=True)
    return replace(cfg, **overrides) if overrides else cfg


def mix4_config(**overrides) -> SystemConfig:
    """Four-tenant interleaving profile. Pair with the ``mix4`` workload."""
    cfg = SystemConfig(name="mix4", num_tenants=4, shootdown_on_switch=True)
    return replace(cfg, **overrides) if overrides else cfg


def hugepage_config(**overrides) -> SystemConfig:
    """Half the address space backed by 2 MB huge pages (fast geometry);
    works with any workload — the page tables splinter per region."""
    cfg = SystemConfig(name="hugepage", huge_fraction=0.5)
    return replace(cfg, **overrides) if overrides else cfg


def leeway_config(**overrides) -> SystemConfig:
    """Leeway at both levels (fast geometry): variability-aware
    live-distance-percentile bypass on the LLT and the LLC."""
    cfg = SystemConfig(
        name="leeway",
        tlb_predictor=TLB_PRED_LEEWAY,
        llc_predictor=LLC_PRED_LEEWAY,
    )
    return replace(cfg, **overrides) if overrides else cfg


def perceptron_config(**overrides) -> SystemConfig:
    """Hashed-perceptron bypass at both levels (fast geometry)."""
    cfg = SystemConfig(
        name="perceptron",
        tlb_predictor=TLB_PRED_PERCEPTRON,
        llc_predictor=LLC_PRED_PERCEPTRON,
    )
    return replace(cfg, **overrides) if overrides else cfg


def iso_storage_config(base: SystemConfig) -> SystemConfig:
    """The Figure 9 "iso-storage" LLT: the baseline L2 TLB grown by one way
    (+12.5 % entries), slightly *more* extra storage than dpPred costs."""
    grown = TlbGeometry(
        entries=base.l2_tlb.entries + base.l2_tlb.entries // 8,
        assoc=base.l2_tlb.assoc + 1,
        latency=base.l2_tlb.latency,
    )
    return replace(base, l2_tlb=grown, tlb_predictor=TLB_PRED_NONE)


def scale_llt(base: SystemConfig, entries: int) -> SystemConfig:
    """Resize the L2 TLB, keeping associativity where the set count stays a
    power of two (Figure 11a sweeps). 1536-style "x1.5" sizes switch to
    12-way — the paper's 1536-entry LLT point likewise cannot keep 8 ways
    over a power-of-two set count."""
    from repro.common.bitops import is_power_of_two

    assoc = base.l2_tlb.assoc
    if entries % assoc != 0 or not is_power_of_two(entries // assoc):
        assoc = 12
        if entries % assoc != 0 or not is_power_of_two(entries // assoc):
            raise ValueError(
                f"cannot arrange {entries} LLT entries into power-of-two sets"
            )
    return replace(
        base,
        l2_tlb=TlbGeometry(entries, assoc, base.l2_tlb.latency),
    )


def scale_llc(base: SystemConfig, factor: float) -> SystemConfig:
    """Grow the LLC by ``factor`` via associativity (Figure 11e's 2->3 MB
    step is 16->24 ways at constant sets; bHIST stays at its default size,
    as in the paper)."""
    new_assoc = max(1, round(base.llc.assoc * factor))
    return replace(
        base,
        llc=CacheGeometry(base.llc.num_sets, new_assoc, base.llc.latency),
    )
