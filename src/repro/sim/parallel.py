"""Parallel, fault-tolerant fan-out of simulation run matrices.

Every experiment reduces to a matrix of independent (workload, config,
budget, seed) simulations. :func:`run_matrix` executes such a matrix over
a :class:`~concurrent.futures.ProcessPoolExecutor` under a *supervisor*:
each cell is submitted individually, retried with exponential backoff
when its worker fails (:class:`RetryPolicy`), bounded by a per-run
wall-clock timeout, and journaled to a resume checkpoint as it
completes (:mod:`repro.sim.checkpoint`), so a crashed or interrupted
sweep restarts where it stopped — and, because results are merged back
in declared request order, a resumed or retried sweep is byte-identical
to an uninterrupted one. Failures are surfaced as
:mod:`repro.obs.harness` events (``run_retry``, ``run_timeout``,
``pool_rebuild``, ``resume_skip``).

Job count resolution, in priority order:

1. an explicit ``jobs=`` argument,
2. :func:`set_default_jobs` (the CLI's ``--jobs`` flag),
3. the ``REPRO_JOBS`` environment variable,
4. serial in-process execution (``1``).

Retry policy resolves the same way (argument, :func:`set_default_retry`
for the CLI's ``--retries``/``--run-timeout``/``--backoff`` flags, then
the ``REPRO_RETRIES`` / ``REPRO_RUN_TIMEOUT`` / ``REPRO_BACKOFF``
environment variables); resume via argument, :func:`repro.sim.checkpoint
.set_default_resume` (``--resume``), or ``REPRO_RESUME``.

Workers are plain processes running :func:`repro.sim.runner.run_cached`,
so a worker that lands on a disk-cached entry skips simulation exactly
like the parent would; determinism is inherited from the simulator
(results are bit-identical across ``jobs=1`` and ``jobs=N``, and across
clean, retried, and resumed executions).

Deterministic fault injection for tests goes through ``faults=`` — a
:class:`repro.sim.faults.FaultPlan` killing, hanging, or corrupting
chosen cells; see ``tests/test_sim_faults.py``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import repro.obs.harness as obs_harness
import repro.obs.telemetry as obs_telemetry
import repro.sim.diskcache as diskcache
import repro.sim.faults as faults_mod
from repro.obs.events import (
    EV_FAULT_INJECT,
    EV_INFLIGHT_COALESCE,
    EV_POOL_REBUILD,
    EV_RESUME_SKIP,
    EV_RUN_RETRY,
    EV_RUN_TIMEOUT,
)
from repro.sim.inflight import global_inflight
from repro.sim.checkpoint import MatrixJournal, resolve_resume
from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.runner import (
    DEFAULT_SEED,
    cached_result,
    prime_run_cache,
    run_cached,
)
from repro.workloads.suite import DEFAULT_BUDGET

_default_jobs: Optional[int] = None
_default_retry: Optional["RetryPolicy"] = None

#: True inside pool worker processes (set by the pool initializer); lets
#: injected kills hard-exit only where a supervisor is watching.
_in_pool_worker = False


@dataclass(frozen=True)
class RunRequest:
    """One cell of a run matrix. Hashable, so it can key result dicts."""

    workload: str
    config: SystemConfig
    budget: int = DEFAULT_BUDGET
    seed: int = DEFAULT_SEED


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats a failing matrix cell.

    A cell is attempted up to ``max_attempts`` times; between attempts
    the supervisor sleeps ``backoff * backoff_factor**(attempt - 1)``
    seconds. ``timeout`` bounds one attempt's wall clock (pool mode
    only — a serial in-process run cannot be preempted); on expiry the
    hung worker pool is killed and rebuilt, and unaffected in-flight
    cells are resubmitted without losing an attempt.
    """

    max_attempts: int = 3
    backoff: float = 0.25
    backoff_factor: float = 2.0
    timeout: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be >= 0 with factor >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    def delay(self, attempt: int) -> float:
        """Backoff before re-running a cell that failed ``attempt``."""
        return self.backoff * self.backoff_factor ** (attempt - 1)


class MatrixError(RuntimeError):
    """A matrix cell exhausted its retry budget.

    Completed cells up to the failure are journaled (and disk-cached),
    so rerunning with ``--resume`` only re-executes unfinished work.
    """

    def __init__(self, request: RunRequest, attempts: int, reason: str):
        self.request = request
        self.attempts = attempts
        self.reason = reason
        super().__init__(
            f"matrix cell {_label(request)} failed after {attempts} "
            f"attempt(s): {reason}"
        )


def set_default_jobs(jobs: Optional[int]) -> None:
    """Pin the process-wide default job count (the CLI's ``--jobs``)."""
    global _default_jobs
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective job count: argument > set_default_jobs > REPRO_JOBS > 1."""
    if jobs is not None:
        return max(1, jobs)
    if _default_jobs is not None:
        return max(1, _default_jobs)
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env}")
    return 1


def set_default_retry(retry: Optional[RetryPolicy]) -> None:
    """Pin the process-wide retry policy (the CLI's resilience flags)."""
    global _default_retry
    _default_retry = retry


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}")


def resolve_retry(retry: Optional[RetryPolicy] = None) -> RetryPolicy:
    """Effective retry policy: argument > set_default_retry > env > default.

    Environment knobs: ``REPRO_RETRIES`` (max attempts),
    ``REPRO_RUN_TIMEOUT`` (seconds per attempt), ``REPRO_BACKOFF``
    (base seconds between attempts).
    """
    if retry is not None:
        return retry
    if _default_retry is not None:
        return _default_retry
    kwargs = {}
    env = os.environ.get("REPRO_RETRIES")
    if env:
        try:
            kwargs["max_attempts"] = max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_RETRIES must be an integer, got {env!r}")
    timeout = _env_float("REPRO_RUN_TIMEOUT")
    if timeout is not None:
        kwargs["timeout"] = timeout
    backoff = _env_float("REPRO_BACKOFF")
    if backoff is not None:
        kwargs["backoff"] = backoff
    return RetryPolicy(**kwargs)


# ---------------------------------------------------------------------- #
# Worker side
# ---------------------------------------------------------------------- #
#: Worker-side memo of shared-trace keys already attached, so tasks that
#: ship descriptors (reused warm pools see traces published *after* pool
#: start) attach each segment at most once per worker process.
_attached_trace_keys: set = set()


def _attach_shared_traces(shm_descriptors: Sequence[dict]) -> None:
    """Attach published shared-memory traces this worker has not seen yet
    and register them with the suite's shared-trace registry."""
    if not shm_descriptors:
        return
    from repro.workloads import shm, suite

    for descriptor in shm_descriptors:
        key = tuple(descriptor["key"])
        if key in _attached_trace_keys:
            continue
        trace = shm.attach_trace(descriptor)
        if trace is None:
            # Segment gone (parent closed its arena): fall back to the
            # ordinary generate/disk-load path, and retry next time in
            # case the same key is re-published.
            continue
        _attached_trace_keys.add(key)
        name, budget, seed = descriptor["key"]
        suite.register_shared_trace(name, int(budget), int(seed), trace)


def _worker_init(
    cache_directory: Optional[str],
    obs_state=None,
    shm_descriptors: Sequence[dict] = (),
) -> None:
    """Propagate the parent's disk-cache and auto-telemetry settings into
    pool workers (the fork start method would inherit them, but spawn
    would not), pre-import the simulator's lazily-loaded hot modules,
    attach any shared-memory traces the parent published, and mark the
    process as a supervised worker."""
    global _in_pool_worker
    _in_pool_worker = True
    # Front-load the imports every cell would otherwise pay inside its
    # first (timed, supervised) run: Machine.run lazily imports the
    # batched engine, and the workload generators live behind their own
    # module boundary. Doing it here overlaps the cost across workers at
    # pool start instead of serialising it into the first wave of cells.
    import repro.sim.engine  # noqa: F401
    import repro.sim.machine  # noqa: F401
    import repro.workloads.suite  # noqa: F401

    if cache_directory is not None:
        diskcache.enable(cache_directory)
    else:
        diskcache.disable()
    obs_telemetry.set_auto_state(obs_state)
    _attach_shared_traces(shm_descriptors)


def _execute_cell(request, attempt, faults, telemetry_spec, in_pool):
    """Run one matrix cell (one retry attempt), faults applied.

    Returns ``(result, telemetry_payload_or_None)``.
    """
    spec = None
    if faults:
        spec = faults.spec_for(
            request.workload, request.config.name, request.seed, attempt
        )
        faults_mod.apply_pre_run(spec, in_pool)
    if telemetry_spec is None:
        result = run_cached(
            request.workload, request.config, request.budget, request.seed
        )
        payload = None
    else:
        telemetry = telemetry_spec.build()
        result = run_cached(
            request.workload,
            request.config,
            request.budget,
            request.seed,
            telemetry=telemetry,
        )
        payload = telemetry.to_payload()
    if spec is not None:
        faults_mod.apply_post_store(spec, request)
    return result, payload


def _worker_cell(args) -> tuple:
    request, attempt, faults, telemetry_spec, shm_descriptors = args
    _attach_shared_traces(shm_descriptors)
    return _execute_cell(
        request, attempt, faults, telemetry_spec, _in_pool_worker
    )


# ---------------------------------------------------------------------- #
# Warm worker pool
# ---------------------------------------------------------------------- #
def _kill_executor(executor: ProcessPoolExecutor) -> None:
    """Shut an executor down without waiting on possibly-hung workers."""
    processes = getattr(executor, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except (OSError, ValueError, AttributeError):
            pass
    executor.shutdown(wait=False, cancel_futures=True)


class WarmPool:
    """A reusable handle on a warm, pre-initialised worker pool.

    ``run_matrix`` historically built and tore down a
    :class:`ProcessPoolExecutor` per call, so back-to-back matrix
    executions (and every server request) paid worker spawn plus the
    pre-import cost of :func:`_worker_init` each time. A ``WarmPool``
    decouples worker lifetime from matrix lifetime:

    * the executor is created lazily on first use and *kept alive* after
      a matrix finishes (idle-worker keepalive), so the next caller finds
      warm workers;
    * ``acquire()``/``release()`` refcount concurrent users — the pool
      only shuts down on an explicit :meth:`close` (or a ``release``
      with ``close_idle=True`` that drops the last reference);
    * :meth:`kill_workers` / :meth:`rebuild` give the supervisor the same
      crash/hang recovery it had with throwaway pools.

    Disk-cache and telemetry settings are captured at each executor
    (re)creation, so a pool built before ``diskcache.enable()`` picks the
    setting up on its next rebuild; :func:`shared_warm_pool` goes further
    and rebuilds automatically when the settings change. Traces published
    to shared memory after pool start are shipped per-task (see
    :func:`_worker_cell`), so a reused pool still gets zero-copy traces.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        shm_descriptors: Sequence[dict] = (),
    ):
        cores = os.cpu_count() or 1
        if max_workers is None:
            max_workers = cores
        self.max_workers = max(1, min(max_workers, cores))
        self._descriptors = tuple(shm_descriptors)
        self._lock = threading.RLock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._settings: Optional[tuple] = None
        self._refs = 0
        self._closed = False

    @staticmethod
    def _current_settings() -> tuple:
        cache_directory = (
            str(diskcache.cache_dir()) if diskcache.is_enabled() else None
        )
        return (cache_directory, obs_telemetry.auto_state())

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created (warm) on first use."""
        with self._lock:
            if self._closed:
                raise RuntimeError("WarmPool is closed")
            if self._executor is None:
                self._settings = self._current_settings()
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_worker_init,
                    initargs=self._settings + (self._descriptors,),
                )
            return self._executor

    def matches_current_settings(self) -> bool:
        """Whether live workers were initialised under the caller's current
        disk-cache and telemetry settings (idle pools always match)."""
        with self._lock:
            return (
                self._executor is None
                or self._settings == self._current_settings()
            )

    def kill_workers(self) -> None:
        """Kill the executor (hang/crash recovery); the next
        :meth:`executor` call builds a fresh one."""
        with self._lock:
            if self._executor is not None:
                _kill_executor(self._executor)
                self._executor = None

    def rebuild(self) -> ProcessPoolExecutor:
        """Kill and immediately replace the executor."""
        with self._lock:
            self.kill_workers()
            return self.executor()

    @property
    def warm(self) -> bool:
        """True when worker processes are currently alive."""
        with self._lock:
            return self._executor is not None

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def acquire(self) -> "WarmPool":
        with self._lock:
            if self._closed:
                raise RuntimeError("WarmPool is closed")
            self._refs += 1
            return self

    def release(self, close_idle: bool = False) -> None:
        """Drop one reference; with ``close_idle`` the last release shuts
        the pool down instead of keeping workers warm."""
        with self._lock:
            self._refs = max(0, self._refs - 1)
            if close_idle and self._refs == 0:
                self.close()

    def close(self) -> None:
        """Tear the pool down for good (idempotent)."""
        with self._lock:
            self.kill_workers()
            self._closed = True

    def describe(self) -> dict:
        with self._lock:
            return {
                "max_workers": self.max_workers,
                "warm": self._executor is not None,
                "refs": self._refs,
                "closed": self._closed,
            }


_shared_pool: Optional[WarmPool] = None
_shared_pool_lock = threading.Lock()


def shared_warm_pool(max_workers: Optional[int] = None) -> WarmPool:
    """The process-wide warm pool, (re)built on demand.

    Back-to-back ``run_matrix(pool=shared_warm_pool())`` calls — and the
    server, which holds one for its whole lifetime — reuse the same warm
    workers. The pool is replaced when the caller's disk-cache/telemetry
    settings no longer match the ones its workers were initialised with,
    or when a larger ``max_workers`` is requested.
    """
    global _shared_pool
    with _shared_pool_lock:
        want = max_workers if max_workers is not None else (os.cpu_count() or 1)
        pool = _shared_pool
        if pool is not None and (
            pool.closed
            or not pool.matches_current_settings()
            or pool.max_workers < min(want, os.cpu_count() or 1)
        ):
            pool.close()
            pool = None
        if pool is None:
            pool = _shared_pool = WarmPool(want)
        return pool


def close_shared_pool() -> None:
    """Shut down the process-wide warm pool (cleanup / test isolation)."""
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is not None:
            _shared_pool.close()
            _shared_pool = None


# ---------------------------------------------------------------------- #
# Supervisor
# ---------------------------------------------------------------------- #
class _Supervisor:
    """Drives pending cells to completion under a retry policy."""

    def __init__(
        self,
        retry: RetryPolicy,
        faults,
        telemetry_spec,
        on_complete: Callable[[RunRequest, tuple], None],
    ):
        self.retry = retry
        self.faults = faults
        self.telemetry_spec = telemetry_spec
        self.on_complete = on_complete
        self.attempts: Dict[RunRequest, int] = {}

    # -- shared bookkeeping -------------------------------------------- #
    def _next_attempt(self, request: RunRequest) -> int:
        attempt = self.attempts.get(request, 0) + 1
        self.attempts[request] = attempt
        if self.faults:
            spec = self.faults.spec_for(
                request.workload, request.config.name, request.seed, attempt
            )
            if spec is not None:
                obs_harness.record(
                    EV_FAULT_INJECT, request.workload, spec.kind, attempt
                )
        return attempt

    def _failed(self, request: RunRequest, reason: str) -> None:
        """Account one failed attempt; raises when the budget is gone."""
        attempt = self.attempts[request]
        if attempt >= self.retry.max_attempts:
            raise MatrixError(request, attempt, reason)
        obs_harness.record(
            EV_RUN_RETRY,
            request.workload,
            request.config.name,
            request.seed,
            attempt,
            reason,
        )
        delay = self.retry.delay(attempt)
        if delay > 0:
            time.sleep(delay)

    # -- serial execution ---------------------------------------------- #
    def run_serial(self, pending: Sequence[RunRequest]) -> None:
        for request in pending:
            while True:
                attempt = self._next_attempt(request)
                try:
                    outcome = _execute_cell(
                        request, attempt, self.faults, self.telemetry_spec,
                        in_pool=False,
                    )
                except Exception as exc:
                    self._failed(request, f"{type(exc).__name__}: {exc}")
                    continue
                self.on_complete(request, outcome)
                break

    # -- pool execution ------------------------------------------------ #
    def run_pool(
        self,
        pending: Sequence[RunRequest],
        jobs: int,
        shm_descriptors: Sequence[dict] = (),
        pool: Optional[WarmPool] = None,
    ) -> None:
        # Never oversubscribe the machine: workers beyond the real core
        # count only add scheduling and startup overhead (the requested
        # job count is an upper bound, not a demand).
        max_workers = min(jobs, len(pending), os.cpu_count() or 1)
        own_pool = pool is None
        if own_pool:
            # Transient pool: bakes this matrix's shm descriptors into
            # the initargs so rebuilt workers re-attach the segments.
            pool = WarmPool(max_workers, shm_descriptors)
        else:
            pool.acquire()
            max_workers = min(max_workers, pool.max_workers)
        # Borrowed (warm) pools may predate this matrix's published
        # traces, so descriptors also ride along with every task and
        # workers attach unseen segments on demand.
        task_descriptors = tuple(shm_descriptors)

        queue = deque(pending)
        inflight: Dict = {}  # future -> (request, deadline or None)
        executor = pool.executor()
        try:
            while queue or inflight:
                # Sliding window: at most max_workers outstanding, so a
                # submitted cell starts (nearly) immediately and its
                # deadline measures run time, not queueing time.
                broken = False
                while queue and len(inflight) < max_workers:
                    request = queue.popleft()
                    attempt = self._next_attempt(request)
                    deadline = (
                        time.monotonic() + self.retry.timeout
                        if self.retry.timeout is not None
                        else None
                    )
                    try:
                        future = executor.submit(
                            _worker_cell,
                            (request, attempt, self.faults,
                             self.telemetry_spec, task_descriptors),
                        )
                    except BrokenProcessPool:
                        # A worker died between the completion sweep and
                        # this submit. The cell never ran: refund its
                        # attempt and fall through to the rebuild path.
                        self.attempts[request] -= 1
                        queue.appendleft(request)
                        broken = True
                        break
                    inflight[future] = (request, deadline)

                if broken:
                    executor = self._rebuild_broken_pool(
                        pool, inflight, queue
                    )
                    continue

                wait_for = None
                if self.retry.timeout is not None:
                    soonest = min(d for _, d in inflight.values())
                    wait_for = max(0.0, soonest - time.monotonic())
                done, _ = _futures_wait(
                    set(inflight), timeout=wait_for,
                    return_when=FIRST_COMPLETED,
                )

                broken = False
                for future in done:
                    request, _deadline = inflight.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        broken = True
                        # Put it back; the rebuild path below accounts
                        # for every in-flight cell uniformly.
                        inflight[future] = (request, _deadline)
                        break
                    except Exception as exc:
                        self._failed(
                            request, f"{type(exc).__name__}: {exc}"
                        )
                        queue.append(request)
                    else:
                        self.on_complete(request, outcome)

                if broken:
                    # A worker died hard (os._exit, OOM kill, segfault):
                    # the pool is unusable and every in-flight future
                    # fails. The culprit is indistinguishable from the
                    # victims, so each in-flight cell is charged one
                    # attempt (bounded collateral; retries are cheap
                    # against the disk cache).
                    obs_harness.record(EV_POOL_REBUILD, len(inflight))
                    requests = [req for req, _ in inflight.values()]
                    inflight.clear()
                    executor = pool.rebuild()
                    for request in requests:
                        self._failed(request, "worker process died")
                        queue.append(request)
                    continue

                # Per-run deadline sweep.
                if self.retry.timeout is not None:
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (req, deadline) in inflight.items()
                        if deadline is not None
                        and deadline <= now
                        and not future.done()
                    ]
                    if expired:
                        executor = self._handle_timeouts(
                            pool, inflight, expired, queue
                        )
        finally:
            if own_pool:
                pool.close()
            else:
                # Borrowed pool: leave the workers warm for the next
                # matrix (that is the whole point of sharing it).
                pool.release()

    def _rebuild_broken_pool(
        self, pool: WarmPool, inflight, queue
    ) -> ProcessPoolExecutor:
        """The pool broke during submit: a worker died after the last
        completion sweep, so the breakage surfaces from ``submit``
        rather than ``result``. Same accounting as the post-wait
        rebuild, except cells that finished cleanly before the collapse
        keep their results."""
        obs_harness.record(EV_POOL_REBUILD, len(inflight))
        pool.kill_workers()
        for future, (request, _) in list(inflight.items()):
            if future.done() and future.exception() is None:
                self.on_complete(request, future.result())
            else:
                self._failed(request, "worker process died")
                queue.append(request)
        inflight.clear()
        return pool.executor()

    def _handle_timeouts(
        self, pool: WarmPool, inflight, expired, queue
    ) -> ProcessPoolExecutor:
        """A worker exceeded its per-run wall clock. Hung processes can
        only be stopped by killing them, which takes the pool down: the
        timed-out cells are charged an attempt, innocent in-flight cells
        are resubmitted with their attempt refunded."""
        for future in expired:
            request, _ = inflight[future]
            obs_harness.record(
                EV_RUN_TIMEOUT,
                request.workload,
                request.config.name,
                request.seed,
                self.attempts[request],
                self.retry.timeout,
            )
        obs_harness.record(EV_POOL_REBUILD, len(inflight))
        pool.kill_workers()
        expired_set = set(expired)
        timed_out: List[RunRequest] = []
        for future, (request, _) in list(inflight.items()):
            if future in expired_set:
                timed_out.append(request)
            elif future.done() and future.exception() is None:
                # Completed between the wait and the kill — keep it.
                self.on_complete(request, future.result())
            else:
                # Innocent casualty of the pool kill: refund the attempt
                # ( _next_attempt re-charges it on resubmission).
                self.attempts[request] -= 1
                queue.append(request)
        inflight.clear()
        for request in timed_out:
            self._failed(
                request,
                f"timed out after {self.retry.timeout:.3g}s",
            )
            queue.append(request)
        return pool.executor()


# ---------------------------------------------------------------------- #
# Matrix execution
# ---------------------------------------------------------------------- #
def run_matrix(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    telemetry_spec=None,
    telemetry_out: Optional[Dict[RunRequest, dict]] = None,
    retry: Optional[RetryPolicy] = None,
    faults=None,
    resume: Optional[bool] = None,
    checkpoint_dir=None,
    pool: Optional[WarmPool] = None,
) -> Dict[RunRequest, SimResult]:
    """Execute a declared run matrix, parallelising cache misses.

    Duplicate requests are coalesced; requests already satisfied by the
    resume journal, the in-process cache, or the disk cache never reach
    the pool. Cells another thread is *already computing* (a concurrent
    ``run_matrix`` or a server request, via the process-wide
    :func:`repro.sim.inflight.global_inflight` registry) are likewise
    coalesced: this matrix waits for that in-flight result instead of
    re-simulating. Results are merged into the run cache so later
    ``run_cached`` calls hit in-process, and the returned mapping is
    rebuilt in declared request order, so its serialised form is
    byte-stable regardless of completion order, retries, or resume.

    ``telemetry_spec`` — optional :class:`repro.obs.TelemetrySpec`; every
    request is then simulated live (cached aggregates carry no dynamics)
    with its own bundle, and the JSON-safe payloads are merged into
    ``telemetry_out`` keyed by request. Journal/resume skipping is
    disabled for such sweeps — a skipped cell would carry no dynamics —
    and so is in-flight coalescing (each caller needs its own dynamics).

    ``retry`` / ``faults`` / ``resume`` / ``checkpoint_dir`` — the
    resilience controls (see the module docstring). Checkpointing is on
    whenever the disk cache is enabled (journals live under
    ``<cache_dir>/checkpoints/``) or an explicit ``checkpoint_dir`` is
    given. A cell that exhausts ``retry.max_attempts`` raises
    :class:`MatrixError`; completed cells stay journaled, so rerunning
    with ``resume=True`` (CLI ``--resume``, env ``REPRO_RESUME=1``)
    skips them.

    ``pool`` — an optional :class:`WarmPool` to run worker cells on;
    the pool is borrowed (acquired/released, never torn down), so
    back-to-back matrix calls passing the same handle — e.g.
    ``shared_warm_pool()`` — reuse warm workers instead of paying spawn
    cost each time. Without it, a transient pool is built and closed as
    before.
    """
    unique: List[RunRequest] = list(dict.fromkeys(requests))
    retry = resolve_retry(retry)
    results: Dict[RunRequest, SimResult] = {}
    pending: List[RunRequest] = []

    journal: Optional[MatrixJournal] = None
    keys: Dict[RunRequest, str] = {}
    journaled: Dict[str, SimResult] = {}
    if unique and telemetry_spec is None and (
        checkpoint_dir is not None or diskcache.is_enabled()
    ):
        directory = (
            checkpoint_dir
            if checkpoint_dir is not None
            else diskcache.cache_dir() / "checkpoints"
        )
        keys = {
            req: diskcache.result_key(
                req.workload, req.config, req.budget, req.seed
            )
            for req in unique
        }
        journal = MatrixJournal.for_matrix(list(keys.values()), directory)
        resuming = resolve_resume(resume)
        if resuming:
            journaled = journal.load()
        journal.start(fresh=not resuming)

    if telemetry_spec is not None:
        telemetry_spec.validate()
        pending = unique
    else:
        for req in unique:
            key = keys.get(req)
            if key is not None and key in journaled:
                hit = journaled[key]
                prime_run_cache(
                    req.workload, req.config, req.budget, req.seed, hit,
                    persist=False,
                )
                obs_harness.record(
                    EV_RESUME_SKIP, req.workload, req.config.name, req.seed
                )
                results[req] = hit
                continue
            hit = cached_result(
                req.workload, req.config, req.budget, req.seed
            )
            if hit is not None:
                prime_run_cache(
                    req.workload, req.config, req.budget, req.seed, hit,
                    persist=False,
                )
                results[req] = hit
                if journal is not None:
                    journal.record(key, hit)
            else:
                pending.append(req)

    # Cross-thread coalescing: claim each miss in the process-wide
    # in-flight registry. Cells another thread (a concurrent matrix, a
    # server request) is already computing become *followers* — this
    # matrix waits for their result after its own leaders finish, so a
    # duplicated sweep simulates each distinct cell exactly once
    # process-wide. Telemetry sweeps opt out (each needs own dynamics).
    registry = global_inflight()
    leaders: Dict[RunRequest, str] = {}
    followers: Dict[RunRequest, Future] = {}
    if telemetry_spec is None and pending:
        claimed: List[RunRequest] = []
        for req in pending:
            key = keys.get(req) or diskcache.result_key(
                req.workload, req.config, req.budget, req.seed
            )
            is_leader, future = registry.lead_or_follow(key)
            if is_leader:
                leaders[req] = key
                claimed.append(req)
            else:
                obs_harness.record(EV_INFLIGHT_COALESCE, key)
                followers[req] = future
        pending = claimed

    def on_complete(req: RunRequest, outcome: tuple) -> None:
        result, payload = outcome
        if payload is not None and telemetry_out is not None:
            telemetry_out[req] = payload
        if progress is not None:
            progress(_label(req))
        prime_run_cache(
            req.workload, req.config, req.budget, req.seed, result
        )
        if journal is not None:
            journal.record(keys[req], result)
        results[req] = result
        key = leaders.pop(req, None)
        if key is not None:
            registry.resolve(key, result)

    supervisor = _Supervisor(retry, faults, telemetry_spec, on_complete)
    jobs = resolve_jobs(jobs)
    arena = None
    try:
        if jobs <= 1 or len(pending) <= 1:
            supervisor.run_serial(pending)
        else:
            descriptors: Sequence[dict] = ()
            arena = _publish_traces(pending)
            if arena is not None:
                descriptors = arena.descriptors
            supervisor.run_pool(pending, jobs, descriptors, pool=pool)
        # Own leaders are done (and resolved); now collect cells other
        # threads were computing. Safe to block: every leader eventually
        # resolves or abandons its key in a ``finally`` like this one.
        for req, future in followers.items():
            try:
                result = future.result()
            except BaseException:
                # The other thread's leader failed or abandoned the key;
                # compute locally (a disk-cache hit if it got that far).
                result = run_cached(
                    req.workload, req.config, req.budget, req.seed
                )
            prime_run_cache(
                req.workload, req.config, req.budget, req.seed, result,
                persist=False,
            )
            if journal is not None:
                journal.record(keys[req], result)
            results[req] = result
    finally:
        # Leaders that never completed (MatrixError, crash) must not
        # leave followers in other threads hanging.
        for req, key in leaders.items():
            registry.abandon(key, "matrix execution aborted")
        if arena is not None:
            arena.close()
        if journal is not None:
            journal.close()

    return {req: results[req] for req in unique}


def _publish_traces(pending: Sequence[RunRequest]):
    """Publish each distinct pending trace to shared memory (best effort).

    Returns the owning arena, or None when the transport is disabled or
    unavailable (workers then regenerate traces as before). Generating in
    the parent is not wasted work: traces are deterministic and memoised,
    so the parent pays each one once and every worker maps it for free.
    """
    from repro.workloads import shm, suite

    if not shm.shm_enabled():
        return None
    arena = shm.SharedTraceArena()
    try:
        seen = set()
        for req in pending:
            key = (req.workload, req.budget, req.seed)
            if key in seen:
                continue
            seen.add(key)
            arena.publish(key, suite.get_trace(*key))
    except Exception:
        # /dev/shm full or read-only, exotic platform, trace error — the
        # pool path works without the transport, so degrade silently.
        arena.close()
        return None
    return arena


def _label(request: RunRequest) -> str:
    cfg = request.config
    return (
        f"{request.workload} @ {cfg.name}/tlb={cfg.tlb_predictor}"
        f"/llc={cfg.llc_predictor}"
    )


@dataclass
class MatrixPlan:
    """A declared (workload x config) matrix plus its execution order.

    Experiments build one of these up front so the scheduler sees the
    whole matrix at once; :meth:`execute` fans it out and returns nothing
    — results land in the run cache where report code finds them.
    """

    requests: List[RunRequest] = field(default_factory=list)

    def add(
        self,
        workload: str,
        config: SystemConfig,
        budget: int = DEFAULT_BUDGET,
        seed: int = DEFAULT_SEED,
    ) -> "MatrixPlan":
        self.requests.append(RunRequest(workload, config, budget, seed))
        return self

    def add_suite(
        self,
        workloads: Sequence[str],
        configs: Sequence[SystemConfig],
        budget: int = DEFAULT_BUDGET,
        seed: int = DEFAULT_SEED,
    ) -> "MatrixPlan":
        for wl in workloads:
            for cfg in configs:
                self.add(wl, cfg, budget, seed)
        return self

    def __len__(self) -> int:
        return len(self.requests)

    def execute(
        self,
        jobs: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        telemetry_spec=None,
        telemetry_out: Optional[Dict[RunRequest, dict]] = None,
        retry: Optional[RetryPolicy] = None,
        faults=None,
        resume: Optional[bool] = None,
    ) -> Dict[RunRequest, SimResult]:
        return run_matrix(
            self.requests,
            jobs=jobs,
            progress=progress,
            telemetry_spec=telemetry_spec,
            telemetry_out=telemetry_out,
            retry=retry,
            faults=faults,
            resume=resume,
        )
