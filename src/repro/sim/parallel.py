"""Parallel fan-out of simulation run matrices over a process pool.

Every experiment reduces to a matrix of independent (workload, config,
budget, seed) simulations. :func:`run_matrix` executes such a matrix over
a :class:`~concurrent.futures.ProcessPoolExecutor` and merges the results
back into the process-wide run cache (and the persistent disk cache, when
enabled), so downstream report code — which reads through
:func:`repro.sim.runner.run_cached` — is unchanged.

Job count resolution, in priority order:

1. an explicit ``jobs=`` argument,
2. :func:`set_default_jobs` (the CLI's ``--jobs`` flag),
3. the ``REPRO_JOBS`` environment variable,
4. serial in-process execution (``1``).

Workers are plain processes running :func:`repro.sim.runner.run_cached`,
so a worker that lands on a disk-cached entry skips simulation exactly
like the parent would; determinism is inherited from the simulator
(results are bit-identical across ``jobs=1`` and ``jobs=N``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import repro.obs.telemetry as obs_telemetry
import repro.sim.diskcache as diskcache
from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.runner import (
    DEFAULT_SEED,
    cached_result,
    prime_run_cache,
    run_cached,
)
from repro.workloads.suite import DEFAULT_BUDGET

_default_jobs: Optional[int] = None


@dataclass(frozen=True)
class RunRequest:
    """One cell of a run matrix. Hashable, so it can key result dicts."""

    workload: str
    config: SystemConfig
    budget: int = DEFAULT_BUDGET
    seed: int = DEFAULT_SEED


def set_default_jobs(jobs: Optional[int]) -> None:
    """Pin the process-wide default job count (the CLI's ``--jobs``)."""
    global _default_jobs
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective job count: argument > set_default_jobs > REPRO_JOBS > 1."""
    if jobs is not None:
        return max(1, jobs)
    if _default_jobs is not None:
        return max(1, _default_jobs)
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
    return 1


def _worker_init(cache_directory: Optional[str], obs_state=None) -> None:
    """Propagate the parent's disk-cache and auto-telemetry settings into
    pool workers (the fork start method would inherit them, but spawn
    would not)."""
    if cache_directory is not None:
        diskcache.enable(cache_directory)
    else:
        diskcache.disable()
    obs_telemetry.set_auto_state(obs_state)


def _worker_run(request: RunRequest) -> SimResult:
    return run_cached(
        request.workload, request.config, request.budget, request.seed
    )


def _worker_run_observed(args) -> tuple:
    """Simulate one request with a telemetry bundle built from the spec;
    the payload travels back to the parent as a JSON-safe dict."""
    request, spec = args
    telemetry = spec.build()
    result = run_cached(
        request.workload,
        request.config,
        request.budget,
        request.seed,
        telemetry=telemetry,
    )
    return result, telemetry.to_payload()


def run_matrix(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    telemetry_spec=None,
    telemetry_out: Optional[Dict[RunRequest, dict]] = None,
) -> Dict[RunRequest, SimResult]:
    """Execute a declared run matrix, parallelising cache misses.

    Duplicate requests are coalesced; requests already satisfied by the
    in-process or disk cache never reach the pool. Results are merged
    into the run cache so later ``run_cached`` calls hit in-process.

    ``telemetry_spec`` — optional :class:`repro.obs.TelemetrySpec`; every
    request is then simulated live (cached aggregates carry no dynamics)
    with its own bundle, and the JSON-safe payloads are merged into
    ``telemetry_out`` keyed by request. The merge is deterministic: pool
    results are consumed in request order regardless of completion
    order, and the payloads themselves are worker-order independent
    (each worker observes only its own runs).
    """
    unique: List[RunRequest] = list(dict.fromkeys(requests))
    results: Dict[RunRequest, SimResult] = {}
    pending: List[RunRequest] = []
    if telemetry_spec is not None:
        telemetry_spec.validate()
        pending = unique
    else:
        for req in unique:
            hit = cached_result(
                req.workload, req.config, req.budget, req.seed
            )
            if hit is not None:
                prime_run_cache(
                    req.workload, req.config, req.budget, req.seed, hit,
                    persist=False,
                )
                results[req] = hit
            else:
                pending.append(req)

    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(pending) <= 1:
        for req in pending:
            if progress is not None:
                progress(_label(req))
            if telemetry_spec is None:
                results[req] = run_cached(
                    req.workload, req.config, req.budget, req.seed
                )
            else:
                telemetry = telemetry_spec.build()
                results[req] = run_cached(
                    req.workload, req.config, req.budget, req.seed,
                    telemetry=telemetry,
                )
                if telemetry_out is not None:
                    telemetry_out[req] = telemetry.to_payload()
        return results

    cache_directory = (
        str(diskcache.cache_dir()) if diskcache.is_enabled() else None
    )
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(pending)),
        initializer=_worker_init,
        initargs=(cache_directory, obs_telemetry.auto_state()),
    ) as pool:
        if telemetry_spec is None:
            outcomes = pool.map(_worker_run, pending)
        else:
            outcomes = pool.map(
                _worker_run_observed,
                [(req, telemetry_spec) for req in pending],
            )
        for req, outcome in zip(pending, outcomes):
            if telemetry_spec is None:
                result = outcome
            else:
                result, payload = outcome
                if telemetry_out is not None:
                    telemetry_out[req] = payload
            if progress is not None:
                progress(_label(req))
            prime_run_cache(
                req.workload, req.config, req.budget, req.seed, result
            )
            results[req] = result
    return results


def _label(request: RunRequest) -> str:
    cfg = request.config
    return (
        f"{request.workload} @ {cfg.name}/tlb={cfg.tlb_predictor}"
        f"/llc={cfg.llc_predictor}"
    )


@dataclass
class MatrixPlan:
    """A declared (workload x config) matrix plus its execution order.

    Experiments build one of these up front so the scheduler sees the
    whole matrix at once; :meth:`execute` fans it out and returns nothing
    — results land in the run cache where report code finds them.
    """

    requests: List[RunRequest] = field(default_factory=list)

    def add(
        self,
        workload: str,
        config: SystemConfig,
        budget: int = DEFAULT_BUDGET,
        seed: int = DEFAULT_SEED,
    ) -> "MatrixPlan":
        self.requests.append(RunRequest(workload, config, budget, seed))
        return self

    def add_suite(
        self,
        workloads: Sequence[str],
        configs: Sequence[SystemConfig],
        budget: int = DEFAULT_BUDGET,
        seed: int = DEFAULT_SEED,
    ) -> "MatrixPlan":
        for wl in workloads:
            for cfg in configs:
                self.add(wl, cfg, budget, seed)
        return self

    def __len__(self) -> int:
        return len(self.requests)

    def execute(
        self,
        jobs: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        telemetry_spec=None,
        telemetry_out: Optional[Dict[RunRequest, dict]] = None,
    ) -> Dict[RunRequest, SimResult]:
        return run_matrix(
            self.requests,
            jobs=jobs,
            progress=progress,
            telemetry_spec=telemetry_spec,
            telemetry_out=telemetry_out,
        )
