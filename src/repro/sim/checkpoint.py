"""Journaled checkpoints of run-matrix execution for crash-safe resume.

A matrix sweep that dies at cell 180 of 200 — a worker crash, an OOM
kill, a ^C — must not cost 180 re-simulations. The executor appends one
JSON line per *completed* cell to a journal keyed by the matrix's
content digest; ``--resume`` (or ``REPRO_RESUME=1``) replays those lines
and only the missing cells are executed. Each line embeds the full
``SimResult.to_dict`` payload under its own SHA-256 checksum, so

* resume works even with ``--no-cache`` (the journal is self-contained),
* a torn tail line from the crash itself is detected and dropped, never
  half-parsed,
* a resumed sweep re-merges deterministically: the executor rebuilds
  its result map in declared request order, so journal replay + live
  recompute is byte-identical to an uninterrupted run.

The journal lives under ``<cache_dir>/checkpoints/<digest>.jsonl`` by
default; an explicit directory keeps checkpointing available when the
disk cache is off. Without resume, an existing journal for the same
matrix is truncated (stale cells must not leak into a fresh sweep).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.sim.results import SimResult

JOURNAL_VERSION = 1

_default_resume: Optional[bool] = None


def set_default_resume(resume: Optional[bool]) -> None:
    """Pin the process-wide resume default (the CLI's ``--resume``)."""
    global _default_resume
    _default_resume = resume


def resolve_resume(resume: Optional[bool] = None) -> bool:
    """Effective resume flag: argument > set_default_resume > REPRO_RESUME."""
    if resume is not None:
        return resume
    if _default_resume is not None:
        return _default_resume
    env = os.environ.get("REPRO_RESUME", "")
    return env.strip().lower() in ("1", "true", "yes", "on")


def matrix_digest(cell_keys: Sequence[str]) -> str:
    """Content digest of a whole matrix: the sorted cell keys.

    Cell keys already hash workload, config, budget, seed, and the cache
    schema version (:func:`repro.sim.diskcache.result_key`), so any
    change to the matrix or to simulator semantics lands in a different
    journal. Sorting makes the digest independent of declaration order —
    reordering experiments must still resume the same sweep.
    """
    joined = "\n".join(sorted(cell_keys))
    return hashlib.sha256(
        f"journal={JOURNAL_VERSION}\n{joined}".encode()
    ).hexdigest()


class MatrixJournal:
    """Append-only journal of completed cells for one matrix digest."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._fh = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def for_matrix(
        cls, cell_keys: Sequence[str], directory
    ) -> "MatrixJournal":
        directory = Path(directory)
        return cls(directory / f"{matrix_digest(cell_keys)}.jsonl")

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def load(self) -> Dict[str, SimResult]:
        """Completed cells recorded so far, keyed by cell key.

        Tolerates the wreckage a crash can leave: a torn or truncated
        tail line, a bit-flipped payload (checksum mismatch), duplicate
        keys from a cell that completed on two attempts (last wins —
        results are deterministic, so they are equal anyway). Corrupt
        lines are skipped, not fatal: the cells they covered simply
        re-execute.
        """
        out: Dict[str, SimResult] = {}
        if not self.path.exists():
            return out
        with open(self.path, "rb") as f:
            for raw in f:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw.decode())
                    payload = line["payload"]
                    digest = hashlib.sha256(
                        json.dumps(payload, sort_keys=True).encode()
                    ).hexdigest()
                    if digest != line["sha256"]:
                        continue
                    out[line["key"]] = SimResult.from_dict(payload)
                except (ValueError, KeyError, TypeError):
                    continue
        return out

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def start(self, fresh: bool) -> None:
        """Open the journal for appending; ``fresh`` truncates first."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "wb" if fresh else "ab")

    def record(self, key: str, result: SimResult) -> None:
        """Append one completed cell, flushed and fsynced: after this
        returns, a crash cannot lose the cell."""
        if self._fh is None:
            self.start(fresh=False)
        payload = result.to_dict()
        line = {
            "v": JOURNAL_VERSION,
            "key": key,
            "sha256": hashlib.sha256(
                json.dumps(payload, sort_keys=True).encode()
            ).hexdigest(),
            "payload": payload,
        }
        self._fh.write(json.dumps(line, sort_keys=True).encode() + b"\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "MatrixJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
