"""The full machine model: TLBs + walker + caches + predictors + timing.

One :class:`Machine` simulates one core of the Table I system. The access
path per memory instruction is:

1. instruction-side translation (L1 I-TLB, falling back to the shared L2
   TLB and the page-table walker);
2. data-side translation (L1 D-TLB -> L2 TLB/LLT -> walker), where the LLT
   carries the configured dead-page predictor and the walker's page-table
   loads go through the data caches;
3. physical data access through the L1D/L2/LLC hierarchy, where the LLC
   carries the configured dead-block predictor;
4. timing accumulation per the mechanistic model in
   :class:`~repro.sim.config.TimingConfig`.

The PC of the instruction that triggered an LLT miss is handed to the fill
directly — the software equivalent of the paper's "the hash of the PC that
triggered the miss is stored in the LLT's MSHR".
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.cbpred import CorrelatingDeadBlockPredictor
from repro.core.dppred import DeadPagePredictor
from repro.mem.cache import CacheLine, CacheListener, SetAssocCache
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.mainmem import MainMemory
from repro.common.stats import Stats
from repro.obs.events import EV_CTX_SWITCH, EV_SHOOTDOWN, EV_WALK
from repro.predictors import registry
from repro.predictors.base import AccessContext
from repro.predictors.oracle import (
    DoaRecordingCacheListener,
    DoaRecordingListener,
)
from repro.predictors.prefetch import DistanceTlbPrefetcher
from repro.sim.config import (
    LLC_PRED_NONE,
    TLB_PRED_NONE,
    SystemConfig,
)
from repro.sim.reference import ReferenceStructure
from repro.sim.results import SimResult
from repro.vm.pagetable import (
    RadixPageTable,
    huge_region_policy,
)
from repro.vm.physmem import PAGE_SHIFT, FrameAllocator
from repro.vm.pwc import PageWalkCaches
from repro.vm.tlb import (
    ASID_SHIFT,
    GLOBAL_KEY_BASE,
    HUGE_KEY_BASE,
    HUGE_SPAN_BITS,
    Tlb,
    TlbEntry,
    TlbListener,
    tlb_key,
)
from repro.vm.walker import BLOCK_SHIFT, PageTableWalker

_BLOCK_OFFSET_BITS = PAGE_SHIFT - BLOCK_SHIFT  # block-in-page bits (6)
_BLOCK_IN_PAGE_MASK = (1 << _BLOCK_OFFSET_BITS) - 1
_VPN_KEY_MASK = (1 << ASID_SHIFT) - 1  # VPN bits of a combined (asid, vpn) key


class _CorrelationTlbListener(TlbListener):
    """Records each page's most recent LLT DOA outcome (Table III support).

    Keys are the LLT's namespaced tags (``entry.vpn`` stores the full
    key), so per-ASID 4 KB entries, huge-region entries, and global
    entries all record without colliding — and a shootdown, which ends
    the residency through the same eviction path, records the verdict
    too."""

    def __init__(self) -> None:
        self.last_doa_status: Dict[int, bool] = {}

    def on_evict(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        self.last_doa_status[entry.vpn] = not entry.accessed

    def lookup(self, vpn: int, asid: int) -> Optional[bool]:
        """Most recent DOA verdict for ``(asid, vpn)``, trying the same
        namespaces a lookup would: 4 KB, covering huge region, global."""
        status = self.last_doa_status
        verdict = status.get(tlb_key(vpn, asid))
        if verdict is not None:
            return verdict
        verdict = status.get(
            HUGE_KEY_BASE | tlb_key(vpn >> HUGE_SPAN_BITS, asid)
        )
        if verdict is not None:
            return verdict
        return status.get(GLOBAL_KEY_BASE | vpn)


class _CorrelationCacheListener(CacheListener):
    """Classifies evicted DOA LLC blocks by their page's DOA status."""

    def __init__(self, machine: "Machine", tlb_side: _CorrelationTlbListener):
        self.machine = machine
        self.tlb_side = tlb_side
        self.doa_blocks_total = 0
        self.doa_blocks_classified = 0
        self.doa_blocks_on_doa_page = 0

    def on_evict(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if line.accessed:
            return
        self.doa_blocks_total += 1
        pfn = line.tag >> _BLOCK_OFFSET_BITS
        key = self.machine.pfn_to_vpn.get(pfn)
        if key is None:
            return  # page-table block, not a demand page
        vpn = key & _VPN_KEY_MASK
        asid = key >> ASID_SHIFT
        resident = self.machine.l2_tlb.probe_translation(vpn, asid)
        if resident is not None:
            page_doa = not resident.accessed
        else:
            verdict = self.tlb_side.lookup(vpn, asid)
            if verdict is None:
                return  # never completed an LLT residency; unclassifiable
            page_doa = verdict
        self.doa_blocks_classified += 1
        if page_doa:
            self.doa_blocks_on_doa_page += 1


class Machine:
    """A single-core trace-driven simulation of the paper's system."""

    def __init__(
        self,
        config: SystemConfig,
        oracle_outcomes: Optional[dict] = None,
        llc_oracle_outcomes: Optional[dict] = None,
        seed: int = 1,
        telemetry=None,
    ):
        """``telemetry`` — optional :class:`repro.obs.Telemetry` bundle.
        Its event probe is wired into the predictors (decision tracing)
        and its timeline sampler drives interval snapshots in :meth:`run`.
        Telemetry only observes: simulation outputs are bit-identical
        with and without it, and when it is None (the default) the
        per-access path is untouched."""
        config.validate()
        self._llc_oracle_outcomes = llc_oracle_outcomes
        self.config = config
        self.telemetry = telemetry
        self._timeline = telemetry.timeline if telemetry is not None else None
        self._probe = telemetry.probe if telemetry is not None else None
        self.context = AccessContext()
        self.now = 0
        self.instructions = 0
        self.cycles = 0.0
        self.pfn_to_vpn: Dict[int, int] = {}
        # Populated by run(): which engine executed the trace and, for the
        # batched engine, its bulk/scalar record split (diagnostics only —
        # never part of SimResult).
        self.engine_stats: Optional[dict] = None

        # Timing scalars hoisted out of the per-access path (reading them
        # through two frozen dataclasses per access costs ~10% wall-clock).
        timing = config.timing
        self._base_cpi = timing.base_cpi
        self._l2_tlb_hit_penalty = timing.l2_tlb_hit_penalty
        self._walk_exposure = timing.walk_exposure
        self._l2_hit_penalty = timing.l2_hit_penalty
        self._llc_hit_penalty = timing.llc_hit_penalty
        self._mem_penalty = (
            timing.llc_hit_penalty + config.mem_latency / timing.mem_divisor
        )
        self._l2_tlb_latency = config.l2_tlb.latency

        # --- data-cache hierarchy -------------------------------------- #
        self._llc_predictor = self._build_llc_predictor()
        llc_listener = self._llc_predictor
        self._correlation_cache: Optional[_CorrelationCacheListener] = None
        self._correlation_tlb: Optional[_CorrelationTlbListener] = None
        if config.track_correlation:
            if (
                config.tlb_predictor != TLB_PRED_NONE
                or config.llc_predictor != LLC_PRED_NONE
            ):
                raise ValueError(
                    "track_correlation measures the *baseline* machine; "
                    "disable predictors"
                )
            self._correlation_tlb = _CorrelationTlbListener()
            self._correlation_cache = _CorrelationCacheListener(
                self, self._correlation_tlb
            )
            llc_listener = self._correlation_cache

        self.l1d = SetAssocCache(
            "L1D", config.l1d.num_sets, config.l1d.assoc, config.cache_policy
        )
        self.l2 = SetAssocCache(
            "L2", config.l2.num_sets, config.l2.assoc, config.cache_policy
        )
        self.llc = SetAssocCache(
            "LLC",
            config.llc.num_sets,
            config.llc.assoc,
            config.effective_llc_policy,
            listener=llc_listener,
            track_residency=config.track_residency,
        )
        self.hierarchy = CacheHierarchy(
            self.l1d,
            self.l2,
            self.llc,
            MainMemory(config.mem_latency),
            l1_latency=config.l1d.latency,
            l2_latency=config.l2.latency,
            llc_latency=config.llc.latency,
        )

        # --- virtual memory -------------------------------------------- #
        # Huge mappings are decided per 2 MB region by a seed-stable hash
        # (None at huge_fraction == 0: the table then behaves — and
        # performs — exactly as the pre-huge-page one).
        self._huge_policy = (
            huge_region_policy(config.huge_fraction, seed)
            if config.huge_fraction > 0
            else None
        )
        allocator = FrameAllocator(num_frames=config.phys_frames, seed=seed)
        self.page_table = RadixPageTable(
            allocator, huge_policy=self._huge_policy
        )
        # Every tenant's table shares one allocator: PFNs stay globally
        # unique, so the physically-indexed caches model real
        # inter-tenant interference.
        self.walker = PageTableWalker(
            self.page_table,
            PageWalkCaches(config.pwc_entries, config.pwc_latencies),
            self.hierarchy,
            table_factory=lambda asid: RadixPageTable(
                allocator, huge_policy=self._huge_policy
            ),
        )
        self._tlb_predictor = self._build_tlb_predictor(oracle_outcomes)
        if isinstance(self._tlb_predictor, DistanceTlbPrefetcher):
            # Prefetches resolve through the page table without faulting.
            self._tlb_predictor.resolver = self.page_table.lookup
        tlb_listener = self._tlb_predictor
        if self._correlation_tlb is not None:
            tlb_listener = self._correlation_tlb
        self.l1_itlb = Tlb(
            "L1-ITLB", config.l1_itlb.entries, config.l1_itlb.assoc,
            config.tlb_policy,
        )
        self.l1_dtlb = Tlb(
            "L1-DTLB", config.l1_dtlb.entries, config.l1_dtlb.assoc,
            config.tlb_policy,
        )
        self.l2_tlb = Tlb(
            "LLT",
            config.l2_tlb.entries,
            config.l2_tlb.assoc,
            config.tlb_policy,
            listener=tlb_listener,
            track_residency=config.track_residency,
        )
        # Shootdowns through the LLT must also drop the PWC's partial
        # walks for the region (the walker refills the LLT, so the LLT is
        # the TLB whose invalidations track walk state).
        self.l2_tlb.pwc = self.walker.pwc

        # Multi-tenant bookkeeping (context switches, shootdowns). Kept
        # out of result.raw unless a multi-tenant trace actually ran, so
        # single-tenant SimResults stay byte-stable.
        self.tenancy = Stats()

        # Per-access bound-method aliases (structures are fixed after
        # construction; saves repeated attribute chains in the hot loop).
        self._hier_access = self.hierarchy.access
        self._l2_tlb_lookup = self.l2_tlb.lookup
        self._l2_tlb_fill = self.l2_tlb.fill
        self._walker_walk = self.walker.walk

        # Same-page filter: consecutive accesses to one page skip the L1
        # TLB machinery. Correct because after any translate() the page is
        # resident in the L1 TLB (no listener there, so fills can't
        # bypass), nothing else touches that TLB in between, and for
        # order-based policies re-promoting the already-MRU entry is a
        # no-op — so only redundant bookkeeping is elided. Hit counters
        # and the Accessed bit are still maintained exactly. SRRIP hits
        # reset RRPV (not idempotent), so the filter stays off there.
        self._page_filter = config.tlb_policy in ("lru", "fifo", "random")
        self._last_ivpn: Optional[int] = None
        self._last_ientry = None
        self._last_dvpn: Optional[int] = None
        self._last_dentry = None
        self._itlb_stat = self.l1_itlb.stats.counters
        self._dtlb_stat = self.l1_dtlb.stats.counters

        # --- ground-truth references (Tables VI/VII) ------------------- #
        self.ref_llt: Optional[ReferenceStructure] = None
        self.ref_llc: Optional[ReferenceStructure] = None
        if config.track_reference:
            self.ref_llt = ReferenceStructure(
                "ref-LLT", config.l2_tlb.entries, config.l2_tlb.assoc
            )
            self.ref_llc = ReferenceStructure(
                "ref-LLC", config.llc.blocks, config.llc.assoc
            )
            self._attach_observers()

        if telemetry is not None:
            self._attach_telemetry()

    # ------------------------------------------------------------------ #
    # Predictor construction
    # ------------------------------------------------------------------ #
    def _build_context(self, oracle_outcomes=None) -> registry.BuildContext:
        return registry.BuildContext(
            context=self.context,
            oracle_outcomes=oracle_outcomes,
            llc_oracle_outcomes=self._llc_oracle_outcomes,
        )

    def _build_tlb_predictor(self, oracle_outcomes):
        """Registry dispatch for the LLT listener (see
        :mod:`repro.predictors.registry`). Coupling that needs machine
        state — the dpPred→cbPred PFN forwarding and the prefetcher's
        page-table resolver — stays here, after construction, exactly as
        the pre-registry chain wired it."""
        kind = self.config.tlb_predictor
        if kind == TLB_PRED_NONE:
            return None
        pred = registry.build(
            registry.KIND_TLB,
            kind,
            self.config,
            self._build_context(oracle_outcomes),
        )
        if isinstance(pred, DeadPagePredictor) and isinstance(
            self._llc_predictor, CorrelatingDeadBlockPredictor
        ):
            pred.pfn_sink = self._llc_predictor.notify_doa_page
        return pred

    def _build_llc_predictor(self):
        kind = self.config.llc_predictor
        if kind == LLC_PRED_NONE:
            return None
        return registry.build(
            registry.KIND_LLC, kind, self.config, self._build_context()
        )

    def _attach_observers(self) -> None:
        tlb_pred = self._tlb_predictor
        if tlb_pred is not None and hasattr(tlb_pred, "prediction_observer"):
            tlb_pred.prediction_observer = self.ref_llt.record_prediction
        llc_pred = self._llc_predictor
        if llc_pred is not None and hasattr(llc_pred, "prediction_observer"):
            llc_pred.prediction_observer = self.ref_llc.record_prediction

    def _attach_telemetry(self) -> None:
        """Wire the telemetry bundle in: probes into the predictors,
        every stats bag into the timeline sampler. Pure observation — no
        simulated state is touched."""
        probe = self._probe
        if probe is not None:
            for pred in (self._tlb_predictor, self._llc_predictor):
                if pred is not None and hasattr(pred, "probe"):
                    pred.probe = probe
                    shadow = getattr(pred, "shadow", None)
                    if shadow is not None:
                        shadow.probe = probe
        sampler = self._timeline
        if sampler is not None:
            sources = [
                ("llt", self.l2_tlb.stats),
                ("l1_itlb", self.l1_itlb.stats),
                ("l1_dtlb", self.l1_dtlb.stats),
                ("l1d", self.l1d.stats),
                ("l2", self.l2.stats),
                ("llc", self.llc.stats),
                ("walker", self.walker.stats),
                ("pwc", self.walker.pwc.stats),
                ("memory", self.hierarchy.memory.stats),
            ]
            if self._tlb_predictor is not None and hasattr(
                self._tlb_predictor, "stats"
            ):
                sources.append(("tlb_pred", self._tlb_predictor.stats))
            if self._llc_predictor is not None and hasattr(
                self._llc_predictor, "stats"
            ):
                sources.append(("llc_pred", self._llc_predictor.stats))
            for name, stats in sources:
                sampler.register(name, stats)

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def _translate(self, l1_tlb: Tlb, vpn: int, pc: int, now: int, asid: int):
        """Returns ``(pfn, exposed_translation_penalty)``."""
        pfn = l1_tlb.lookup(vpn, now, asid)
        if pfn is not None:
            return pfn, 0.0
        if self.ref_llt is not None:
            self.ref_llt.access(
                vpn if asid == 0 else (asid << ASID_SHIFT) | vpn, now
            )
        pfn = self._l2_tlb_lookup(vpn, now, asid)
        if pfn is not None:
            penalty = self._l2_tlb_hit_penalty
        else:
            # The PC travels in the LLT MSHR to be available at fill time.
            pfn, walk_latency, huge_base = self._walker_walk(vpn, now, asid)
            # Stored as the combined (asid, vpn) key — raw VPN at ASID 0 —
            # so the correlation listener can classify per address space.
            self.pfn_to_vpn[pfn] = tlb_key(vpn, asid)
            probe = self._probe
            if probe is not None:
                probe.emit(now, EV_WALK, vpn, walk_latency)
            penalty = (
                self._l2_tlb_latency + walk_latency * self._walk_exposure
            )
            if huge_base is None:
                self._l2_tlb_fill(vpn, pfn, pc, now, asid)
            else:
                # Only the LLT holds the 2 MB entry; the L1 TLBs below get
                # splintered 4 KB granules, so their geometry, the
                # same-page filter, and the batched engine's L1 mirrors
                # are untouched by huge mappings.
                self._l2_tlb_fill(vpn, huge_base, pc, now, asid, huge=True)
        l1_tlb.fill(vpn, pfn, pc, now, asid)
        return pfn, penalty

    def access(
        self, pc: int, vaddr: int, is_write: bool, gap: int, asid: int = 0
    ) -> None:
        """Simulate one memory instruction preceded by ``gap`` non-memory
        instructions, issued by address space ``asid``."""
        self.now = now = self.now + 1
        self.instructions += gap + 1
        self.context.pc = pc
        translate = self._translate

        # Instruction-side translation (small code footprint; nearly
        # always an L1 I-TLB hit after warm-up). The same-page filter
        # caches the *combined* (asid, vpn) key, so a context switch to a
        # tenant sharing the VPN can never reuse the wrong entry.
        ivpn = pc >> PAGE_SHIFT
        ikey = ivpn if asid == 0 else (asid << ASID_SHIFT) | ivpn
        if ikey == self._last_ivpn:
            self._itlb_stat["hits"] += 1
            self._last_ientry.accessed = True
            penalty = 0.0
        else:
            _, penalty = translate(self.l1_itlb, ivpn, pc, now, asid)
            if self._page_filter:
                self._last_ivpn = ikey
                self._last_ientry = self.l1_itlb.probe(ivpn, asid)

        # Data-side translation.
        dvpn = vaddr >> PAGE_SHIFT
        dkey = dvpn if asid == 0 else (asid << ASID_SHIFT) | dvpn
        if dkey == self._last_dvpn:
            self._dtlb_stat["hits"] += 1
            dentry = self._last_dentry
            dentry.accessed = True
            pfn = dentry.pfn
        else:
            pfn, dpenalty = translate(self.l1_dtlb, dvpn, pc, now, asid)
            penalty += dpenalty
            if self._page_filter:
                self._last_dvpn = dkey
                self._last_dentry = self.l1_dtlb.probe(dvpn, asid)

        # Physical data access.
        block = (pfn << _BLOCK_OFFSET_BITS) | (
            (vaddr >> BLOCK_SHIFT) & _BLOCK_IN_PAGE_MASK
        )
        _, level = self._hier_access(block, now, is_write)
        if level != "l1":
            if level == "l2":
                penalty += self._l2_hit_penalty
            else:
                penalty += (
                    self._llc_hit_penalty
                    if level == "llc"
                    else self._mem_penalty
                )
                if self.ref_llc is not None:
                    self.ref_llc.access(block, now)

        self.cycles += (gap + 1) * self._base_cpi + penalty

    def run(self, trace, engine: Optional[str] = None) -> SimResult:
        """Simulate a whole trace (a :class:`~repro.workloads.trace.Trace`).

        ``engine`` overrides the engine for this run; otherwise the
        process default applies (see :func:`repro.sim.engine.resolve_engine`
        — CLI ``--engine``, then ``REPRO_ENGINE``, then batched). Both
        engines are bit-identical; the batched one falls back to scalar
        when its fast path is not sound for this machine or trace.
        """
        from repro.sim.engine import ENGINE_BATCHED, resolve_engine, run_batched

        if resolve_engine(engine) == ENGINE_BATCHED:
            return run_batched(self, trace)
        self.engine_stats = {"engine": "scalar"}
        return self.run_scalar(trace)

    def run_scalar(self, trace) -> SimResult:
        """Reference per-record execution loop (the scalar engine)."""
        if getattr(trace, "asids", None) is not None:
            return self._run_scalar_tenants(trace)
        access = self.access
        sampler = self._timeline
        if sampler is None:
            for pc, vaddr, is_write, gap in trace.iter_records():
                access(pc, vaddr, is_write, gap)
            return self.finalize(trace.name)
        # Telemetry loop: identical simulation, plus an interval check per
        # record. Intervals close on the first access at or past each
        # boundary (instruction counts jump by gap+1, so marks are
        # boundary-aligned, not exact multiples).
        interval = sampler.interval
        next_at = interval
        for pc, vaddr, is_write, gap in trace.iter_records():
            access(pc, vaddr, is_write, gap)
            if self.instructions >= next_at:
                sampler.sample(self.instructions, self.cycles)
                next_at = self.instructions + interval
        if not sampler.marks or sampler.marks[-1] != self.instructions:
            sampler.sample(self.instructions, self.cycles)
        return self.finalize(trace.name)

    def _run_scalar_tenants(self, trace) -> SimResult:
        """Scalar loop for ASID-carrying traces: every record passes its
        tenant's ASID into :meth:`access`, and ASID changes between
        consecutive records become context-switch events (optionally
        shooting down the outgoing tenant, per ``shootdown_on_switch``)."""
        access = self.access
        sampler = self._timeline
        interval = sampler.interval if sampler is not None else None
        next_at = interval
        current = -1
        seen = set()
        tenancy = self.tenancy
        for (pc, vaddr, is_write, gap), asid in zip(
            trace.iter_records(), trace.iter_asids()
        ):
            if asid != current:
                if current >= 0:
                    self._context_switch(current, asid)
                if asid not in seen:
                    seen.add(asid)
                    tenancy.add("tenants_seen")
                current = asid
            access(pc, vaddr, is_write, gap, asid)
            if sampler is not None and self.instructions >= next_at:
                sampler.sample(self.instructions, self.cycles)
                next_at = self.instructions + interval
        if sampler is not None and (
            not sampler.marks or sampler.marks[-1] != self.instructions
        ):
            sampler.sample(self.instructions, self.cycles)
        return self.finalize(trace.name)

    def _context_switch(self, outgoing: int, incoming: int) -> None:
        tenancy = self.tenancy
        tenancy.add("context_switches")
        probe = self._probe
        if probe is not None:
            probe.emit(self.now, EV_CTX_SWITCH, outgoing, incoming)
        if self.config.shootdown_on_switch:
            self.shootdown_asid(outgoing)

    # ------------------------------------------------------------------ #
    # TLB shootdowns
    # ------------------------------------------------------------------ #
    def _reset_page_filter(self) -> None:
        # The same-page filter carries live TlbEntry references; any
        # shootdown may have invalidated them, so drop the cached state
        # (the next access re-probes and repopulates it).
        self._last_ivpn = None
        self._last_ientry = None
        self._last_dvpn = None
        self._last_dentry = None

    def shootdown_page(self, vpn: int, asid: int = 0) -> None:
        """INVLPG: drop one translation (all TLB levels + PWC region)."""
        now = self.now
        self.tenancy.add("shootdowns")
        for tlb in (self.l1_itlb, self.l1_dtlb, self.l2_tlb):
            tlb.invalidate(vpn, now, asid)
        probe = self._probe
        if probe is not None:
            probe.emit(now, EV_SHOOTDOWN, asid, "page")
        self._reset_page_filter()

    def shootdown_asid(self, asid: int) -> int:
        """Drop every translation belonging to ``asid`` (ASID recycle);
        returns the number of TLB entries dropped across all levels."""
        now = self.now
        self.tenancy.add("shootdowns")
        dropped = 0
        for tlb in (self.l1_itlb, self.l1_dtlb, self.l2_tlb):
            dropped += tlb.invalidate_asid(asid, now)
        probe = self._probe
        if probe is not None:
            probe.emit(now, EV_SHOOTDOWN, asid, "asid")
        self._reset_page_filter()
        return dropped

    def shootdown_all(self, keep_global: bool = True) -> int:
        """Broadcast shootdown: every TLB level and the whole PWC;
        returns the number of TLB entries dropped across all levels."""
        now = self.now
        self.tenancy.add("shootdowns")
        dropped = 0
        for tlb in (self.l1_itlb, self.l1_dtlb, self.l2_tlb):
            dropped += tlb.invalidate_all(now, keep_global=keep_global)
        probe = self._probe
        if probe is not None:
            probe.emit(now, EV_SHOOTDOWN, -1, "all")
        self._reset_page_filter()
        return dropped

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def finalize(self, workload: str = "unnamed") -> SimResult:
        now = self.now
        self.l2_tlb.flush_residency(now)
        self.hierarchy.finalize(now)
        if self.ref_llt is not None:
            self.ref_llt.finalize()
        if self.ref_llc is not None:
            self.ref_llc.finalize()

        llt_stats = self.l2_tlb.stats
        shadow_hits = llt_stats.get("victim_buffer_hits")
        result = SimResult(
            workload=workload,
            config_name=self._config_label(),
            instructions=self.instructions,
            cycles=self.cycles,
            llt_hits=llt_stats.get("hits"),
            llt_misses=llt_stats.get("misses") - shadow_hits,
            llt_shadow_hits=shadow_hits,
            llt_bypasses=llt_stats.get("bypasses"),
            llc_hits=self.llc.stats.get("hits"),
            llc_misses=self.llc.stats.get("misses"),
            llc_bypasses=self.llc.stats.get("bypasses"),
            mem_accesses=self.hierarchy.memory.stats.get("accesses"),
            walk_cycles=self.walker.stats.get("walk_cycles"),
            walks=self.walker.stats.get("walks"),
        )
        if self.ref_llt is not None:
            result.tlb_accuracy = self.ref_llt.accuracy
            result.tlb_coverage = self.ref_llt.coverage
        if self.ref_llc is not None:
            result.llc_accuracy = self.ref_llc.accuracy
            result.llc_coverage = self.ref_llc.coverage
        if self.config.track_residency:
            result.llt_residency = self.l2_tlb.residency.summary
            result.llc_residency = self.llc.residency.summary
        if self._correlation_cache is not None:
            result.doa_blocks_on_doa_page = (
                self._correlation_cache.doa_blocks_on_doa_page
            )
            result.doa_blocks_classified = (
                self._correlation_cache.doa_blocks_classified
            )
        result.raw = {
            "llt": llt_stats.snapshot(),
            "l1d": self.l1d.stats.snapshot(),
            "l2": self.l2.stats.snapshot(),
            "llc": self.llc.stats.snapshot(),
            "walker": self.walker.stats.snapshot(),
            "memory": self.hierarchy.memory.stats.snapshot(),
        }
        # Multi-tenant runs carry their scheduling/shootdown counters;
        # the key is absent on single-tenant runs so their serialized
        # results stay byte-identical to pre-scenario-layer ones.
        if self.tenancy.counters:
            result.raw["tenants"] = self.tenancy.snapshot()
        return result

    def _config_label(self) -> str:
        return (
            f"{self.config.name}/tlb={self.config.tlb_predictor}"
            f"/llc={self.config.llc_predictor}"
        )

    # ------------------------------------------------------------------ #
    # Oracle support
    # ------------------------------------------------------------------ #
    @property
    def oracle_recorder(self) -> Optional[DoaRecordingListener]:
        """Pass-1 TLB recorder when running the oracle's first pass."""
        if isinstance(self._tlb_predictor, DoaRecordingListener):
            return self._tlb_predictor
        return None

    @property
    def llc_oracle_recorder(self) -> Optional[DoaRecordingCacheListener]:
        """Pass-1 LLC recorder when running the oracle's first pass."""
        if isinstance(self._llc_predictor, DoaRecordingCacheListener):
            return self._llc_predictor
        return None

    @property
    def tlb_predictor(self):
        return self._tlb_predictor

    @property
    def llc_predictor(self):
        return self._llc_predictor
