"""Multi-tenant trace composition: interleaving single-process traces.

The paper evaluates a single address space; consolidated servers run many.
This module builds *mix* traces by interleaving the suite's single-tenant
component traces under a deterministic round-robin scheduler, tagging each
record with the tenant's ASID. The simulated machine replays the schedule
(:meth:`repro.sim.machine.Machine._run_scalar_tenants`), switching address
spaces — and optionally shooting down TLBs — at every tenant boundary.

Two invariants make mixes comparable to their components:

* each component trace is *exactly* the single-tenant trace of the same
  (workload, seed, per-tenant budget) — ``get_trace`` memoisation and the
  disk cache are shared, and per-tenant metrics can be diffed against the
  standalone run;
* the schedule depends only on ``(components, budget, seed)`` — the
  quantum jitter draws from a ``machine_seed_for``-derived stream, so
  mixes are byte-stable across processes, resume, and the serve path.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.workloads.synthetic import Workload
from repro.workloads.trace import Trace

#: Accesses a tenant runs before the scheduler considers switching. Small
#: enough that mixes context-switch thousands of times per default budget,
#: large enough that each quantum spans many pages (realistic timeslices).
DEFAULT_QUANTUM = 1024

#: Fractional quantum jitter: each slice runs quantum * U(1-j, 1+j)
#: accesses, so tenants drift out of phase instead of beating in lockstep.
DEFAULT_JITTER = 0.25

#: Component workloads per mix, in ASID order (tenant i gets asid i+1;
#: asid 0 is reserved for the classic single-process machine).
MIX_COMPONENTS: Dict[str, Tuple[str, ...]] = {
    "mix2": ("bfs", "mcf"),
    "mix4": ("bfs", "mcf", "pr", "cg.B"),
}


def mix_names() -> List[str]:
    """The registered mix workloads ("mix2", "mix4")."""
    return list(MIX_COMPONENTS)


class TenantScheduler:
    """Deterministic round-robin interleaver over component traces.

    Walks the tenants in order, emitting one jittered quantum from each
    tenant's trace per turn; tenants that exhaust their trace drop out of
    the rotation until every record has been scheduled. The output is a
    single :class:`Trace` whose ``asids`` array carries the schedule.
    """

    def __init__(
        self,
        quantum: int = DEFAULT_QUANTUM,
        jitter: float = DEFAULT_JITTER,
        seed: int = 42,
    ):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.quantum = quantum
        self.jitter = jitter
        self.seed = seed

    def _slice_lengths(self, rng: np.random.RandomState) -> int:
        if self.jitter == 0.0:
            return self.quantum
        lo = 1.0 - self.jitter
        hi = 1.0 + self.jitter
        return max(1, int(self.quantum * rng.uniform(lo, hi)))

    def schedule(
        self, name: str, components: Sequence[Tuple[int, Trace]]
    ) -> Trace:
        """Interleave ``(asid, trace)`` components into one tagged trace."""
        if not components:
            raise ValueError("scheduler needs at least one component")
        # Same seed derivation as the machine's frame allocator: workload
        # seeds and schedule randomness stay decorrelated (see
        # repro.sim.runner.machine_seed_for) yet fully reproducible.
        from repro.sim.runner import machine_seed_for

        rng = np.random.RandomState(machine_seed_for(self.seed) & 0x7FFFFFFF)
        cursors = [0] * len(components)
        pcs: List[np.ndarray] = []
        vaddrs: List[np.ndarray] = []
        writes: List[np.ndarray] = []
        gaps: List[np.ndarray] = []
        asids: List[np.ndarray] = []
        live = True
        while live:
            live = False
            for i, (asid, trace) in enumerate(components):
                start = cursors[i]
                if start >= len(trace):
                    continue
                end = min(start + self._slice_lengths(rng), len(trace))
                cursors[i] = end
                live = True
                pcs.append(trace.pcs[start:end])
                vaddrs.append(trace.vaddrs[start:end])
                writes.append(trace.writes[start:end])
                gaps.append(trace.gaps[start:end])
                asids.append(np.full(end - start, asid, dtype=np.uint32))
        return Trace(
            name,
            np.concatenate(pcs),
            np.concatenate(vaddrs),
            np.concatenate(writes),
            np.concatenate(gaps),
            np.concatenate(asids),
        )


def build_mix_trace(
    name: str,
    budget: int,
    seed: int = 42,
    quantum: int = DEFAULT_QUANTUM,
    jitter: float = DEFAULT_JITTER,
) -> Trace:
    """The ``name`` mix trace: interleaved suite components, ASID-tagged.

    ``budget`` is split evenly across components, so a mix trace is the
    same total length as the single-tenant trace it replaces and each
    component is byte-identical to ``get_trace(component, budget // n,
    seed)`` — the standalone run every per-tenant comparison diffs
    against.
    """
    component_names = MIX_COMPONENTS.get(name)
    if component_names is None:
        raise ValueError(
            f"unknown mix {name!r}; choose from {mix_names()}"
        )
    # Lazy: suite imports this module for registration.
    from repro.workloads.suite import get_trace

    per_tenant = budget // len(component_names)
    if per_tenant <= 0:
        raise ValueError(
            f"budget {budget} too small for {len(component_names)} tenants"
        )
    components = [
        (asid, get_trace(comp, per_tenant, seed))
        for asid, comp in enumerate(component_names, start=1)
    ]
    scheduler = TenantScheduler(quantum=quantum, jitter=jitter, seed=seed)
    return scheduler.schedule(name, components)


class MixWorkload(Workload):
    """Workload-API adapter over :func:`build_mix_trace`.

    Registered in :data:`repro.workloads.suite.MIX_WORKLOAD_CLASSES`, so
    mixes flow through ``get_trace`` — memoised, disk-cached (the npz
    round-trips the asids array), and servable — like any suite row.
    Note ``make_workload`` hands mixes the *run* seed verbatim (no
    per-index decorrelation): the components must be byte-identical to
    their standalone single-tenant traces.
    """

    def generate(self, budget: int) -> Trace:
        return build_mix_trace(self.name, budget, self.seed)


class Mix2Workload(MixWorkload):
    name = "mix2"
    description = "bfs + mcf interleaved in two address spaces"


class Mix4Workload(MixWorkload):
    name = "mix4"
    description = "bfs + mcf + pr + cg.B interleaved in four address spaces"
