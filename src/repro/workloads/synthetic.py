"""Workload framework: address-space layout, access primitives, base class.

Each workload is an *instrumented kernel*: it executes (a scaled version
of) the real algorithm in Python/numpy and emits the memory references its
core data structures would generate. DESIGN.md §3 explains why this
substitution preserves the dead-page/dead-block behaviour the paper
studies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

import numpy as np

from repro.workloads.trace import Trace, TraceBuilder, pc_for_site

#: Base of the synthetic data segment.
DATA_BASE = 0x1000_0000
#: Alignment/padding between regions (2 MB) so regions never share pages.
REGION_ALIGN = 1 << 21


class AddressSpace:
    """Lays out named data regions in the virtual address space."""

    def __init__(self, base: int = DATA_BASE):
        self._next = base
        self._regions: Dict[str, tuple] = {}

    def region(self, name: str, size_bytes: int) -> int:
        """Reserve ``size_bytes`` for ``name``; returns the base address."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if size_bytes <= 0:
            raise ValueError(f"region size must be positive, got {size_bytes}")
        base = self._next
        self._regions[name] = (base, size_bytes)
        padded = -(-size_bytes // REGION_ALIGN) * REGION_ALIGN
        self._next += padded
        return base

    def base(self, name: str) -> int:
        return self._regions[name][0]

    @property
    def footprint_bytes(self) -> int:
        return sum(size for _, size in self._regions.values())


def addresses(base: int, indices: np.ndarray, element_size: int) -> np.ndarray:
    """Virtual addresses of ``indices`` into an array at ``base``."""
    return base + indices.astype(np.uint64) * np.uint64(element_size)


def sequential_indices(count: int, start: int = 0) -> np.ndarray:
    return np.arange(start, start + count, dtype=np.uint64)


def mix_pcs(
    rng: np.random.RandomState,
    primary_pc: int,
    shared_pc: int,
    count: int,
    shared_fraction: float,
) -> np.ndarray:
    """PC array where a fraction of accesses issue from a *shared* PC.

    Real applications touch several data structures through common inlined
    helpers (iterators, memcpy, hash probes), so one PC's fills mix hot and
    cold pages. This is the regime the paper's two-dimensional PC x VPN
    pHIST index is designed for — and where PC-only signatures (SHiP)
    mispredict (paper Table VI's low SHiP-TLB accuracies).
    """
    pcs = np.full(count, primary_pc, dtype=np.uint64)
    if shared_fraction > 0:
        mask = rng.rand(count) < shared_fraction
        pcs[mask] = shared_pc
    return pcs


def strided_indices(count: int, stride: int, start: int = 0) -> np.ndarray:
    return (start + np.arange(count, dtype=np.uint64) * stride)


class Workload(ABC):
    """A named, seeded, budgeted trace generator."""

    #: Short identifier matching the paper's Table II row.
    name: str = "abstract"
    #: One-line description (mirrors Table II's Description column).
    description: str = ""

    def __init__(self, seed: int = 42):
        self.seed = seed

    @abstractmethod
    def generate(self, budget: int) -> Trace:
        """Produce a trace with at most ``budget`` memory accesses."""

    def _builder(self, budget: int) -> TraceBuilder:
        return TraceBuilder(self.name, budget)

    def _rng(self) -> np.random.RandomState:
        return np.random.RandomState(self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(seed={self.seed})"


class StreamWorkload(Workload):
    """A pure streaming sweep — the simplest possible workload, used in
    tests and the quickstart example. Every page is touched once per sweep;
    with a footprint far beyond the LLT reach all pages are DOA."""

    name = "stream"
    description = "sequential sweep over a large array"

    def __init__(self, seed: int = 42, array_bytes: int = 1 << 22, stride: int = 64):
        super().__init__(seed)
        self.array_bytes = array_bytes
        self.stride = stride

    def generate(self, budget: int) -> Trace:
        builder = self._builder(budget)
        space = AddressSpace()
        base = space.region("stream", self.array_bytes)
        elems = self.array_bytes // self.stride
        pc = pc_for_site(0)
        while not builder.full:
            idx = sequential_indices(min(elems, builder.remaining))
            builder.emit_chunk(pc, addresses(base, idx, self.stride), gap=3)
        return builder.build()


class LocalityWorkload(Workload):
    """An L1-resident working set with no same-page runs — the regime the
    paper's premise describes (L1 structures absorb essentially every
    reference) and the batched engine's showcase.

    Four pages x 12 lines each (48 blocks) are swept page-major: the page
    changes on *every* record, so the scalar engine's same-page filter
    never applies and each record pays full D-TLB + L1D lookups, yet after
    one warm-up sweep every record hits in the L1 D-TLB and L1D. The
    footprint fits the smallest shipped geometry (fast profile: 16-entry
    4-way D-TLB -> 4 vpns land in 4 distinct sets; 8-set/8-way L1D -> at
    most 8 of the 48 blocks share a set) and therefore every larger one.
    """

    name = "locality"
    description = "L1-resident page-interleaved sweep (batched-engine showcase)"

    PAGES = 4
    LINES_PER_PAGE = 12

    def generate(self, budget: int) -> Trace:
        builder = self._builder(budget)
        space = AddressSpace()
        base = space.region("hot", self.PAGES * 4096)
        # One period: line-major outer, page-minor inner -> the page
        # alternates every access.
        lines = np.repeat(
            np.arange(self.LINES_PER_PAGE, dtype=np.uint64), self.PAGES
        )
        pages = np.tile(
            np.arange(self.PAGES, dtype=np.uint64), self.LINES_PER_PAGE
        )
        period = self.PAGES * self.LINES_PER_PAGE
        reps = -(-budget // period)
        vaddrs = np.tile(
            base + pages * np.uint64(4096) + lines * np.uint64(64), reps
        )[:budget]
        # One static access site per page; every 4th access is a write.
        pcs = np.tile(
            np.array(
                [pc_for_site(p) for p in range(self.PAGES)], dtype=np.uint64
            ),
            reps * self.LINES_PER_PAGE,
        )[:budget]
        writes = (np.arange(budget) % 4) == 0
        gaps = np.full(budget, 2, dtype=np.uint16)
        builder.emit_interleaved(pcs, vaddrs, writes, gaps)
        return builder.build()


class RandomWorkload(Workload):
    """Uniform random accesses — unpredictable by construction; used in
    tests to probe predictor worst cases."""

    name = "urandom"
    description = "uniform random accesses over a large array"

    def __init__(self, seed: int = 42, array_bytes: int = 1 << 22):
        super().__init__(seed)
        self.array_bytes = array_bytes

    def generate(self, budget: int) -> Trace:
        builder = self._builder(budget)
        space = AddressSpace()
        base = space.region("rand", self.array_bytes)
        rng = self._rng()
        elems = self.array_bytes // 8
        idx = rng.randint(0, elems, size=budget).astype(np.uint64)
        builder.emit_chunk(pc_for_site(0), addresses(base, idx, 8), gap=3)
        return builder.build()
