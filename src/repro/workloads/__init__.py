"""Workload substrate: traces, synthetic kernels, the Table II suite."""

from repro.workloads.suite import (
    DEFAULT_BUDGET,
    WORKLOAD_CLASSES,
    clear_trace_cache,
    get_trace,
    make_workload,
    workload_names,
)
from repro.workloads.synthetic import (
    AddressSpace,
    RandomWorkload,
    StreamWorkload,
    Workload,
)
from repro.workloads.trace import Trace, TraceBuilder, pc_for_site

__all__ = [
    "DEFAULT_BUDGET",
    "WORKLOAD_CLASSES",
    "clear_trace_cache",
    "get_trace",
    "make_workload",
    "workload_names",
    "AddressSpace",
    "RandomWorkload",
    "StreamWorkload",
    "Workload",
    "Trace",
    "TraceBuilder",
    "pc_for_site",
]
