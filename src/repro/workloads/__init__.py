"""Workload substrate: traces, synthetic kernels, the Table II suite."""

from repro.workloads.suite import (
    DEFAULT_BUDGET,
    WORKLOAD_CLASSES,
    all_workload_names,
    clear_trace_cache,
    get_trace,
    make_workload,
    workload_names,
)
from repro.workloads.tenants import (
    MIX_COMPONENTS,
    TenantScheduler,
    build_mix_trace,
    mix_names,
)
from repro.workloads.synthetic import (
    AddressSpace,
    RandomWorkload,
    StreamWorkload,
    Workload,
)
from repro.workloads.trace import Trace, TraceBuilder, pc_for_site

__all__ = [
    "DEFAULT_BUDGET",
    "MIX_COMPONENTS",
    "TenantScheduler",
    "WORKLOAD_CLASSES",
    "all_workload_names",
    "build_mix_trace",
    "clear_trace_cache",
    "get_trace",
    "make_workload",
    "mix_names",
    "workload_names",
    "AddressSpace",
    "RandomWorkload",
    "StreamWorkload",
    "Workload",
    "Trace",
    "TraceBuilder",
    "pc_for_site",
]
