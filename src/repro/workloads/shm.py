"""Zero-copy trace transport for the parallel runner.

The matrix executor used to rely on each worker regenerating (or disk-
loading) its traces, and any pickled fallback shipped megabytes of numpy
per cell. Instead, the parent publishes each distinct trace's four arrays
once into one ``multiprocessing.shared_memory`` segment and hands workers
a small descriptor (segment name + per-field dtype/count/offset). Workers
attach read-only numpy views — no copy, no pickling — and register the
reconstructed :class:`~repro.workloads.trace.Trace` with the suite's
shared-trace registry so the ordinary ``get_trace`` path finds it.

Lifecycle: the parent owns every segment and unlinks on ``close()`` (the
matrix executor's ``finally``). Workers only ever attach; attached
segments are kept referenced for the worker's lifetime and explicitly
deregistered from :mod:`multiprocessing.resource_tracker`, which would
otherwise unlink the parent's segments when the first worker exits.

Disable with ``REPRO_SHM=0`` (the runner also degrades silently if shared
memory is unavailable, e.g. a read-only ``/dev/shm``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.workloads.trace import Trace

_ALIGN = 8


def shm_enabled() -> bool:
    """Shared-memory transport toggle (``REPRO_SHM=0`` disables)."""
    return os.environ.get("REPRO_SHM", "1") != "0"


def _fields(trace: Trace) -> List[Tuple[str, np.ndarray]]:
    fields = [
        ("pcs", trace.pcs),
        ("vaddrs", trace.vaddrs),
        ("writes", trace.writes),
        ("gaps", trace.gaps),
    ]
    if trace.asids is not None:
        fields.append(("asids", trace.asids))
    return fields


class SharedTraceArena:
    """Parent-side owner of the published trace segments."""

    def __init__(self) -> None:
        self._segments: List = []
        self.descriptors: List[dict] = []

    def publish(self, key: Tuple[str, int, int], trace: Trace) -> dict:
        """Copy ``trace`` into one fresh segment; returns its descriptor.

        ``key`` is the suite memo key ``(name, budget, seed)`` the workers
        will serve this trace under.
        """
        from multiprocessing import shared_memory

        fields = []
        offset = 0
        for field, arr in _fields(trace):
            arr = np.ascontiguousarray(arr)
            fields.append((field, arr))
            offset = -(-(offset + arr.nbytes) // _ALIGN) * _ALIGN
        seg = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        self._segments.append(seg)
        descriptor = {
            "shm": seg.name,
            "key": list(key),
            "name": trace.name,
            "fields": [],
        }
        offset = 0
        for field, arr in fields:
            view = np.ndarray(arr.shape, arr.dtype, buffer=seg.buf, offset=offset)
            view[:] = arr
            descriptor["fields"].append(
                {
                    "field": field,
                    "dtype": arr.dtype.str,
                    "count": int(arr.shape[0]),
                    "offset": offset,
                }
            )
            offset = -(-(offset + arr.nbytes) // _ALIGN) * _ALIGN
        self.descriptors.append(descriptor)
        return descriptor

    def close(self) -> None:
        """Release and unlink every published segment (parent teardown)."""
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._segments.clear()
        self.descriptors.clear()


#: Worker-side: attached segments, keyed by name so repeated initializer
#: runs (pool rebuild after a crash) don't re-attach, and referenced for
#: the process lifetime so the numpy views stay backed.
_attached: Dict[str, object] = {}


def attach_trace(descriptor: dict) -> Optional[Trace]:
    """Worker-side: map a published segment into a zero-copy Trace.

    Returns None if the segment cannot be attached (e.g. the parent died
    and unlinked it); callers fall back to ordinary trace generation.
    """
    from multiprocessing import resource_tracker, shared_memory

    name = descriptor["shm"]
    seg = _attached.get(name)
    if seg is None:
        # Python 3.11's SharedMemory has no track= parameter: attaching
        # registers the segment with the (fork-shared) resource tracker,
        # which would unlink it — yanking it from under the parent and
        # sibling workers — when this worker exits. The parent owns the
        # lifecycle, so suppress registration for the attach. (Plain
        # unregister-after-attach is wrong here: the tracker is one
        # process shared by all workers, and the second worker's
        # unregister of an already-removed name raises inside it.)
        original_register = resource_tracker.register

        def _no_shm_register(rname, rtype):
            if rtype != "shared_memory":
                original_register(rname, rtype)

        resource_tracker.register = _no_shm_register
        try:
            seg = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return None
        finally:
            resource_tracker.register = original_register
        _attached[name] = seg
    arrays = {}
    for field in descriptor["fields"]:
        arr = np.ndarray(
            (field["count"],),
            np.dtype(field["dtype"]),
            buffer=seg.buf,
            offset=field["offset"],
        )
        arr.flags.writeable = False
        arrays[field["field"]] = arr
    return Trace(
        descriptor["name"],
        arrays["pcs"],
        arrays["vaddrs"],
        arrays["writes"],
        arrays["gaps"],
        arrays.get("asids"),
    )


def detach_all() -> None:
    """Close every attached segment (worker teardown/test helper)."""
    for seg in _attached.values():
        try:
            seg.close()
        except Exception:
            pass
    _attached.clear()
