"""The 14-workload evaluation suite (paper Table II), plus trace caching.

Traces are deterministic in (workload, seed, budget) and are memoised
process-wide so the many configurations of an experiment share one trace.
"""

from __future__ import annotations

import os
from typing import Dict, List, Type

from repro.workloads.graphs import (
    BetweennessCentrality,
    Bfs,
    ConnectedComponents,
    Graph500,
    KCore,
    MaximalIndependentSet,
    PageRank,
    Sssp,
    TriangleCounting,
)
from repro.workloads.spec_like import (
    CactusAdm,
    Canneal,
    ConjugateGradient,
    Lbm,
    Mcf,
)
from repro.workloads.synthetic import Workload
from repro.workloads.trace import Trace

#: Table II order.
WORKLOAD_CLASSES: Dict[str, Type[Workload]] = {
    "cactusADM": CactusAdm,
    "cc": ConnectedComponents,
    "cg.B": ConjugateGradient,
    "sssp": Sssp,
    "lbm": Lbm,
    "Triangle": TriangleCounting,
    "KCore": KCore,
    "canneal": Canneal,
    "pr": PageRank,
    "graph500": Graph500,
    "bfs": Bfs,
    "bc": BetweennessCentrality,
    "mis": MaximalIndependentSet,
    "mcf": Mcf,
}

#: Default per-run access budget for the fast profile. Large enough to
#: reach predictor steady state on the scaled structures, small enough
#: that a full 14-workload experiment runs in minutes of pure Python.
#: Override with the REPRO_BUDGET environment variable.
DEFAULT_BUDGET = int(os.environ.get("REPRO_BUDGET", "120000"))

_trace_cache: Dict[tuple, Trace] = {}


def workload_names() -> List[str]:
    """All 14 workloads in Table II order."""
    return list(WORKLOAD_CLASSES)


def make_workload(name: str, seed: int = 42) -> Workload:
    try:
        cls = WORKLOAD_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        ) from None
    # Decorrelate workloads sharing a generator family: each gets its own
    # stream of graph/table randomness derived from the suite seed.
    index = list(WORKLOAD_CLASSES).index(name)
    return cls(seed=seed + 101 * index)


def get_trace(name: str, budget: int = DEFAULT_BUDGET, seed: int = 42) -> Trace:
    """Deterministic, memoised trace for ``name``."""
    key = (name, budget, seed)
    trace = _trace_cache.get(key)
    if trace is None:
        trace = make_workload(name, seed).generate(budget)
        _trace_cache[key] = trace
    return trace


def clear_trace_cache() -> None:
    _trace_cache.clear()
