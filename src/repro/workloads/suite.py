"""The 14-workload evaluation suite (paper Table II), plus trace caching.

Traces are deterministic in (workload, seed, budget) and are memoised
process-wide so the many configurations of an experiment share one trace.
The memo is a bounded LRU (``REPRO_TRACE_CACHE_MAX`` traces, default 32):
a multi-budget/multi-seed sweep would otherwise pin hundreds of MB of
numpy arrays for traces it will never touch again. When the persistent
disk cache (:mod:`repro.sim.diskcache`) is enabled, generated traces are
also stored as ``.npz`` and reloaded across processes.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Type

from repro.workloads.graphs import (
    BetweennessCentrality,
    Bfs,
    ConnectedComponents,
    Graph500,
    KCore,
    MaximalIndependentSet,
    PageRank,
    Sssp,
    TriangleCounting,
)
from repro.workloads.spec_like import (
    CactusAdm,
    Canneal,
    ConjugateGradient,
    Lbm,
    Mcf,
)
from repro.workloads.synthetic import (
    LocalityWorkload,
    RandomWorkload,
    StreamWorkload,
    Workload,
)
from repro.workloads.tenants import Mix2Workload, Mix4Workload
from repro.workloads.trace import Trace

#: Table II order.
WORKLOAD_CLASSES: Dict[str, Type[Workload]] = {
    "cactusADM": CactusAdm,
    "cc": ConnectedComponents,
    "cg.B": ConjugateGradient,
    "sssp": Sssp,
    "lbm": Lbm,
    "Triangle": TriangleCounting,
    "KCore": KCore,
    "canneal": Canneal,
    "pr": PageRank,
    "graph500": Graph500,
    "bfs": Bfs,
    "bc": BetweennessCentrality,
    "mis": MaximalIndependentSet,
    "mcf": Mcf,
}

#: Auxiliary kernels resolvable by name (tests, benchmarks, demos) but
#: deliberately *not* part of the Table II suite: ``workload_names()``
#: stays the paper's 14 rows and experiment sweeps are unaffected.
EXTRA_WORKLOAD_CLASSES: Dict[str, Type[Workload]] = {
    "stream": StreamWorkload,
    "urandom": RandomWorkload,
    "locality": LocalityWorkload,
}

#: Multi-tenant mixes (ASID-tagged interleavings of suite traces). Kept
#: out of both dicts above: mixes must receive the *run* seed verbatim —
#: their components are fetched through ``get_trace(component, ...,
#: seed)`` and must match the standalone single-tenant traces — so
#: ``make_workload``'s per-index seed decorrelation must not apply.
MIX_WORKLOAD_CLASSES: Dict[str, Type[Workload]] = {
    "mix2": Mix2Workload,
    "mix4": Mix4Workload,
}

#: Default per-run access budget for the fast profile. Large enough to
#: reach predictor steady state on the scaled structures, small enough
#: that a full 14-workload experiment runs in minutes of pure Python.
#: Override with the REPRO_BUDGET environment variable.
DEFAULT_BUDGET = int(os.environ.get("REPRO_BUDGET", "120000"))

#: Upper bound on memoised traces; the oldest (LRU) is dropped beyond it.
TRACE_CACHE_MAX = int(os.environ.get("REPRO_TRACE_CACHE_MAX", "32"))

_trace_cache: "OrderedDict[tuple, Trace]" = OrderedDict()

#: Traces attached from shared memory (see :mod:`repro.workloads.shm`).
#: Kept outside the LRU memo: the arrays are zero-copy views into the
#: parent's segments, so "caching" them costs nothing and evicting them
#: would just force a redundant regeneration in the worker.
_shared_traces: Dict[tuple, Trace] = {}


def register_shared_trace(
    name: str, budget: int, seed: int, trace: Trace
) -> None:
    """Serve ``get_trace(name, budget, seed)`` from a shared-memory trace."""
    _shared_traces[(name, budget, seed)] = trace


def clear_shared_traces() -> None:
    """Forget all shared-memory traces (worker teardown/test helper)."""
    _shared_traces.clear()


def workload_names() -> List[str]:
    """All 14 workloads in Table II order."""
    return list(WORKLOAD_CLASSES)


def all_workload_names() -> List[str]:
    """Every resolvable workload: suite, extras, and multi-tenant mixes."""
    return (
        list(WORKLOAD_CLASSES)
        + list(EXTRA_WORKLOAD_CLASSES)
        + list(MIX_WORKLOAD_CLASSES)
    )


def make_workload(name: str, seed: int = 42) -> Workload:
    mix_cls = MIX_WORKLOAD_CLASSES.get(name)
    if mix_cls is not None:
        # Mixes fetch components via get_trace(component, ..., seed): the
        # run seed passes through verbatim so components stay identical to
        # their standalone traces (decorrelation happens per component).
        return mix_cls(seed=seed)
    cls = WORKLOAD_CLASSES.get(name) or EXTRA_WORKLOAD_CLASSES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown workload {name!r}; choose from {all_workload_names()}"
        )
    # Decorrelate workloads sharing a generator family: each gets its own
    # stream of graph/table randomness derived from the suite seed. Extras
    # index after the suite so suite traces are byte-stable regardless.
    index = (list(WORKLOAD_CLASSES) + list(EXTRA_WORKLOAD_CLASSES)).index(name)
    return cls(seed=seed + 101 * index)


def get_trace(name: str, budget: int = DEFAULT_BUDGET, seed: int = 42) -> Trace:
    """Deterministic, memoised trace for ``name``."""
    key = (name, budget, seed)
    trace = _trace_cache.get(key)
    if trace is not None:
        _trace_cache.move_to_end(key)
        return trace
    shared = _shared_traces.get(key)
    if shared is not None:
        return shared
    # Imported lazily: repro.sim.runner imports this module at class-level,
    # so a top-level import of repro.sim.diskcache here would be circular.
    import repro.sim.diskcache as diskcache

    trace = diskcache.load_trace(name, budget, seed)
    if trace is None:
        trace = make_workload(name, seed).generate(budget)
        diskcache.store_trace(name, budget, seed, trace)
    _trace_cache[key] = trace
    while len(_trace_cache) > max(1, TRACE_CACHE_MAX):
        _trace_cache.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop every memoised trace (frees the backing numpy arrays)."""
    _trace_cache.clear()


def trace_cache_size() -> int:
    """Number of traces currently memoised (introspection/test helper)."""
    return len(_trace_cache)
