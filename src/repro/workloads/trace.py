"""Memory-reference traces and the builder the workload kernels emit into.

A trace is four parallel numpy arrays — PC, virtual address, write flag,
and the count of non-memory instructions preceding the access ("gap") —
which is exactly what a Pin-style tool would hand Sniper. Kernels emit
accesses through :class:`TraceBuilder`, usually in vectorised chunks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

#: Synthetic code region where workload "instructions" live. Keeping all
#: PCs inside a few pages makes the I-TLB behave like a real kernel's.
CODE_BASE = 0x0040_0000
#: Byte spacing between synthetic instruction sites.
PC_STRIDE = 4


def pc_for_site(site: int) -> int:
    """Program counter for the ``site``-th static access site."""
    return CODE_BASE + site * PC_STRIDE


@dataclass
class Trace:
    """An immutable memory-reference trace."""

    name: str
    pcs: np.ndarray
    vaddrs: np.ndarray
    writes: np.ndarray
    gaps: np.ndarray
    #: Optional per-record address-space ID (multi-tenant traces only).
    #: None keeps the classic four-array single-process layout.
    asids: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = len(self.pcs)
        if not (len(self.vaddrs) == len(self.writes) == len(self.gaps) == n):
            raise ValueError("trace arrays must have equal length")
        if self.asids is not None and len(self.asids) != n:
            raise ValueError("asids array must match trace length")

    def __len__(self) -> int:
        return len(self.pcs)

    @property
    def num_accesses(self) -> int:
        return len(self.pcs)

    @property
    def num_instructions(self) -> int:
        return int(self.gaps.sum()) + len(self.gaps)

    @property
    def footprint_pages(self) -> int:
        """Distinct 4 KB data pages touched."""
        return len(np.unique(self.vaddrs >> 12))

    #: Default records converted per ``iter_records`` chunk. Large enough
    #: that the tolist() vectorisation dominates, small enough that the
    #: temporary Python lists stay a few MB regardless of trace length.
    #: Override per-process with the ``REPRO_CHUNK`` environment variable
    #: or per-call with the ``chunk`` argument.
    ITER_CHUNK = 65536

    @classmethod
    def resolve_chunk(cls, chunk: Optional[int] = None) -> int:
        """Effective chunk size: argument > ``REPRO_CHUNK`` > ITER_CHUNK."""
        if chunk is None:
            env = os.environ.get("REPRO_CHUNK")
            if env:
                try:
                    chunk = int(env)
                except ValueError:
                    raise ValueError(
                        f"REPRO_CHUNK must be an integer, got {env!r}"
                    ) from None
            else:
                return cls.ITER_CHUNK
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        return chunk

    def iter_records(
        self, chunk: Optional[int] = None
    ) -> Iterator[Tuple[int, int, bool, int]]:
        """Yield ``(pc, vaddr, is_write, gap)`` as native Python values.

        Streams in bounded chunks instead of materialising four full-trace
        Python lists up front: peak temporary memory is O(chunk), not
        O(len(trace)), which matters for multi-million-access budgets.
        Multi-chunk traces stage each slice through one preallocated
        buffer pair, so the per-chunk numpy temporaries are allocated once
        rather than once per chunk.
        """
        chunk = self.resolve_chunk(chunk)
        pcs, vaddrs = self.pcs, self.vaddrs
        writes, gaps = self.writes, self.gaps
        n = len(pcs)
        if n <= chunk:
            yield from zip(
                pcs.tolist(), vaddrs.tolist(), writes.tolist(), gaps.tolist()
            )
            return
        # One staging buffer per field dtype family, reused across chunks:
        # pcs/vaddrs/gaps pass through uint64 rows (tolist() yields int
        # either way), writes through a bool row (tolist() must yield bool).
        buf_ints = np.empty((3, chunk), dtype=np.uint64)
        buf_writes = np.empty(chunk, dtype=bool)
        for start in range(0, n, chunk):
            end = min(start + chunk, n)
            m = end - start
            np.copyto(buf_ints[0, :m], pcs[start:end], casting="unsafe")
            np.copyto(buf_ints[1, :m], vaddrs[start:end], casting="unsafe")
            np.copyto(buf_writes[:m], writes[start:end], casting="unsafe")
            np.copyto(buf_ints[2, :m], gaps[start:end], casting="unsafe")
            yield from zip(
                buf_ints[0, :m].tolist(),
                buf_ints[1, :m].tolist(),
                buf_writes[:m].tolist(),
                buf_ints[2, :m].tolist(),
            )

    def iter_asids(self, chunk: Optional[int] = None) -> Iterator[int]:
        """Yield each record's ASID as a native int, chunked like
        :meth:`iter_records` so ``zip(iter_records(), iter_asids())``
        streams both in lockstep with bounded temporaries."""
        if self.asids is None:
            raise ValueError(f"trace {self.name!r} carries no asids")
        chunk = self.resolve_chunk(chunk)
        asids = self.asids
        n = len(asids)
        for start in range(0, n, chunk):
            yield from asids[start:start + chunk].tolist()

    def truncated(self, max_accesses: int) -> "Trace":
        """A prefix of this trace (used to cap run lengths)."""
        if max_accesses >= len(self):
            return self
        return Trace(
            self.name,
            self.pcs[:max_accesses],
            self.vaddrs[:max_accesses],
            self.writes[:max_accesses],
            self.gaps[:max_accesses],
            None if self.asids is None else self.asids[:max_accesses],
        )

    def save(self, path) -> None:
        """Persist the trace as a compressed ``.npz`` file."""
        fields = {
            "name": np.asarray(self.name),
            "pcs": self.pcs,
            "vaddrs": self.vaddrs,
            "writes": self.writes,
            "gaps": self.gaps,
        }
        if self.asids is not None:
            fields["asids"] = self.asids
        np.savez_compressed(path, **fields)

    @classmethod
    def load(cls, path) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                str(data["name"]),
                data["pcs"],
                data["vaddrs"],
                data["writes"],
                data["gaps"],
                data["asids"] if "asids" in data.files else None,
            )


class TraceBuilder:
    """Accumulates accesses (scalars or vectorised chunks) into a Trace."""

    def __init__(self, name: str, budget: int):
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.name = name
        self.budget = budget
        self._count = 0
        self._pcs: List[np.ndarray] = []
        self._vaddrs: List[np.ndarray] = []
        self._writes: List[np.ndarray] = []
        self._gaps: List[np.ndarray] = []

    @property
    def remaining(self) -> int:
        return self.budget - self._count

    @property
    def full(self) -> bool:
        return self._count >= self.budget

    def emit(self, pc: int, vaddr: int, write: bool = False, gap: int = 2) -> None:
        """Append a single access."""
        self.emit_chunk(pc, np.asarray([vaddr], dtype=np.uint64), write, gap)

    def emit_chunk(
        self,
        pc: int,
        vaddrs: np.ndarray,
        write: bool = False,
        gap: int = 2,
    ) -> None:
        """Append a chunk of accesses sharing one PC / write flag / gap.

        Chunks beyond the remaining budget are silently truncated; check
        :attr:`full` in kernel loops to stop early.
        """
        room = self.remaining
        if room <= 0:
            return
        if len(vaddrs) > room:
            vaddrs = vaddrs[:room]
        n = len(vaddrs)
        if n == 0:
            return
        self._pcs.append(np.full(n, pc, dtype=np.uint64))
        self._vaddrs.append(np.asarray(vaddrs, dtype=np.uint64))
        self._writes.append(np.full(n, write, dtype=bool))
        self._gaps.append(np.full(n, gap, dtype=np.uint16))
        self._count += n

    def emit_interleaved(
        self,
        pcs: np.ndarray,
        vaddrs: np.ndarray,
        writes: np.ndarray,
        gaps: np.ndarray,
    ) -> None:
        """Append pre-assembled parallel arrays (for mixed-PC chunks)."""
        room = self.remaining
        if room <= 0:
            return
        n = min(room, len(vaddrs))
        self._pcs.append(np.asarray(pcs[:n], dtype=np.uint64))
        self._vaddrs.append(np.asarray(vaddrs[:n], dtype=np.uint64))
        self._writes.append(np.asarray(writes[:n], dtype=bool))
        self._gaps.append(np.asarray(gaps[:n], dtype=np.uint16))
        self._count += n

    def build(self) -> Trace:
        if self._count == 0:
            raise ValueError(f"trace {self.name!r} is empty")
        return Trace(
            self.name,
            np.concatenate(self._pcs),
            np.concatenate(self._vaddrs),
            np.concatenate(self._writes),
            np.concatenate(self._gaps),
        )
