"""CSR graph substrate and the nine graph workloads of Table II.

Each workload runs (a budget-bounded window of) the real algorithm over a
synthetic CSR graph and emits the references of its core data structures:
the offsets array, the edge/targets array, and the per-vertex value arrays.
These are the structures whose streaming-scan + random-gather mix gives
GAP/Ligra/graph500 workloads their TLB- and LLC-hostile behaviour.

Scaled footprints follow DESIGN.md §5: a few MB against a 512 KB-reach LLT
and a 256 KB LLC reproduces the paper's pressure ratios.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.synthetic import AddressSpace, Workload, addresses
from repro.workloads.trace import Trace, TraceBuilder, pc_for_site

#: Element sizes of the core structures (bytes).
OFFSET_SIZE = 8
EDGE_SIZE = 4
VALUE_SIZE = 64


class CsrGraph:
    """Compressed-sparse-row directed graph."""

    def __init__(self, offsets: np.ndarray, targets: np.ndarray):
        if offsets[0] != 0 or offsets[-1] != len(targets):
            raise ValueError("malformed CSR offsets")
        self.offsets = offsets
        self.targets = targets

    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    def neighbors(self, u: int) -> np.ndarray:
        return self.targets[self.offsets[u]: self.offsets[u + 1]]

    def degree(self, u: int) -> int:
        return int(self.offsets[u + 1] - self.offsets[u])

    @classmethod
    def random(
        cls,
        num_vertices: int,
        avg_degree: int,
        seed: int,
        skew: float = 0.0,
    ) -> "CsrGraph":
        """Random directed graph; ``skew`` > 0 biases targets towards hub
        vertices with a Pareto-shaped in-degree (graph500-style)."""
        rng = np.random.RandomState(seed)
        m = num_vertices * avg_degree
        sources = rng.randint(0, num_vertices, size=m)
        if skew > 0:
            raw = rng.pareto(skew, size=m)
            targets = (raw * num_vertices * 0.05).astype(np.int64) % num_vertices
        else:
            targets = rng.randint(0, num_vertices, size=m)
        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        targets = targets[order].astype(np.int64)
        counts = np.bincount(sources, minlength=num_vertices)
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(offsets, targets)


class GraphWorkload(Workload):
    """Base class: address-space layout and the edge-scan emission motif."""

    num_vertices = 150_000
    avg_degree = 14
    skew = 0.8
    #: number of extra per-vertex value arrays the kernel uses.
    value_arrays = ("val",)
    gap = 3

    # PC sites shared by all graph kernels.
    PC_OFFSETS = pc_for_site(0)
    PC_EDGES = pc_for_site(1)
    PC_GATHER = pc_for_site(2)
    PC_WRITE = pc_for_site(3)
    PC_AUX = pc_for_site(4)

    def __init__(self, seed: int = 42):
        super().__init__(seed)
        self._graph: CsrGraph = None  # built lazily per generate()

    def _layout(self) -> AddressSpace:
        space = AddressSpace()
        n, m = self.num_vertices, self._graph.num_edges
        space.region("offsets", (n + 1) * OFFSET_SIZE)
        space.region("targets", m * EDGE_SIZE)
        for name in self.value_arrays:
            space.region(name, n * VALUE_SIZE)
        return space

    def _build_graph(self) -> CsrGraph:
        return CsrGraph.random(
            self.num_vertices, self.avg_degree, self.seed, self.skew
        )

    def generate(self, budget: int) -> Trace:
        self._graph = self._build_graph()
        self.space = self._layout()
        builder = TraceBuilder(self.name, budget)
        self._emit(builder)
        return builder.build()

    def _emit(self, builder: TraceBuilder) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Emission motifs
    # ------------------------------------------------------------------ #
    def _emit_vertex_scan(
        self,
        builder: TraceBuilder,
        u: int,
        gather_base: int,
        write_back: bool = False,
    ) -> np.ndarray:
        """Emit the canonical per-vertex loop: read offsets[u], then for
        each edge j alternately read targets[j] and gather value[t_j].
        Returns the neighbour ids so the kernel can do its real work."""
        g = self._graph
        s, e = int(g.offsets[u]), int(g.offsets[u + 1])
        builder.emit(
            self.PC_OFFSETS,
            self.space.base("offsets") + u * OFFSET_SIZE,
            gap=self.gap,
        )
        if e > s:
            nbrs = g.targets[s:e]
            eaddr = addresses(
                self.space.base("targets"),
                np.arange(s, e, dtype=np.uint64),
                EDGE_SIZE,
            )
            gaddr = addresses(gather_base, nbrs, VALUE_SIZE)
            n = len(nbrs)
            inter = np.empty(2 * n, dtype=np.uint64)
            inter[0::2] = eaddr
            inter[1::2] = gaddr
            pcs = np.empty(2 * n, dtype=np.uint64)
            pcs[0::2] = self.PC_EDGES
            pcs[1::2] = self.PC_GATHER
            writes = np.zeros(2 * n, dtype=bool)
            if write_back:
                writes[1::2] = True
            gaps = np.full(2 * n, self.gap, dtype=np.uint16)
            builder.emit_interleaved(pcs, inter, writes, gaps)
            return nbrs
        return g.targets[0:0]

    def _value_addr(self, array: str, u) -> int:
        return self.space.base(array) + int(u) * VALUE_SIZE


class PageRank(GraphWorkload):
    """pr — PageRank from GAPBS: repeated full edge sweeps with random
    gathers of the source ranks and a sequential write of the new ranks."""

    name = "pr"
    description = "PageRank from GAPBS"
    value_arrays = ("rank", "rank_new")
    gap = 3

    def _emit(self, builder: TraceBuilder) -> None:
        g = self._graph
        rank_base = self.space.base("rank")
        while not builder.full:
            for u in range(g.num_vertices):
                if builder.full:
                    return
                nbrs = self._emit_vertex_scan(builder, u, rank_base)
                # new_rank[u] = f(sum of gathered ranks): one write.
                builder.emit(
                    self.PC_WRITE,
                    self._value_addr("rank_new", u),
                    write=True,
                    gap=self.gap,
                )
                del nbrs  # ranks are uniform in the access pattern


class Bfs(GraphWorkload):
    """bfs — level-synchronous breadth-first search (Ligra)."""

    name = "bfs"
    description = "Breadth-First Search from Ligra"
    value_arrays = ("parent",)
    gap = 2

    def _emit(self, builder: TraceBuilder) -> None:
        g = self._graph
        rng = self._rng()
        parent_base = self.space.base("parent")
        while not builder.full:
            parent = np.full(g.num_vertices, -1, dtype=np.int64)
            source = int(rng.randint(0, g.num_vertices))
            parent[source] = source
            frontier = [source]
            while frontier and not builder.full:
                next_frontier = []
                for u in frontier:
                    if builder.full:
                        return
                    nbrs = self._emit_vertex_scan(builder, u, parent_base)
                    for t in nbrs.tolist():
                        if parent[t] < 0:
                            parent[t] = u
                            next_frontier.append(t)
                            builder.emit(
                                self.PC_WRITE,
                                self._value_addr("parent", t),
                                write=True,
                                gap=self.gap,
                            )
                frontier = next_frontier


class ConnectedComponents(GraphWorkload):
    """cc — label-propagation connected components (GAPBS's Shiloach-
    Vishkin flavour reduced to propagation rounds)."""

    name = "cc"
    description = "Connected Components from GAPBS"
    value_arrays = ("label",)
    gap = 3

    def _emit(self, builder: TraceBuilder) -> None:
        g = self._graph
        label = np.arange(g.num_vertices, dtype=np.int64)
        label_base = self.space.base("label")
        while not builder.full:
            changed = False
            for u in range(g.num_vertices):
                if builder.full:
                    return
                nbrs = self._emit_vertex_scan(builder, u, label_base)
                if len(nbrs):
                    m = int(min(label[nbrs].min(), label[u]))
                    if m < label[u]:
                        label[u] = m
                        changed = True
                        builder.emit(
                            self.PC_WRITE,
                            self._value_addr("label", u),
                            write=True,
                            gap=self.gap,
                        )
            if not changed:
                label = np.arange(g.num_vertices, dtype=np.int64)


class Sssp(GraphWorkload):
    """sssp — Bellman-Ford-style single-source shortest path (GAPBS)."""

    name = "sssp"
    description = "Single-Source Shortest Path from GAPBS"
    value_arrays = ("dist",)
    gap = 3

    def _emit(self, builder: TraceBuilder) -> None:
        g = self._graph
        rng = self._rng()
        dist_base = self.space.base("dist")
        while not builder.full:
            dist = np.full(g.num_vertices, 2**31, dtype=np.int64)
            source = int(rng.randint(0, g.num_vertices))
            dist[source] = 0
            for _ in range(8):  # relaxation rounds
                if builder.full:
                    return
                for u in range(g.num_vertices):
                    if builder.full:
                        return
                    if dist[u] >= 2**31:
                        continue
                    nbrs = self._emit_vertex_scan(builder, u, dist_base)
                    nd = dist[u] + 1
                    for t in nbrs.tolist():
                        if nd < dist[t]:
                            dist[t] = nd
                            builder.emit(
                                self.PC_WRITE,
                                self._value_addr("dist", t),
                                write=True,
                                gap=self.gap,
                            )


class BetweennessCentrality(GraphWorkload):
    """bc — Brandes-style betweenness centrality: forward BFS accumulating
    path counts, then a reverse sweep accumulating dependencies (GAPBS)."""

    name = "bc"
    description = "Betweenness Centrality from GAPBS"
    value_arrays = ("sigma", "delta")
    gap = 3

    def _emit(self, builder: TraceBuilder) -> None:
        g = self._graph
        rng = self._rng()
        sigma_base = self.space.base("sigma")
        delta_base = self.space.base("delta")
        while not builder.full:
            source = int(rng.randint(0, g.num_vertices))
            depth = np.full(g.num_vertices, -1, dtype=np.int64)
            depth[source] = 0
            order = [source]
            frontier = [source]
            while frontier and not builder.full:
                nxt = []
                for u in frontier:
                    if builder.full:
                        return
                    nbrs = self._emit_vertex_scan(builder, u, sigma_base)
                    for t in nbrs.tolist():
                        if depth[t] < 0:
                            depth[t] = depth[u] + 1
                            nxt.append(t)
                            order.append(t)
                            builder.emit(
                                self.PC_WRITE,
                                self._value_addr("sigma", t),
                                write=True,
                                gap=self.gap,
                            )
                frontier = nxt
            # Reverse dependency accumulation.
            for u in reversed(order):
                if builder.full:
                    return
                self._emit_vertex_scan(
                    builder, u, delta_base, write_back=True
                )


class MaximalIndependentSet(GraphWorkload):
    """mis — Luby-style maximal independent set (Ligra)."""

    name = "mis"
    description = "Maximal Independent Set from Ligra"
    value_arrays = ("priority", "state")
    gap = 2

    def _emit(self, builder: TraceBuilder) -> None:
        g = self._graph
        rng = self._rng()
        prio_base = self.space.base("priority")
        while not builder.full:
            priority = rng.permutation(g.num_vertices)
            state = np.zeros(g.num_vertices, dtype=np.int8)  # 0=undecided
            undecided = list(range(g.num_vertices))
            while undecided and not builder.full:
                still = []
                for u in undecided:
                    if builder.full:
                        return
                    nbrs = self._emit_vertex_scan(builder, u, prio_base)
                    live = nbrs[state[nbrs] == 0] if len(nbrs) else nbrs
                    if len(live) == 0 or priority[u] < priority[live].min():
                        state[u] = 1  # in the set
                        if len(nbrs):
                            state[nbrs[state[nbrs] == 0]] = 2
                        builder.emit(
                            self.PC_WRITE,
                            self._value_addr("state", u),
                            write=True,
                            gap=self.gap,
                        )
                    elif state[u] == 0:
                        still.append(u)
                undecided = still


class TriangleCounting(GraphWorkload):
    """Triangle — wedge-check triangle counting (Ligra): for each vertex,
    re-scan each neighbour's adjacency list; edge pages see streaming
    reuse with little repetition per page."""

    name = "Triangle"
    description = "Triangle counting from Ligra"
    value_arrays = ("count",)
    gap = 2
    num_vertices = 60_000
    avg_degree = 12

    def _emit(self, builder: TraceBuilder) -> None:
        g = self._graph
        tg_base = self.space.base("targets")
        while not builder.full:
            for u in range(g.num_vertices):
                if builder.full:
                    return
                nbrs = self._emit_vertex_scan(
                    builder, u, self.space.base("count")
                )
                # Probe each neighbour's adjacency list (binary-search-ish:
                # log(deg) touches spread over the list).
                for v in nbrs.tolist():
                    if builder.full:
                        return
                    s, e = int(g.offsets[v]), int(g.offsets[v + 1])
                    if e <= s:
                        continue
                    probes = []
                    lo, hi = s, e - 1
                    while lo <= hi:
                        mid = (lo + hi) // 2
                        probes.append(mid)
                        lo = mid + 1  # walk right; emulates merge probing
                        if len(probes) >= 4:
                            break
                    builder.emit_chunk(
                        self.PC_AUX,
                        addresses(
                            tg_base, np.asarray(probes, dtype=np.uint64),
                            EDGE_SIZE,
                        ),
                        gap=self.gap,
                    )


class KCore(GraphWorkload):
    """KCore — k-core decomposition by iterative peeling (Ligra)."""

    name = "KCore"
    description = "K-core decomposition from Ligra"
    value_arrays = ("degree",)
    gap = 2
    num_vertices = 60_000
    avg_degree = 12

    def _emit(self, builder: TraceBuilder) -> None:
        g = self._graph
        deg_base = self.space.base("degree")
        scan_window = 512  # bucket maintenance rescans a bounded window
        scan_pos = 0
        while not builder.full:
            degree = np.diff(g.offsets).astype(np.int64)
            k = 1
            alive = np.ones(g.num_vertices, dtype=bool)
            while alive.any() and not builder.full:
                peel = np.where(alive & (degree < k))[0]
                if len(peel) == 0:
                    # Bucket advance: rescan a window of the degree array
                    # looking for the next peelable vertices.
                    builder.emit_chunk(
                        self.PC_AUX,
                        addresses(
                            deg_base,
                            (np.arange(scan_window, dtype=np.uint64)
                             + scan_pos) % g.num_vertices,
                            VALUE_SIZE,
                        ),
                        gap=self.gap,
                    )
                    scan_pos = (scan_pos + scan_window) % g.num_vertices
                    k += 1
                    continue
                for u in peel.tolist():
                    if builder.full:
                        return
                    alive[u] = False
                    # Read this vertex's degree, then decrement neighbours.
                    builder.emit(
                        self.PC_WRITE,
                        self._value_addr("degree", u),
                        gap=self.gap,
                    )
                    nbrs = self._emit_vertex_scan(
                        builder, u, deg_base, write_back=True
                    )
                    degree[nbrs] -= 1
                degree[~alive] = 2**31  # peeled


class Graph500(GraphWorkload):
    """graph500 — BFS over a skewed Kronecker-like graph; hubs give the
    visited/parent arrays hot pages while leaf pages stream."""

    name = "graph500"
    description = "BFS/SSSP over skewed undirected graphs (Graph500)"
    value_arrays = ("parent", "visited")
    gap = 3
    num_vertices = 150_000
    avg_degree = 14
    skew = 1.6

    def _emit(self, builder: TraceBuilder) -> None:
        g = self._graph
        rng = self._rng()
        visited_base = self.space.base("visited")
        while not builder.full:
            parent = np.full(g.num_vertices, -1, dtype=np.int64)
            source = int(rng.randint(0, g.num_vertices))
            parent[source] = source
            frontier = [source]
            while frontier and not builder.full:
                nxt = []
                for u in frontier:
                    if builder.full:
                        return
                    nbrs = self._emit_vertex_scan(builder, u, visited_base)
                    for t in nbrs.tolist():
                        if parent[t] < 0:
                            parent[t] = u
                            nxt.append(t)
                            builder.emit(
                                self.PC_WRITE,
                                self._value_addr("parent", t),
                                write=True,
                                gap=self.gap,
                            )
                frontier = nxt
