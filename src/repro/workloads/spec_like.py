"""The five non-graph workloads of Table II, as instrumented kernels.

* ``cactusADM`` — SPEC 2006: ADM numerical relativity; a 3-D stencil sweep
  over many grid-function arrays. Pages live for a short window of
  adjacent planes, then die — the workload where the paper's dpPred gains
  most (~1.45x).
* ``lbm`` — SPEC 2017: lattice-Boltzmann; two ping-pong lattices streamed
  with plane-local neighbourhoods. Nearly pure streaming: the paper
  reports 100 % dpPred accuracy and coverage.
* ``mcf`` — SPEC 2006: minimum-cost network flow; pointer chasing over an
  arc array with node-struct gathers. Nearly unpredictable (paper: 67 %
  accuracy, 10 % coverage).
* ``cg.B`` — NAS CG: sparse mat-vec iterations (CSR) with vector gathers.
* ``canneal`` — PARSEC: simulated-annealing netlist routing; random element
  pair swaps (paper: low coverage, streaming-like randomness).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.synthetic import AddressSpace, Workload, addresses, mix_pcs
from repro.workloads.trace import Trace, TraceBuilder, pc_for_site


class CactusAdm(Workload):
    """3-D stencil over many grid functions (cactusADM).

    In the real 450 MB grid, a row of the lattice spans multiple pages and
    the j +/- 1 / k +/- 1 neighbour reads land a page or a plane away, so each
    grid-function page receives only a handful of touches inside a short
    sweep window and then dies — dead-on-arrival at LLT time scales. We
    model that directly: the grid functions are visited page-sequentially
    with a few touches per page (one PC per function), while a small set of
    coefficient tables is gathered randomly per stencil point (the reusable
    working set that dpPred's bypassing protects). This is the workload
    where the paper's predictors gain most (~1.45x IPC, 37.8 % LLT MPKI).
    """

    name = "cactusADM"
    description = "SPEC 2006 cactusADM: 3-D ADM stencil"
    num_functions = 8
    function_bytes = 1 << 20        # 1 MB per grid function (8 MB total)
    touches_per_page = 3            # z-1 / z / z+1 window visits
    coeff_bytes = 512 * 1024        # ~128 pages of coefficient tables
    #: fraction of accesses issued from a shared inlined-helper PC; the
    #: gather side runs through the helper more often (address computation).
    shared_pc_fraction = 0.15
    shared_gather_fraction = 0.5
    gap = 4

    def generate(self, budget: int) -> Trace:
        builder = TraceBuilder(self.name, budget)
        space = AddressSpace()
        bases = [
            space.region(f"gf{a}", self.function_bytes)
            for a in range(self.num_functions)
        ]
        out = space.region("gf_out", self.function_bytes)
        coeff = space.region("coeff", self.coeff_bytes)
        rng = self._rng()
        pages_per_fn = self.function_bytes >> 12
        coeff_elems = self.coeff_bytes // 8
        pc_write = pc_for_site(40)
        pc_coeff = pc_for_site(41)
        pc_shared = pc_for_site(60)  # inlined helper shared by all sites
        page = 0

        def emit_mixed(primary_pc, vaddrs):
            pcs = mix_pcs(
                rng, primary_pc, pc_shared, len(vaddrs),
                self.shared_pc_fraction,
            )
            builder.emit_interleaved(
                pcs, vaddrs,
                np.zeros(len(vaddrs), dtype=bool),
                np.full(len(vaddrs), self.gap, dtype=np.uint16),
            )

        while not builder.full:
            # One sweep step: touch the current page of every grid
            # function a few times (the plane window), gather coefficients,
            # and write the output page.
            for a in range(self.num_functions):
                offs = rng.randint(0, 4096 // 8, size=self.touches_per_page)
                emit_mixed(
                    pc_for_site(a),
                    (bases[a] + (page << 12) + offs * 8).astype(np.uint64),
                )
            gathers = rng.randint(0, coeff_elems, size=2 * self.num_functions)
            gaddrs = addresses(coeff, gathers.astype(np.uint64), 8)
            pcs = mix_pcs(
                rng, pc_coeff, pc_shared, len(gaddrs),
                self.shared_gather_fraction,
            )
            builder.emit_interleaved(
                pcs, gaddrs,
                np.zeros(len(gaddrs), dtype=bool),
                np.full(len(gaddrs), self.gap, dtype=np.uint16),
            )
            builder.emit_chunk(
                pc_write,
                (out + (page << 12) + np.arange(4, dtype=np.uint64) * 8),
                write=True,
                gap=self.gap,
            )
            page = (page + 1) % pages_per_fn
        return builder.build()


class Lbm(Workload):
    """Lattice-Boltzmann streaming (lbm).

    The D3Q19 lattice stores 19 distribution values per cell, so the
    streaming step's neighbour reads stride across pages: each lattice
    page receives a handful of touches per sweep window and then dies.
    An obstacle/geometry bitmap is consulted per cell — the small reusable
    set. lbm's dead pages are perfectly PC-predictable (paper: 100 %
    accuracy and coverage for dpPred).
    """

    name = "lbm"
    description = "SPEC 2017 lbm: lattice-Boltzmann streaming"
    lattice_bytes = 4 << 20          # per ping-pong lattice copy
    obstacle_bytes = 512 * 1024      # ~128 pages of geometry, reused
    touches_per_page = 4
    shared_pc_fraction = 0.15
    shared_gather_fraction = 0.5
    gap = 5

    def generate(self, budget: int) -> Trace:
        builder = TraceBuilder(self.name, budget)
        space = AddressSpace()
        src = space.region("src", self.lattice_bytes)
        dst = space.region("dst", self.lattice_bytes)
        obstacle = space.region("obstacle", self.obstacle_bytes)
        rng = self._rng()
        pages = self.lattice_bytes >> 12
        obst_elems = self.obstacle_bytes // 8
        pc_src = pc_for_site(0)
        pc_dst = pc_for_site(1)
        pc_obst = pc_for_site(2)
        pc_shared = pc_for_site(60)
        page = 0

        def emit_mixed(primary_pc, vaddrs, write=False):
            pcs = mix_pcs(
                rng, primary_pc, pc_shared, len(vaddrs),
                self.shared_pc_fraction,
            )
            builder.emit_interleaved(
                pcs, vaddrs,
                np.full(len(vaddrs), write, dtype=bool),
                np.full(len(vaddrs), self.gap, dtype=np.uint16),
            )

        while not builder.full:
            offs = rng.randint(0, 4096 // 8, size=self.touches_per_page)
            emit_mixed(
                pc_src, (src + (page << 12) + offs * 8).astype(np.uint64)
            )
            emit_mixed(
                pc_dst,
                (dst + (page << 12) + offs * 8).astype(np.uint64),
                write=True,
            )
            gathers = rng.randint(0, obst_elems, size=2)
            gaddrs = addresses(obstacle, gathers.astype(np.uint64), 8)
            pcs = mix_pcs(
                rng, pc_obst, pc_shared, len(gaddrs),
                self.shared_gather_fraction,
            )
            builder.emit_interleaved(
                pcs, gaddrs,
                np.zeros(len(gaddrs), dtype=bool),
                np.full(len(gaddrs), self.gap, dtype=np.uint16),
            )
            page = (page + 1) % pages
            if page == 0:
                src, dst = dst, src  # ping-pong sweeps
        return builder.build()


class Mcf(Workload):
    """Network-simplex pointer chasing (mcf)."""

    name = "mcf"
    description = "SPEC 2006 mcf: min-cost network flow"
    num_arcs = 48_000
    num_nodes = 40_000
    arc_size = 64   # one cache line per arc struct
    node_size = 64
    gap = 2

    def generate(self, budget: int) -> Trace:
        builder = TraceBuilder(self.name, budget)
        space = AddressSpace()
        arcs = space.region("arcs", self.num_arcs * self.arc_size)
        nodes = space.region("nodes", self.num_nodes * self.node_size)
        rng = self._rng()
        # A single random Hamiltonian cycle over the arcs: the pointer
        # chase. (A raw permutation would decompose into short cycles and
        # trap the chase in a tiny working set.)
        order = rng.permutation(self.num_arcs)
        chase = np.empty(self.num_arcs, dtype=np.int64)
        chase[order] = np.roll(order, -1)
        heads = rng.randint(0, self.num_nodes, size=self.num_arcs)
        tails = rng.randint(0, self.num_nodes, size=self.num_arcs)
        pos = int(rng.randint(0, self.num_arcs))
        pc_arc = pc_for_site(0)
        pc_head = pc_for_site(1)
        pc_tail = pc_for_site(2)
        pc_update = pc_for_site(3)
        while not builder.full:
            builder.emit(
                pc_arc, arcs + pos * self.arc_size, gap=self.gap
            )
            builder.emit(
                pc_head, nodes + int(heads[pos]) * self.node_size,
                gap=self.gap,
            )
            builder.emit(
                pc_tail, nodes + int(tails[pos]) * self.node_size,
                gap=self.gap,
            )
            # Occasional pivot updates write the arc back.
            if pos % 7 == 0:
                builder.emit(
                    pc_update, arcs + pos * self.arc_size,
                    write=True, gap=self.gap,
                )
            pos = int(chase[pos])
        return builder.build()


class ConjugateGradient(Workload):
    """CSR sparse mat-vec iterations (cg.B).

    The matrix values are stored as padded 64-byte block entries (a scaled
    stand-in for class B's 150 MB value stream, whose pages see only a
    brief burst of touches before dying), while the x vector — just beyond
    the LLT's reach — is gathered per non-zero. Bypassing the value-stream
    pages lets x stay resident, the paper's 16 % LLT MPKI reduction story.
    """

    name = "cg.B"
    description = "NAS Parallel Benchmarks CG (class B scaled)"
    num_rows = 67_584
    nnz_per_row = 6
    value_size = 512  # padded block entry: one cache line per non-zero
    gap = 3

    def generate(self, budget: int) -> Trace:
        builder = TraceBuilder(self.name, budget)
        space = AddressSpace()
        n, nnz = self.num_rows, self.num_rows * self.nnz_per_row
        rowptr = space.region("rowptr", (n + 1) * 8)
        colidx = space.region("colidx", nnz * 4)
        values = space.region("values", nnz * self.value_size)
        xvec = space.region("x", n * 8)
        yvec = space.region("y", n * 8)
        rng = self._rng()
        cols = rng.randint(0, n, size=nnz).astype(np.uint64)
        pc_row = pc_for_site(0)
        pc_col = pc_for_site(1)
        pc_val = pc_for_site(2)
        pc_x = pc_for_site(3)
        pc_y = pc_for_site(4)
        while not builder.full:
            for row in range(n):
                if builder.full:
                    return builder.build()
                s = row * self.nnz_per_row
                e = s + self.nnz_per_row
                idx = np.arange(s, e, dtype=np.uint64)
                builder.emit(pc_row, rowptr + row * 8, gap=self.gap)
                # colidx and values stream; x is gathered via the columns.
                ca = addresses(colidx, idx, 4)
                va = addresses(values, idx, self.value_size)
                xa = addresses(xvec, cols[s:e], 8)
                k = len(idx)
                inter = np.empty(3 * k, dtype=np.uint64)
                inter[0::3] = ca
                inter[1::3] = va
                inter[2::3] = xa
                pcs = np.empty(3 * k, dtype=np.uint64)
                pcs[0::3] = pc_col
                pcs[1::3] = pc_val
                pcs[2::3] = pc_x
                builder.emit_interleaved(
                    pcs,
                    inter,
                    np.zeros(3 * k, dtype=bool),
                    np.full(3 * k, self.gap, dtype=np.uint16),
                )
                builder.emit(pc_y, yvec + row * 8, write=True, gap=self.gap)
        return builder.build()


class Canneal(Workload):
    """Simulated-annealing netlist swaps (canneal)."""

    name = "canneal"
    description = "PARSEC canneal: routing-cost annealing"
    num_elements = 60_000
    element_size = 64
    fanout = 5
    gap = 2

    def generate(self, budget: int) -> Trace:
        builder = TraceBuilder(self.name, budget)
        space = AddressSpace()
        elements = space.region("elements", self.num_elements * self.element_size)
        netlist = space.region("netlist", self.num_elements * self.fanout * 4)
        rng = self._rng()
        neigh = rng.randint(
            0, self.num_elements, size=(self.num_elements, self.fanout)
        )
        pc_a = pc_for_site(0)
        pc_b = pc_for_site(1)
        pc_net = pc_for_site(2)
        pc_gather = pc_for_site(3)
        pc_swap = pc_for_site(4)
        while not builder.full:
            a = int(rng.randint(0, self.num_elements))
            b = int(rng.randint(0, self.num_elements))
            builder.emit(pc_a, elements + a * self.element_size, gap=self.gap)
            builder.emit(pc_b, elements + b * self.element_size, gap=self.gap)
            for ele in (a, b):
                builder.emit_chunk(
                    pc_net,
                    addresses(
                        netlist,
                        np.arange(
                            ele * self.fanout,
                            (ele + 1) * self.fanout,
                            dtype=np.uint64,
                        ),
                        4,
                    ),
                    gap=self.gap,
                )
                builder.emit_chunk(
                    pc_gather,
                    addresses(
                        elements,
                        neigh[ele].astype(np.uint64),
                        self.element_size,
                    ),
                    gap=self.gap,
                )
            if rng.rand() < 0.4:  # accepted swap writes both elements
                builder.emit(
                    pc_swap, elements + a * self.element_size,
                    write=True, gap=self.gap,
                )
                builder.emit(
                    pc_swap, elements + b * self.element_size,
                    write=True, gap=self.gap,
                )
        return builder.build()
