"""Shared infrastructure for the baseline predictors.

PC-signature predictors at the LLC (SHiP-LLC, AIP-LLC) need the program
counter of the instruction whose access caused a fill, but the cache model
deliberately sees only block addresses. The machine publishes the current
instruction's PC into an :class:`AccessContext` that such predictors hold a
reference to — the software analogue of threading the PC down the MSHR
chain, which is how hardware proposals (SHiP-PC et al.) do it.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable


class AccessContext:
    """Mutable holder for the in-flight instruction's identity."""

    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc = 0

    def set_pc(self, pc: int) -> None:
        self.pc = pc


@runtime_checkable
class PredictorSpec(Protocol):
    """The uniform surface every registered predictor presents.

    A predictor is a TLB or cache listener (see
    :class:`repro.vm.tlb.TlbListener` / :class:`repro.mem.cache.CacheListener`)
    built by a :mod:`repro.predictors.registry` factory from exactly three
    ingredients — nothing else may be threaded through ``Machine``:

    * **a config dataclass** of its own knobs (e.g. :class:`ShipConfig`),
      derived by the factory from :class:`~repro.sim.config.SystemConfig`
      fields;
    * **the machine's** :class:`AccessContext`, for LLC-side predictors
      that need the in-flight PC (block addresses carry no PC);
    * **an event probe** — the nullable ``probe`` attribute, wired
      post-construction by ``Machine._attach_telemetry``. Implementations
      guard every emission with ``if self.probe is not None`` so the
      un-observed hot path costs one attribute load.

    Optional, discovered by ``hasattr``:

    * ``prediction_observer`` — ``(key, predicted_doa)`` callback invoked
      at every fill-time prediction (accuracy/coverage ground truth,
      Tables VI/VII);
    * ``stats`` — a :class:`repro.common.stats.Stats` bag, sampled by the
      telemetry timeline;
    * ``storage_bits(num_entries)`` — hardware budget accounting
      (Section V-D).

    **Engine-mirror contract.** The batched engine's flat interpreter
    (:class:`repro.sim.engine._FlatStepper`) inlines only
    :class:`~repro.core.dppred.DeadPagePredictor` and
    :class:`~repro.core.cbpred.CorrelatingDeadBlockPredictor` — their
    fill/evict/shadow-miss hot paths are replicated instruction for
    instruction (stat names, event order, table indexing). Any *other*
    listener type makes :func:`repro.sim.engine.flat_reason` return
    ``"predictor"`` (an exact ``type()`` check, so subclasses decline
    too): the run still uses the bulk numpy tier but executes every
    listener-visible record through the real scalar path, and the decline
    is counted in ``engine_stats["flat_reason"]`` and
    ``engine_totals()["flat_declines"]`` — never silent. A new predictor
    therefore needs **no** engine changes to stay bit-exact; teaching the
    flat interpreter its hot paths is a later, purely-performance step
    that must mirror this module's semantics exactly
    (``tests/test_engine_equivalence.py`` enforces the bit-identity).
    """

    probe: Optional[object]
    prediction_observer: Optional[Callable[[int, bool], None]]

    def storage_bits(self, num_entries: int) -> int:
        """Total predictor state in bits for the attached structure."""
        ...
