"""Shared infrastructure for the baseline predictors.

PC-signature predictors at the LLC (SHiP-LLC, AIP-LLC) need the program
counter of the instruction whose access caused a fill, but the cache model
deliberately sees only block addresses. The machine publishes the current
instruction's PC into an :class:`AccessContext` that such predictors hold a
reference to — the software analogue of threading the PC down the MSHR
chain, which is how hardware proposals (SHiP-PC et al.) do it.
"""

from __future__ import annotations


class AccessContext:
    """Mutable holder for the in-flight instruction's identity."""

    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc = 0

    def set_pc(self, pc: int) -> None:
        self.pc = pc
