"""SHiP — Signature-based Hit Predictor [Wu et al., MICRO'11].

The evaluation's main cache-side baseline, applied both to the LLC
(SHiP-LLC) and, adapted, to the LLT (SHiP-TLB). SHiP associates a PC
signature with every filled entry plus an outcome bit; a Signature History
Counter Table (SHCT) of saturating counters learns whether fills by a
signature tend to be re-referenced:

* on a **hit**: set the entry's outcome bit and increment SHCT[sig];
* on an **eviction** with the outcome bit clear: decrement SHCT[sig];
* on a **fill**: SHCT[sig] == 0 predicts a *distant* re-reference.

The paper adapts SHiP to the baseline LRU structures by inserting
predicted-distant entries at the LRU position ("we adapt SHiP to mark
entries predicted to have distant re-reference as LRU"), and configures
SHiP-TLB "to use similar storage as dpPred, indexing with an 8-bit hash of
the PC".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.bitops import fold_xor
from repro.common.counters import CounterArray
from repro.common.stats import Stats
from repro.mem.cache import (
    FILL_ALLOCATE,
    FILL_DISTANT,
    CacheLine,
    CacheListener,
    SetAssocCache,
)
from repro.predictors.base import AccessContext
from repro.vm.tlb import Tlb, TlbEntry, TlbListener
from repro.vm.tlb import FILL_ALLOCATE as TLB_ALLOCATE
from repro.vm.tlb import FILL_DISTANT as TLB_DISTANT


@dataclass(frozen=True)
class ShipConfig:
    """SHiP knobs.

    ``signature_bits`` — PC-hash width indexing the SHCT (paper: 8 for the
    TLB variant; 14 is the original SHiP-PC's LLC configuration).
    ``counter_bits`` — SHCT counter width (original SHiP uses 2 or 3 bits).
    ``train_on_fill`` — original SHiP initialises mid-range; we start
    counters at the weakly-reusable value so cold signatures are not
    predicted distant immediately.
    """

    signature_bits: int = 14
    counter_bits: int = 2
    initial_counter: int = 1


class _ShipCore:
    """Signature table shared by the TLB and LLC front-ends."""

    def __init__(self, config: ShipConfig):
        if not 0 <= config.initial_counter < (1 << config.counter_bits):
            raise ValueError("initial_counter out of counter range")
        self.config = config
        self.shct = CounterArray(
            1 << config.signature_bits,
            config.counter_bits,
            initial=config.initial_counter,
        )
        self.stats = Stats()

    def signature(self, pc: int) -> int:
        return fold_xor(pc, self.config.signature_bits)

    def predicts_distant(self, sig: int) -> bool:
        return self.shct.get(sig) == 0

    def train_hit(self, sig: int) -> None:
        self.shct.increment(sig)
        self.stats.add("hit_trainings")

    def train_dead_eviction(self, sig: int) -> None:
        self.shct.decrement(sig)
        self.stats.add("dead_trainings")

    def storage_bits(self, num_entries: int) -> int:
        """SHCT plus a per-entry signature and outcome bit."""
        table = len(self.shct) * self.config.counter_bits
        per_entry = (self.config.signature_bits + 1) * num_entries
        return table + per_entry


class ShipTlbPredictor(TlbListener):
    """SHiP adapted to the LLT (SHiP-TLB)."""

    def __init__(
        self,
        config: ShipConfig = ShipConfig(signature_bits=8),
        prediction_observer: Optional[Callable[[int, bool], None]] = None,
    ):
        self.core = _ShipCore(config)
        self.prediction_observer = prediction_observer
        self.stats = Stats()

    def on_fill(self, tlb: Tlb, vpn: int, pfn: int, pc_hash: int, now: int) -> str:
        # The machine passes the *full PC* as pc_hash for SHiP runs; the
        # signature uses SHiP's own width.
        sig = self.core.signature(pc_hash)
        distant = self.core.predicts_distant(sig)
        if self.prediction_observer is not None:
            self.prediction_observer(vpn, distant)
        if distant:
            self.stats.add("distant_predictions")
            return TLB_DISTANT
        return TLB_ALLOCATE

    def filled(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        entry.aux = self.core.signature(entry.pc_hash)

    def on_hit(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if entry.aux is not None:
            self.core.train_hit(entry.aux)

    def on_evict(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if entry.aux is not None and not entry.accessed:
            self.core.train_dead_eviction(entry.aux)

    def storage_bits(self, llt_entries: int) -> int:
        return self.core.storage_bits(llt_entries)


class ShipCachePredictor(CacheListener):
    """SHiP-PC on the LLC (SHiP-LLC)."""

    def __init__(
        self,
        context: AccessContext,
        config: ShipConfig = ShipConfig(signature_bits=14),
        prediction_observer: Optional[Callable[[int, bool], None]] = None,
    ):
        self.core = _ShipCore(config)
        self.context = context
        self.prediction_observer = prediction_observer
        self.stats = Stats()

    def on_fill(self, cache: SetAssocCache, block: int, now: int) -> str:
        sig = self.core.signature(self.context.pc)
        distant = self.core.predicts_distant(sig)
        if self.prediction_observer is not None:
            self.prediction_observer(block, distant)
        if distant:
            self.stats.add("distant_predictions")
            return FILL_DISTANT
        return FILL_ALLOCATE

    def filled(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        line.aux = self.core.signature(self.context.pc)

    def on_hit(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if line.aux is not None:
            self.core.train_hit(line.aux)

    def on_evict(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if line.aux is not None and not line.accessed:
            self.core.train_dead_eviction(line.aux)

    def storage_bits(self, llc_blocks: int) -> int:
        return self.core.storage_bits(llc_blocks)
