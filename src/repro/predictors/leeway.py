"""Leeway-style variability-aware reuse prediction [Faldu & Grot, PACT'17].

Faldu's Leeway observes that dead-block prediction with saturating
counters breaks down under *live-distance variability*: one reused
residency resets a counter that dozens of dead residencies trained, so
bursty signatures flap between predictions. Leeway instead tracks the
recent live-distance *distribution* per signature and applies a
variability-tolerant update policy.

This adaptation keeps the idea and the integer-only determinism, applied
to both structures the paper cleans together:

* the **live distance** of a residency is the number of set accesses that
  had elapsed when the entry was last hit — 0 for a dead-on-arrival
  residency (never hit);
* per PC signature (fold-XOR hash), a fixed ring of the last
  ``ring_entries`` observed live distances is kept; each eviction shifts
  exactly one slot, so one outlier residency moves the decision boundary
  by one sample instead of resetting it (the variability tolerance);
* at fill time the decision is keyed on a **percentile** of the ring: the
  entry is predicted dead-on-arrival iff at least ``percentile`` percent
  of the signature's recent residencies were DOA (live distance 0).
  Predicted-DOA fills bypass the structure (LLT shadow-less bypass /
  LLC bypass, matching dpPred's ``dppred_sh`` action).

Bypassed fills produce no eviction and hence no training sample, so a
signature could lock into "dead" forever. Every ``sample_period``-th
predicted-DOA fill is therefore allocated anyway (a *reuse sample*,
Leeway's dueling-sampler analogue made deterministic), re-observing the
signature's behaviour.

Per :class:`~repro.predictors.base.PredictorSpec`, the flat interpreter
does not model this listener: Leeway configs run the bulk+scalar hybrid
with a counted ``predictor`` decline. Semantics live here only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.bitops import fold_xor
from repro.common.stats import Stats
from repro.mem.cache import FILL_ALLOCATE as CACHE_ALLOCATE
from repro.mem.cache import FILL_BYPASS as CACHE_BYPASS
from repro.mem.cache import CacheLine, CacheListener, SetAssocCache
from repro.obs.events import (
    EV_LLC_BYPASS,
    EV_LLC_VERDICT,
    EV_LLT_BYPASS,
    EV_LLT_VERDICT,
)
from repro.predictors.base import AccessContext
from repro.vm.tlb import FILL_ALLOCATE, FILL_BYPASS, Tlb, TlbEntry, TlbListener


@dataclass(frozen=True)
class LeewayConfig:
    """Leeway knobs.

    ``signature_bits`` — PC fold-XOR width indexing the live-distance
    table. ``ring_entries`` — live-distance samples kept per signature.
    ``percentile`` — the fraction (percent) of recent residencies that
    must be DOA before fills are predicted dead; higher is more
    conservative. ``max_distance`` — live-distance counter saturation
    (8-bit counters by default). ``sample_period`` — every N-th
    predicted-DOA fill is allocated anyway to keep the signature trained.
    """

    signature_bits: int = 8
    ring_entries: int = 8
    percentile: int = 75
    max_distance: int = 255
    sample_period: int = 16

    def validate(self) -> None:
        if self.signature_bits <= 0:
            raise ValueError("signature_bits must be positive")
        if self.ring_entries <= 0:
            raise ValueError("ring_entries must be positive")
        if not 1 <= self.percentile <= 100:
            raise ValueError(
                f"percentile must be in [1, 100], got {self.percentile}"
            )
        if self.max_distance <= 0:
            raise ValueError("max_distance must be positive")
        if self.sample_period <= 1:
            raise ValueError("sample_period must be > 1")


class _LeewayState:
    """Per-entry metadata: signature + live-distance bookkeeping."""

    __slots__ = ("sig", "age", "live")

    def __init__(self, sig: int):
        self.sig = sig
        self.age = 0      # set accesses since fill
        self.live = 0     # age at the most recent hit (0 = DOA so far)


class _LeewayCore:
    """Per-signature live-distance rings + the percentile decision rule."""

    def __init__(self, config: LeewayConfig = LeewayConfig()):
        config.validate()
        self.config = config
        rows = 1 << config.signature_bits
        n = config.ring_entries
        # ring value -1 = never trained; rings fill before predicting.
        self._rings: List[List[int]] = [[-1] * n for _ in range(rows)]
        self._cursor: List[int] = [0] * rows
        self._bypass_streak: List[int] = [0] * rows
        # Index of the smallest sample that must still be > 0 for the
        # signature to be predicted live: with n samples, at least
        # ceil(n * percentile / 100) of them must be DOA to predict DOA.
        self._rank = (n * config.percentile + 99) // 100 - 1
        self.stats = Stats()

    def signature(self, pc: int) -> int:
        return fold_xor(pc, self.config.signature_bits)

    def on_set_access(self, state: _LeewayState) -> None:
        if state.age < self.config.max_distance:
            state.age += 1

    def on_entry_hit(self, state: _LeewayState) -> None:
        state.live = state.age

    def predicts_doa(self, sig: int) -> bool:
        ring = self._rings[sig]
        if -1 in ring:
            return False  # ring not yet full: never predict cold
        return sorted(ring)[self._rank] == 0

    def should_sample(self, sig: int) -> bool:
        """Deterministic reuse sampling: allocate every N-th predicted-DOA
        fill of a signature so bypassing cannot starve its training."""
        streak = self._bypass_streak[sig] + 1
        if streak >= self.config.sample_period:
            self._bypass_streak[sig] = 0
            return True
        self._bypass_streak[sig] = streak
        return False

    def train_eviction(self, state: _LeewayState) -> None:
        sig = state.sig
        ring = self._rings[sig]
        cur = self._cursor[sig]
        ring[cur] = state.live
        self._cursor[sig] = (cur + 1) % len(ring)
        self.stats.add("trainings")

    def storage_bits(self, num_entries: int) -> int:
        """Ring table + per-entry signature, age and live-distance."""
        cell_bits = 8  # live distances saturate at max_distance (8-bit)
        table = len(self._rings) * self.config.ring_entries * cell_bits
        per_entry = (self.config.signature_bits + 2 * cell_bits) * num_entries
        return table + per_entry


class LeewayTlbPredictor(TlbListener):
    """Leeway applied to the LLT: variability-aware dead-page bypass."""

    def __init__(
        self,
        config: LeewayConfig = LeewayConfig(),
        context: Optional[AccessContext] = None,
        prediction_observer: Optional[Callable[[int, bool], None]] = None,
    ):
        self.core = _LeewayCore(config)
        self.context = context  # unused: the LLT fill carries the PC
        self.prediction_observer = prediction_observer
        self.stats = Stats()
        self.probe = None
        self._pending: Optional[_LeewayState] = None

    def on_lookup(self, tlb: Tlb, set_idx: int, now: int) -> None:
        core = self.core
        for entry in tlb._entries[set_idx]:
            if entry is not None and entry.aux is not None:
                core.on_set_access(entry.aux)

    def on_hit(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if entry.aux is not None:
            self.core.on_entry_hit(entry.aux)

    def on_fill(self, tlb: Tlb, vpn: int, pfn: int, pc: int, now: int) -> str:
        core = self.core
        sig = core.signature(pc)
        predicted_doa = core.predicts_doa(sig)
        if self.prediction_observer is not None:
            self.prediction_observer(vpn, predicted_doa)
        if predicted_doa:
            if core.should_sample(sig):
                self.stats.add("sampled_allocations")
            else:
                self.stats.add("doa_predictions")
                if self.probe is not None:
                    self.probe.emit(now, EV_LLT_BYPASS, vpn, pfn)
                self._pending = None
                return FILL_BYPASS
        self._pending = _LeewayState(sig)
        return FILL_ALLOCATE

    def filled(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        entry.aux = self._pending
        self._pending = None

    def on_evict(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if entry.aux is None:
            return
        self.core.train_eviction(entry.aux)
        if self.probe is not None:
            self.probe.emit(
                now, EV_LLT_VERDICT, entry.vpn, False, not entry.accessed
            )

    def storage_bits(self, llt_entries: int) -> int:
        return self.core.storage_bits(llt_entries)


class LeewayCachePredictor(CacheListener):
    """Leeway applied to the LLC: variability-aware dead-block bypass."""

    def __init__(
        self,
        config: LeewayConfig = LeewayConfig(),
        context: Optional[AccessContext] = None,
        prediction_observer: Optional[Callable[[int, bool], None]] = None,
    ):
        if context is None:
            raise ValueError(
                "LeewayCachePredictor needs the machine's AccessContext "
                "(block addresses carry no PC)"
            )
        self.core = _LeewayCore(config)
        self.context = context
        self.prediction_observer = prediction_observer
        self.stats = Stats()
        self.probe = None
        self._pending: Optional[_LeewayState] = None

    def on_lookup(self, cache: SetAssocCache, set_idx: int, now: int) -> None:
        core = self.core
        for line in cache._lines[set_idx]:
            if line is not None and line.aux is not None:
                core.on_set_access(line.aux)

    def on_hit(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if line.aux is not None:
            self.core.on_entry_hit(line.aux)

    def on_fill(self, cache: SetAssocCache, block: int, now: int) -> str:
        core = self.core
        sig = core.signature(self.context.pc)
        predicted_doa = core.predicts_doa(sig)
        if self.prediction_observer is not None:
            self.prediction_observer(block, predicted_doa)
        if predicted_doa:
            if core.should_sample(sig):
                self.stats.add("sampled_allocations")
            else:
                self.stats.add("doa_predictions")
                if self.probe is not None:
                    self.probe.emit(now, EV_LLC_BYPASS, block)
                self._pending = None
                return CACHE_BYPASS
        self._pending = _LeewayState(sig)
        return CACHE_ALLOCATE

    def filled(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        line.aux = self._pending
        self._pending = None

    def on_evict(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if line.aux is None:
            return
        self.core.train_eviction(line.aux)
        if self.probe is not None:
            self.probe.emit(
                now, EV_LLC_VERDICT, line.tag, False, not line.accessed
            )

    def storage_bits(self, llc_blocks: int) -> int:
        return self.core.storage_bits(llc_blocks)
