"""AIP — the Access Interval Predictor [Kharbutli & Solihin, ICCD'05].

The evaluation's second baseline, applied to the LLC (AIP-LLC) and to the
LLT (AIP-TLB). AIP learns, per (hashed PC, hashed address), the maximum
number of *set accesses* that elapse between two consecutive accesses to an
entry while it is live. Once an entry's interval counter exceeds its
learned threshold (with a confirmed/confident learning bit), the entry is
predicted dead and prioritised for victimisation.

Design notes mirroring the original proposal and the paper's setup:

* the history table is two-dimensional, ``256 x 256`` by default ("since it
  needs 21 bits with every TLB entry, we use the default 256x256
  two-dimensional history table");
* a *confidence* bit is set only when the same maximum interval is observed
  in two consecutive generations, gating predictions;
* AIP predicts death *after* an entry has been resident and accessed — it
  was built for non-DOA dead blocks, which is precisely why the paper finds
  it nearly useless on LLTs where dead entries are dominated by DOAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.bitops import fold_xor
from repro.common.stats import Stats
from repro.mem.cache import CacheLine, CacheListener, SetAssocCache
from repro.predictors.base import AccessContext
from repro.vm.tlb import Tlb, TlbEntry, TlbListener


@dataclass(frozen=True)
class AipConfig:
    """AIP knobs (defaults per the paper's Section VI-A)."""

    pc_hash_bits: int = 8
    addr_hash_bits: int = 8
    max_interval: int = 4095  # 12-bit interval counters
    #: Extra slack added to the learned interval before declaring death.
    margin: int = 1


class _AipState:
    """Per-entry AIP metadata (the '21 bits with every TLB entry')."""

    __slots__ = (
        "pc_h", "addr_h", "count", "max_seen", "hits", "threshold", "confident"
    )

    def __init__(self, pc_h: int, addr_h: int, threshold: int, confident: bool):
        self.pc_h = pc_h
        self.addr_h = addr_h
        self.count = 0
        self.max_seen = 0
        self.hits = 0
        self.threshold = threshold
        self.confident = confident


class _AipCore:
    """History table + training rules shared by the TLB and LLC variants."""

    def __init__(self, config: AipConfig = AipConfig()):
        self.config = config
        rows = 1 << config.pc_hash_bits
        cols = 1 << config.addr_hash_bits
        self._cols = cols
        # (interval, confident) per table cell; -1 interval = never trained.
        self._intervals: List[int] = [-1] * (rows * cols)
        self._confident: List[bool] = [False] * (rows * cols)
        self.stats = Stats()

    def _index(self, pc_h: int, addr_h: int) -> int:
        return pc_h * self._cols + addr_h

    def new_state(self, pc: int, addr: int) -> _AipState:
        pc_h = fold_xor(pc, self.config.pc_hash_bits)
        addr_h = fold_xor(addr, self.config.addr_hash_bits)
        idx = self._index(pc_h, addr_h)
        return _AipState(
            pc_h, addr_h, self._intervals[idx], self._confident[idx]
        )

    def on_set_access(self, state: _AipState) -> None:
        if state.count < self.config.max_interval:
            state.count += 1

    def on_entry_hit(self, state: _AipState) -> None:
        if state.count > state.max_seen:
            state.max_seen = state.count
        state.count = 0
        state.hits += 1

    def is_dead(self, state: _AipState) -> bool:
        """Predicted dead: learned, confident, and the interval expired."""
        return (
            state.confident
            and state.threshold >= 0
            and state.count > state.threshold + self.config.margin
        )

    def train_eviction(self, state: _AipState) -> None:
        """Store the generation's observed max interval; confirm if stable.

        An entry with zero hits produced *no interval sample* — AIP learns
        nothing from it. This is the crux of why AIP is ineffective on the
        LLT (Section IV-C): dead-on-arrival entries never train it.
        """
        if state.hits == 0:
            self.stats.add("untrainable_doa_evictions")
            return
        idx = self._index(state.pc_h, state.addr_h)
        old = self._intervals[idx]
        self._confident[idx] = old == state.max_seen and old >= 0
        self._intervals[idx] = state.max_seen
        self.stats.add("trainings")

    def storage_bits(self, num_entries: int, per_entry_bits: int = 21) -> int:
        """History table (interval + confidence per cell) + per-entry state."""
        cell_bits = 12 + 1
        return len(self._intervals) * cell_bits + num_entries * per_entry_bits


class AipTlbPredictor(TlbListener):
    """AIP applied to the LLT (AIP-TLB)."""

    def __init__(
        self,
        config: AipConfig = AipConfig(),
        prediction_observer: Optional[Callable[[int, bool], None]] = None,
    ):
        self.core = _AipCore(config)
        self.prediction_observer = prediction_observer
        self.stats = Stats()
        self._pending: Optional[_AipState] = None

    def on_lookup(self, tlb: Tlb, set_idx: int, now: int) -> None:
        for entry in tlb._entries[set_idx]:
            if entry is not None and entry.aux is not None:
                self.core.on_set_access(entry.aux)

    def on_hit(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if entry.aux is not None:
            self.core.on_entry_hit(entry.aux)

    def on_fill(self, tlb: Tlb, vpn: int, pfn: int, pc: int, now: int) -> str:
        self._pending = self.core.new_state(pc, vpn)
        if self.prediction_observer is not None:
            # AIP makes no fill-time DOA prediction; observers record the
            # non-prediction so coverage reflects its blindness to DOAs.
            self.prediction_observer(vpn, False)
        return "allocate"

    def filled(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        entry.aux = self._pending
        self._pending = None

    def on_evict(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if entry.aux is not None:
            self.core.train_eviction(entry.aux)

    def choose_victim(self, tlb: Tlb, set_idx: int, entries, now: int):
        for way, entry in enumerate(entries):
            if (
                entry is not None
                and entry.aux is not None
                and self.core.is_dead(entry.aux)
            ):
                self.stats.add("dead_victimisations")
                return way
        return None

    def storage_bits(self, llt_entries: int) -> int:
        return self.core.storage_bits(llt_entries)


class AipCachePredictor(CacheListener):
    """AIP applied to the LLC (AIP-LLC)."""

    def __init__(
        self,
        context: AccessContext,
        config: AipConfig = AipConfig(),
        prediction_observer: Optional[Callable[[int, bool], None]] = None,
    ):
        self.core = _AipCore(config)
        self.context = context
        self.prediction_observer = prediction_observer
        self.stats = Stats()
        self._pending: Optional[_AipState] = None

    def on_lookup(self, cache: SetAssocCache, set_idx: int, now: int) -> None:
        for line in cache._lines[set_idx]:
            if line is not None and line.aux is not None:
                self.core.on_set_access(line.aux)

    def on_hit(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if line.aux is not None:
            self.core.on_entry_hit(line.aux)

    def on_fill(self, cache: SetAssocCache, block: int, now: int) -> str:
        self._pending = self.core.new_state(self.context.pc, block)
        if self.prediction_observer is not None:
            self.prediction_observer(block, False)
        return "allocate"

    def filled(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        line.aux = self._pending
        self._pending = None

    def on_evict(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if line.aux is not None:
            self.core.train_eviction(line.aux)

    def choose_victim(self, cache: SetAssocCache, set_idx: int, lines, now: int):
        for way, line in enumerate(lines):
            if (
                line is not None
                and line.aux is not None
                and self.core.is_dead(line.aux)
            ):
                self.stats.add("dead_victimisations")
                return way
        return None

    def storage_bits(self, llc_blocks: int) -> int:
        return self.core.storage_bits(llc_blocks)
