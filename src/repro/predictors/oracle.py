"""Two-pass oracle DOA page predictor (Table IV's "Oracle" column).

A true oracle needs full knowledge of the future; the paper approximates it
("effectively be an oracle predictor with a lookahead of 1"). Being
trace-driven, we can afford the standard trace-oracle construction:

* **Pass 1** (:class:`DoaRecordingListener`): run the baseline LLT and
  record, for the *i*-th fill of each VPN, whether that residency ended
  dead-on-arrival.
* **Pass 2** (:class:`OracleTlbListener`): re-run the identical trace and
  bypass exactly the fills recorded as DOA.

Fill sequences can diverge slightly once bypassing changes eviction order;
keying by per-VPN fill occurrence keeps the two passes aligned, and any
unmatched occurrence conservatively allocates.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.stats import Stats
from repro.mem.cache import FILL_ALLOCATE as CACHE_FILL_ALLOCATE
from repro.mem.cache import FILL_BYPASS as CACHE_FILL_BYPASS
from repro.mem.cache import CacheLine, CacheListener, SetAssocCache
from repro.vm.tlb import FILL_ALLOCATE, FILL_BYPASS, Tlb, TlbEntry, TlbListener


class DoaRecordingListener(TlbListener):
    """Pass 1: records per-(vpn, occurrence) DOA outcomes."""

    def __init__(self) -> None:
        self.outcomes: Dict[Tuple[int, int], bool] = {}
        self._occurrence: Dict[int, int] = {}
        self._pending_key: Tuple[int, int] = (0, 0)
        self.stats = Stats()

    def on_fill(self, tlb: Tlb, vpn: int, pfn: int, pc: int, now: int) -> str:
        occ = self._occurrence.get(vpn, 0)
        self._occurrence[vpn] = occ + 1
        self._pending_key = (vpn, occ)
        return FILL_ALLOCATE

    def filled(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        entry.aux = self._pending_key

    def on_evict(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if entry.aux is not None:
            self.outcomes[entry.aux] = not entry.accessed
            if not entry.accessed:
                self.stats.add("doa_residencies")


class OracleTlbListener(TlbListener):
    """Pass 2: bypasses the fills pass 1 proved to be DOA."""

    def __init__(self, outcomes: Dict[Tuple[int, int], bool]):
        self.outcomes = outcomes
        self._occurrence: Dict[int, int] = {}
        self.stats = Stats()

    def on_fill(self, tlb: Tlb, vpn: int, pfn: int, pc: int, now: int) -> str:
        occ = self._occurrence.get(vpn, 0)
        self._occurrence[vpn] = occ + 1
        if self.outcomes.get((vpn, occ), False):
            self.stats.add("oracle_bypasses")
            return FILL_BYPASS
        return FILL_ALLOCATE


class DoaRecordingCacheListener(CacheListener):
    """LLC-side pass 1: records per-(block, occurrence) DOA outcomes.

    The LLC analogue of :class:`DoaRecordingListener` — used to build a
    DOA-block oracle that upper-bounds cbPred the way Table IV's oracle
    upper-bounds dpPred.
    """

    def __init__(self) -> None:
        self.outcomes: Dict[Tuple[int, int], bool] = {}
        self._occurrence: Dict[int, int] = {}
        self._pending_key: Tuple[int, int] = (0, 0)
        self.stats = Stats()

    def on_fill(self, cache: SetAssocCache, block: int, now: int) -> str:
        occ = self._occurrence.get(block, 0)
        self._occurrence[block] = occ + 1
        self._pending_key = (block, occ)
        return CACHE_FILL_ALLOCATE

    def filled(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        line.aux = self._pending_key

    def on_evict(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if line.aux is not None:
            self.outcomes[line.aux] = not line.accessed
            if not line.accessed:
                self.stats.add("doa_residencies")


class OracleCacheListener(CacheListener):
    """LLC-side pass 2: bypasses the fills pass 1 proved to be DOA."""

    def __init__(self, outcomes: Dict[Tuple[int, int], bool]):
        self.outcomes = outcomes
        self._occurrence: Dict[int, int] = {}
        self.stats = Stats()

    def on_fill(self, cache: SetAssocCache, block: int, now: int) -> str:
        occ = self._occurrence.get(block, 0)
        self._occurrence[block] = occ + 1
        if self.outcomes.get((block, occ), False):
            self.stats.add("oracle_bypasses")
            return CACHE_FILL_BYPASS
        return CACHE_FILL_ALLOCATE
